//! Offline tail-latency inspection: the logic behind `lwfs-inspect`.
//!
//! A post-mortem starts from two artifacts the monitoring pipeline
//! already exports — the Chrome `trace_event` JSON of scraped slow
//! traces (`--trace-out`) and the monitor's windowed JSONL time series
//! (`--telemetry-out`) — and must reproduce the live pipeline's blame
//! verdict **without** a running cluster. This module re-ingests both
//! artifacts, reassembles the traces, reruns the critical-path
//! attribution from [`lwfs_obs::critpath`], and renders:
//!
//! * the fleet tail decomposition ([`lwfs_obs::TailReport::render`],
//!   whose `blame <stage> share=<f>` lines CI greps),
//! * per-trace text trees for the slowest K traces, annotated with the
//!   nanoseconds each span claimed on the critical path,
//! * the alert firings carried in the JSONL event stream, and
//! * a warn-only Little's-law sanity check: mean queue depth vs
//!   arrival rate × mean service time from the same windows.
//!
//! Parsing is a small recursive-descent JSON reader over the artifact
//! grammar — the workspace deliberately has no external JSON dependency,
//! and the artifacts are produced by our own hand-rolled writers, so the
//! reader only needs honest JSON, not every escape-sequence corner.

use std::collections::BTreeMap;

use lwfs_obs::{attribute, attribute_with_claims, intern, SpanRecord, TailReport, TraceCollector};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document; trailing whitespace is allowed, trailing
    /// garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(members) => members,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }
}

/// Parse a `0x…` hex id as written by the Chrome exporter.
fn parse_hex_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Re-ingest a Chrome `trace_event` export into span records on the
/// shared timeline. The exporter's synthetic `*.orphan` roots are
/// skipped — they are a rendering aid, not recorded spans, and
/// re-ingesting them would double-count orphan extents.
pub fn parse_chrome_spans(text: &str) -> Result<Vec<SpanRecord>, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("no traceEvents array — not a Chrome trace export")?;
    let mut spans = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e.get("name").and_then(|v| v.as_str()).ok_or(format!("event {i}: no name"))?;
        let (op, stage) =
            name.rsplit_once('.').ok_or(format!("event {i}: name {name:?} is not op.stage"))?;
        if stage == "orphan" {
            continue;
        }
        let us_to_ns = |v: &Json| (v.as_f64().unwrap_or(0.0) * 1000.0).round().max(0.0) as u64;
        let args = e.get("args").cloned().unwrap_or(Json::Obj(Vec::new()));
        let trace_id = args
            .get("trace_id")
            .and_then(|v| v.as_str())
            .and_then(parse_hex_id)
            .ok_or(format!("event {i}: bad trace_id"))?;
        let req_id = args
            .get("req_id")
            .and_then(|v| v.as_str())
            .and_then(parse_hex_id)
            .ok_or(format!("event {i}: bad req_id"))?;
        spans.push(SpanRecord {
            req_id,
            trace_id,
            nid: e.get("pid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u32,
            op: intern(op),
            stage: intern(stage),
            start_ns: e.get("ts").map(&us_to_ns).unwrap_or(0),
            dur_ns: e.get("dur").map(&us_to_ns).unwrap_or(0),
        });
    }
    Ok(spans)
}

/// The monitor's parsed JSONL artifact: the leading meta stamp and one
/// parsed object per aggregation window.
pub struct MonitorLog {
    pub meta: Option<Json>,
    pub windows: Vec<Json>,
}

/// Parse a `--telemetry-out` JSONL file (meta line first, then windows).
pub fn parse_monitor_jsonl(text: &str) -> Result<MonitorLog, String> {
    let mut meta = None;
    let mut windows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("meta").is_some() && meta.is_none() {
            meta = Some(v);
        } else {
            windows.push(v);
        }
    }
    Ok(MonitorLog { meta, windows })
}

/// One alert firing (or clearing) recovered from the JSONL event stream.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    pub seq: u64,
    pub nid: u32,
    pub kind: String,
    pub detail: String,
}

impl MonitorLog {
    /// Every `alert.*` event in window order, deduplicated by journal seq
    /// (consecutive windows can re-ship an overlapping journal tail).
    pub fn alerts(&self) -> Vec<AlertEvent> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for w in &self.windows {
            for e in w.get("events").and_then(|v| v.as_arr()).unwrap_or(&[]) {
                let kind = e.get("kind").and_then(|v| v.as_str()).unwrap_or("");
                if !kind.starts_with("alert.") {
                    continue;
                }
                let seq = e.get("seq").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
                if !seen.insert(seq) {
                    continue;
                }
                out.push(AlertEvent {
                    seq,
                    nid: e.get("nid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u32,
                    kind: kind.to_string(),
                    detail: e.get("detail").and_then(|v| v.as_str()).unwrap_or("").to_string(),
                });
            }
        }
        out
    }

    /// Mean of gauge `name` over windows that report it.
    fn mean_gauge(&self, name: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for w in &self.windows {
            if let Some(v) = w.get("gauges").and_then(|g| g.get(name)).and_then(|v| v.as_f64()) {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Summed counter deltas and wall time for rate computation.
    fn counter_delta_and_secs(&self, name: &str) -> (f64, f64) {
        let mut delta = 0.0;
        let mut secs = 0.0;
        for w in &self.windows {
            if let Some(d) = w
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(|e| e.get("delta"))
                .and_then(|v| v.as_f64())
            {
                delta += d;
                secs += w.get("dur_ns").and_then(|v| v.as_f64()).unwrap_or(0.0) / 1e9;
            }
        }
        (delta, secs)
    }

    /// Count-weighted mean of histogram `name` across windows.
    fn histogram_mean_ns(&self, name: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0.0;
        for w in &self.windows {
            if let Some(h) = w.get("histograms").and_then(|hs| hs.get(name)) {
                sum += h.get("sum").and_then(|v| v.as_f64()).unwrap_or(0.0);
                count += h.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
            }
        }
        (count > 0.0).then(|| sum / count)
    }

    /// Little's-law sanity check over the write path: mean queue depth L
    /// should be near arrival rate λ × mean service time W. A large
    /// excess means requests queue somewhere the latency histogram does
    /// not see — the report flags it but never fails (warn-only by
    /// design: the check needs steady state the windows may not cover).
    pub fn littles_law_check(&self) -> Option<String> {
        let observed = self.mean_gauge("storage_queue_depth")?;
        let (delta, secs) = self.counter_delta_and_secs("storage_writes");
        let mean_ns = self.histogram_mean_ns("storage_write_total_ns")?;
        if secs <= 0.0 {
            return None;
        }
        let rate = delta / secs;
        let predicted = rate * mean_ns / 1e9;
        let verdict = if observed > predicted + 2.0 && observed > 4.0 * (predicted + 0.5) {
            "WARN: queueing outside the latency histogram"
        } else {
            "ok"
        };
        Some(format!(
            "littles-law: observed mean queue depth {observed:.2}, predicted λW = \
             {rate:.1}/s × {:.3} ms = {predicted:.2} [{verdict}]",
            mean_ns / 1e6
        ))
    }
}

/// Render the full offline report from the two artifacts (either may be
/// absent; at least one must be present for the report to say anything).
pub fn render_report(
    trace_text: Option<&str>,
    jsonl_text: Option<&str>,
    top_k: usize,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();

    let log = jsonl_text.map(parse_monitor_jsonl).transpose()?;
    if let Some(log) = &log {
        if let Some(meta) = &log.meta {
            if let Some(obj) = meta.get("meta") {
                let mut fields: BTreeMap<&str, String> = BTreeMap::new();
                for (k, v) in obj.members() {
                    let rendered = match v {
                        Json::Num(n) => format!("{n}"),
                        Json::Str(s) => s.clone(),
                        other => format!("{other:?}"),
                    };
                    fields.insert(k.as_str(), rendered);
                }
                let _ = writeln!(
                    out,
                    "run: {}",
                    fields.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
                );
            }
        }
        let _ = writeln!(out, "windows: {}", log.windows.len());
    }

    if let Some(text) = trace_text {
        let spans = parse_chrome_spans(text)?;
        let mut collector = TraceCollector::new();
        collector.add_spans(spans);
        let traces = collector.traces();
        let attrs: Vec<_> = traces.iter().filter_map(attribute).collect();
        match TailReport::from_attributions(&attrs) {
            Some(tail) => {
                out.push('\n');
                out.push_str(&tail.render());
            }
            None => out.push_str("\nno traces in the artifact\n"),
        }
        for t in traces.iter().take(top_k.max(1)) {
            out.push('\n');
            out.push_str(&collector.text_tree(t.trace_id));
            if let Some((attr, claims)) = attribute_with_claims(t) {
                let _ = writeln!(out, "  critical path of {}:", attr.root_op);
                for (s, ns) in t.spans.iter().zip(&claims) {
                    if *ns == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "    {:<28} claims {:>10.3} us  [{}]",
                        format!("{}.{}", s.op, s.stage),
                        *ns as f64 / 1e3,
                        lwfs_obs::critpath::classify(s.op, s.stage).as_str()
                    );
                }
            }
        }
    }

    if let Some(log) = &log {
        let alerts = log.alerts();
        out.push('\n');
        if alerts.is_empty() {
            out.push_str("alerts: none\n");
        } else {
            let _ = writeln!(out, "alerts: {}", alerts.len());
            for a in &alerts {
                let _ =
                    writeln!(out, "  seq {:>4} nid {:>4} {} {}", a.seq, a.nid, a.kind, a.detail);
            }
        }
        if let Some(check) = log.littles_law_check() {
            out.push_str(&check);
            out.push('\n');
        }
    }

    if out.is_empty() {
        return Err("nothing to report: pass --trace and/or --jsonl".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_obs::{BlameStage, TOTAL_STAGE};

    fn span(
        req_id: u64,
        trace_id: u64,
        nid: u32,
        op: &'static str,
        stage: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord { req_id, trace_id, nid, op, stage, start_ns, dur_ns }
    }

    /// A stalled replicated write: 100 ms total, ~90 ms inside the ship.
    fn stalled_write() -> Vec<SpanRecord> {
        vec![
            span(1, 7, 0, "client.mutate", TOTAL_STAGE, 0, 100_000_000),
            span(2, 7, 1100, "storage.write", TOTAL_STAGE, 1_000_000, 98_000_000),
            span(2, 7, 1100, "storage.write", "pull", 1_500_000, 500_000),
            span(2, 7, 1100, "repl", "ship", 3_000_000, 90_000_000),
            span(9, 8, 1100, "storage.write", TOTAL_STAGE, 0, 2_000_000),
        ]
    }

    #[test]
    fn json_parser_handles_the_artifact_grammar() {
        let v =
            Json::parse("{\"a\": [1, -2.5, \"x\\n\\u0041\"], \"b\": {\"c\": true, \"d\": null}}")
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\nA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn chrome_roundtrip_reproduces_the_attribution() {
        let mut live = TraceCollector::new();
        live.add_spans(stalled_write());
        let json = live.to_chrome_json();

        let spans = parse_chrome_spans(&json).unwrap();
        let mut offline = TraceCollector::new();
        offline.add_spans(spans);
        let traces = offline.traces();
        assert_eq!(traces.len(), 2);
        let attrs: Vec<_> = traces.iter().filter_map(attribute).collect();
        let tail = TailReport::from_attributions(&attrs).unwrap();
        let (stage, share) = tail.dominant().unwrap();
        assert_eq!(stage, BlameStage::ShipRtt, "offline blame must match live: {tail:?}");
        assert!(share > 0.5, "ship share {share}");
    }

    #[test]
    fn chrome_roundtrip_skips_synthetic_orphan_roots() {
        let mut live = TraceCollector::new();
        live.add_spans(vec![
            span(4, 5, 1100, "storage.write", "pull", 1_000_000, 400_000),
            span(4, 5, 1100, "storage.write", "store_write", 1_400_000, 200_000),
        ]);
        let json = live.to_chrome_json();
        assert!(json.contains(".orphan"), "exporter roots the orphans: {json}");
        let spans = parse_chrome_spans(&json).unwrap();
        assert_eq!(spans.len(), 2, "synthetic root must not re-ingest");
        let mut offline = TraceCollector::new();
        offline.add_spans(spans);
        assert_eq!(offline.traces()[0].total_ns(), 600_000, "extent survives the roundtrip");
    }

    #[test]
    fn monitor_jsonl_yields_alerts_and_littles_law() {
        let text = concat!(
            "{\"meta\": {\"unix_ts\": 1, \"protocol_version\": 5}}\n",
            "{\"ts_ns\": 100, \"dur_ns\": 1000000000, \"counters\": ",
            "{\"storage_writes\": {\"delta\": 100, \"rate\": 100.000}}, ",
            "\"gauges\": {\"storage_queue_depth\": 1}, \"histograms\": ",
            "{\"storage_write_total_ns\": {\"count\": 100, \"sum\": 1000000000, ",
            "\"mean\": 10000000.0, \"p50\": 9, \"p95\": 9, \"p99\": 9, \"max\": 9}}, ",
            "\"events\": [{\"seq\": 4, \"ts_ns\": 5, \"nid\": 1005, ",
            "\"kind\": \"alert.fire\", \"detail\": \"rule=x: p99 high; blame=ship_rtt\"}, ",
            "{\"seq\": 5, \"ts_ns\": 6, \"nid\": 1100, ",
            "\"kind\": \"repl.evict_backup\", \"detail\": \"gone\"}]}\n",
            "{\"ts_ns\": 200, \"dur_ns\": 1000000000, \"counters\": {}, \"gauges\": {}, ",
            "\"histograms\": {}, \"events\": [{\"seq\": 4, \"ts_ns\": 5, \"nid\": 1005, ",
            "\"kind\": \"alert.fire\", \"detail\": \"rule=x: p99 high; blame=ship_rtt\"}]}\n",
        );
        let log = parse_monitor_jsonl(text).unwrap();
        assert!(log.meta.is_some());
        assert_eq!(log.windows.len(), 2);
        let alerts = log.alerts();
        assert_eq!(alerts.len(), 1, "journal seq dedups the re-shipped tail");
        assert!(alerts[0].detail.contains("blame=ship_rtt"));
        // 100 writes/s × 10 ms = 1 in queue: matches the observed gauge.
        let check = log.littles_law_check().unwrap();
        assert!(check.contains("[ok]"), "{check}");
    }

    #[test]
    fn report_renders_blame_lines_ci_can_grep() {
        let mut live = TraceCollector::new();
        live.add_spans(stalled_write());
        let json = live.to_chrome_json();
        let report = render_report(Some(&json), None, 2).unwrap();
        assert!(report.contains("blame ship_rtt share=0."), "{report}");
        assert!(report.contains("dominant: ship_rtt"), "{report}");
        assert!(report.contains("critical path of client.mutate"), "{report}");
        assert!(report.contains("repl.ship"), "{report}");
        assert!(render_report(None, None, 1).is_err());
    }
}
