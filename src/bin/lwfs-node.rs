//! `lwfs-node` — one LWFS service as one OS process.
//!
//! [`ProcessCluster`](lwfs_core::ProcessCluster) spawns one of these per
//! service node: the child loads the cluster manifest, attaches a
//! [`SocketFabric`] on its own nid (binding its manifest address), spawns
//! the requested service behind it, prints `READY <nid>` on stdout, and
//! then serves until stdin reaches EOF — the launcher holds the write end
//! open for the child's lifetime, so an orphaned child exits when its
//! parent dies instead of lingering.
//!
//! ```text
//! lwfs-node --role storage --nid 1100 --index 0 --manifest /tmp/m \
//!           --groups 2 --replication 2 --users app:secret:1
//! ```
//!
//! Every process re-creates the deterministic mock KDC
//! ([`KDC_REALM`]/[`KDC_SEED`]) with the same user set, so tickets minted
//! by the launcher verify at the authentication node without any key
//! distribution.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use lwfs_auth::{AuthConfig, AuthServer, AuthService, Clock, MockKerberos, SystemClock};
use lwfs_authz::{AuthzConfig, AuthzServer, AuthzService, CachedCapVerifier, RemoteCredVerifier};
use lwfs_cap::{CapClaims, CapIssuer, CapMode};
use lwfs_core::cluster::{CAP_SEED, KDC_REALM, KDC_SEED};
use lwfs_core::{ClusterMonitor, MonitorConfig};
use lwfs_fabric::{FabricConfig, Manifest, SocketFabric};
use lwfs_naming::NamingServer;
use lwfs_portals::{Network, NetworkConfig};
use lwfs_proto::{GroupMap, NodeId, PrincipalId, ProcessId};
use lwfs_replica::ReplicaConfig;
use lwfs_storage::{SignedCapConfig, StorageConfig, StorageServer};
use lwfs_txn::TxnLockServer;
use lwfs_wal::WalConfig;

struct Args {
    role: String,
    nid: u32,
    manifest: PathBuf,
    groups: usize,
    replication: usize,
    index: usize,
    users: Vec<(String, String, PrincipalId)>,
    wal_dir: Option<PathBuf>,
    workers: Option<usize>,
    cap_mode: CapMode,
    clock_skew_ms: u64,
    flight_threshold_us: Option<u64>,
    flight_top_k: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut role = None;
    let mut nid = None;
    let mut manifest = None;
    let mut groups = 1usize;
    let mut replication = 1usize;
    let mut index = 0usize;
    let mut users = Vec::new();
    let mut wal_dir = None;
    let mut workers = None;
    let mut cap_mode = CapMode::default();
    let mut clock_skew_ms = 1000u64;
    let mut flight_threshold_us = None;
    let mut flight_top_k = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--role" => role = Some(value()?),
            "--nid" => nid = Some(value()?.parse::<u32>().map_err(|e| format!("--nid: {e}"))?),
            "--manifest" => manifest = Some(PathBuf::from(value()?)),
            "--groups" => groups = value()?.parse().map_err(|e| format!("--groups: {e}"))?,
            "--replication" => {
                replication = value()?.parse().map_err(|e| format!("--replication: {e}"))?
            }
            "--index" => index = value()?.parse().map_err(|e| format!("--index: {e}"))?,
            "--wal-dir" => wal_dir = Some(PathBuf::from(value()?)),
            "--workers" => workers = Some(value()?.parse().map_err(|e| format!("--workers: {e}"))?),
            "--cap-mode" => {
                let v = value()?;
                cap_mode = CapMode::parse(&v).ok_or(format!("--cap-mode: unknown mode {v:?}"))?;
            }
            "--clock-skew-ms" => {
                clock_skew_ms = value()?.parse().map_err(|e| format!("--clock-skew-ms: {e}"))?
            }
            "--flight-threshold-us" => {
                flight_threshold_us =
                    Some(value()?.parse().map_err(|e| format!("--flight-threshold-us: {e}"))?)
            }
            "--flight-top-k" => {
                flight_top_k = Some(value()?.parse().map_err(|e| format!("--flight-top-k: {e}"))?)
            }
            "--users" => {
                for entry in value()?.split(',').filter(|s| !s.is_empty()) {
                    let mut parts = entry.splitn(3, ':');
                    let (Some(name), Some(pw), Some(id)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(format!("--users entry {entry:?} is not name:pw:principal"));
                    };
                    let id = id.parse::<u64>().map_err(|e| format!("--users principal: {e}"))?;
                    users.push((name.to_string(), pw.to_string(), PrincipalId(id)));
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        role: role.ok_or("--role is required")?,
        nid: nid.ok_or("--nid is required")?,
        manifest: manifest.ok_or("--manifest is required")?,
        groups,
        replication,
        index,
        users,
        wal_dir,
        workers,
        cap_mode,
        clock_skew_ms,
        flight_threshold_us,
        flight_top_k,
    })
}

/// Group-major physical storage addresses, identical to the layout the
/// launcher records in [`ClusterAddrs`](lwfs_core::ClusterAddrs).
fn storage_addrs(groups: usize, r: usize) -> Vec<ProcessId> {
    (0..groups * r).map(|i| ProcessId::new(1100 + i as u32, 0)).collect()
}

fn run(args: Args) -> Result<(), String> {
    let manifest = Manifest::load(&args.manifest).map_err(|e| format!("loading manifest: {e}"))?;
    // Flight-recorder knobs land on this process's registry: what the
    // monitor's `GetFlightTraces` scrape can recover from this node.
    let mut obs = lwfs_obs::ObsConfig::default();
    if let Some(us) = args.flight_threshold_us {
        obs.flight_threshold_ns = us.saturating_mul(1000);
    }
    if let Some(k) = args.flight_top_k {
        obs.flight_top_k = k;
    }
    let net = Network::new(NetworkConfig { obs, ..Default::default() });
    let fabric = SocketFabric::attach(&net, NodeId(args.nid), manifest, FabricConfig::default())
        .map_err(|e| format!("attaching fabric: {e}"))?;

    // Epoch-anchored: lifetimes minted by the authz process must compare
    // against the same timeline at every storage process. A per-process
    // `WallClock` (anchored at its own start) would make fresh capabilities
    // look not-yet-valid at later-started nodes.
    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    let r = args.replication.max(1);
    let authz_id = ProcessId::new(1001, 0);

    // Spawn the requested service; handles must live until shutdown, so
    // each arm parks its handle in this holder.
    let _service: Box<dyn std::any::Any> = match args.role.as_str() {
        "auth" => {
            let kdc = Arc::new(MockKerberos::new(KDC_REALM, KDC_SEED));
            for (name, pw, principal) in &args.users {
                kdc.add_user(name, pw, *principal);
            }
            let svc = AuthService::new(
                AuthConfig::default(),
                kdc as Arc<dyn lwfs_auth::AuthMechanism>,
                Arc::clone(&clock),
            );
            Box::new(AuthServer::spawn(&net, ProcessId::new(args.nid, 0), svc))
        }
        "authz" => {
            // First-contact credentials are verified at the authentication
            // *process* over the wire: pid 1 on this node is the verifier's
            // private client endpoint, distinct from the service at pid 0.
            let verifier = RemoteCredVerifier::new(
                net.register(ProcessId::new(args.nid, 1)),
                ProcessId::new(1000, 0),
            );
            let mut svc = AuthzService::new(
                AuthzConfig::default(),
                Arc::new(verifier) as Arc<dyn lwfs_authz::CredVerifier>,
                Arc::clone(&clock),
            );
            if args.cap_mode.signed() {
                // Seed-derived signing key, same determinism story as the
                // KDC: no key distribution step between processes.
                svc = svc.with_issuer(CapIssuer::from_cluster_seed(CAP_SEED), args.cap_mode);
            }
            let (handle, svc) = AuthzServer::spawn(&net, ProcessId::new(args.nid, 0), svc);
            if args.cap_mode.signed() {
                svc.set_enforcement_sites(storage_addrs(args.groups, r));
            }
            Box::new((handle, svc))
        }
        "naming" => Box::new(NamingServer::spawn(&net, ProcessId::new(args.nid, 0))),
        "txnlock" => Box::new(TxnLockServer::spawn(&net, ProcessId::new(args.nid, 0), None)),
        "directory" => {
            let map = GroupMap::grouped(&storage_addrs(args.groups, r), r);
            Box::new(lwfs_replica::spawn_directory(&net, ProcessId::new(args.nid, 0), map))
        }
        "storage" => {
            let addrs = storage_addrs(args.groups, r);
            let i = args.index;
            let sid = addrs[i];
            if sid.nid.0 != args.nid {
                return Err(format!(
                    "--index {i} maps to nid {}, not --nid {}",
                    sid.nid.0, args.nid
                ));
            }
            let mut config = StorageConfig::default();
            if let Some(workers) = args.workers {
                config.workers = workers;
            }
            if let Some(wal_root) = &args.wal_dir {
                config.wal = Some(WalConfig::new(wal_root.join(format!("srv{i}"))));
            }
            if r > 1 {
                let group = (i / r) as u32;
                let replica = if i.is_multiple_of(r) {
                    ReplicaConfig::primary(group, addrs[i + 1..(i / r + 1) * r].to_vec())
                } else {
                    ReplicaConfig::backup(group, addrs[(i / r) * r])
                }
                .with_directory(ProcessId::new(1004, 0));
                config.replica = Some(replica);
            }
            if args.cap_mode.signed() {
                let issuer = CapIssuer::from_cluster_seed(CAP_SEED);
                let ship_token = (r > 1).then(|| {
                    let group = (i / r) as u32;
                    bytes::Bytes::from(issuer.mint(CapClaims::repl_group(group, sid.nid.0)))
                });
                config.signed = Some(SignedCapConfig {
                    mode: args.cap_mode,
                    public_key: *issuer.public().as_bytes(),
                    ship_token,
                    clock_skew: std::time::Duration::from_millis(args.clock_skew_ms),
                });
            }
            let verifier = CachedCapVerifier::with_registry(sid, authz_id, net.obs());
            Box::new(StorageServer::spawn(&net, sid, config, Some(verifier), Arc::clone(&clock)))
        }
        "monitor" => {
            let mut targets = storage_addrs(args.groups, r);
            targets.push(ProcessId::new(1002, 0));
            targets.push(authz_id);
            if r > 1 {
                targets.push(ProcessId::new(1004, 0));
            }
            Box::new(ClusterMonitor::spawn(&net, targets, MonitorConfig::default()))
        }
        other => return Err(format!("unknown role {other:?}")),
    };

    // Readiness handshake: the launcher blocks on this exact line.
    println!("READY {}", args.nid);

    // Serve until the launcher closes our stdin (or dies, which closes it
    // too). Reading to EOF needs no polling thread.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);

    fabric.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "lwfs-node: {e}\nusage: lwfs-node --role <auth|authz|naming|txnlock|directory|storage|monitor> \
                 --nid N --manifest PATH [--groups G] [--replication R] [--index I] \
                 [--users name:pw:principal,...] [--wal-dir PATH] [--workers N] \
                 [--cap-mode legacy|signed|require] [--clock-skew-ms MS] \
                 [--flight-threshold-us US] [--flight-top-k K]"
            );
            return ExitCode::FAILURE;
        }
    };
    let role = args.role.clone();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lwfs-node ({role}): {e}");
            ExitCode::FAILURE
        }
    }
}
