//! `lwfs-inspect` — offline tail-latency attribution from monitoring
//! artifacts.
//!
//! ```text
//! lwfs-inspect [--trace <chrome-trace.json>] [--jsonl <telemetry.jsonl>] [--top K]
//! ```
//!
//! Reads the Chrome `trace_event` export of scraped slow traces
//! (`--trace-out`) and/or the monitor's windowed JSONL series
//! (`--telemetry-out`), reruns the critical-path attribution, and prints
//! the fleet tail decomposition, the slowest-K trace trees with per-span
//! critical-path claims, the alert firings, and a warn-only Little's-law
//! queue sanity check. No cluster required: the point is that a
//! post-mortem reproduces the live pipeline's blame verdict from the
//! artifacts alone.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lwfs-inspect [--trace <chrome-trace.json>] [--jsonl <telemetry.jsonl>] [--top K]"
    );
    eprintln!("  at least one of --trace / --jsonl is required");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut jsonl: Option<PathBuf> = None;
    let mut top_k = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |flag: &str| {
            inline.clone().or_else(|| args.next()).ok_or_else(|| {
                eprintln!("{flag} needs a value");
            })
        };
        match flag.as_str() {
            "--trace" => match value("--trace") {
                Ok(v) => trace = Some(PathBuf::from(v)),
                Err(()) => return ExitCode::FAILURE,
            },
            "--jsonl" => match value("--jsonl") {
                Ok(v) => jsonl = Some(PathBuf::from(v)),
                Err(()) => return ExitCode::FAILURE,
            },
            "--top" => match value("--top").map(|v| v.parse::<usize>()) {
                Ok(Ok(k)) => top_k = k.max(1),
                _ => {
                    eprintln!("--top needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    if trace.is_none() && jsonl.is_none() {
        return usage();
    }

    let read = |path: &PathBuf| match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            Err(())
        }
    };
    let trace_text = match trace.as_ref().map(read).transpose() {
        Ok(t) => t,
        Err(()) => return ExitCode::FAILURE,
    };
    let jsonl_text = match jsonl.as_ref().map(read).transpose() {
        Ok(t) => t,
        Err(()) => return ExitCode::FAILURE,
    };

    match lwfs::inspect::render_report(trace_text.as_deref(), jsonl_text.as_deref(), top_k) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lwfs-inspect: {e}");
            ExitCode::FAILURE
        }
    }
}
