//! # LWFS — Lightweight I/O for Scientific Applications
//!
//! A comprehensive Rust reproduction of *Lightweight I/O for Scientific
//! Applications* (Oldfield, Maccabe, Arunagiri, Kordenbrock, Riesen, Ward,
//! Widener — Sandia report SAND2006-3057 / CLUSTER 2006).
//!
//! The paper proposes the **LWFS-core**: instead of a general-purpose
//! parallel file system, give applications only the minimal fixed core
//! every I/O system needs — scalable security (credentials + capabilities
//! on containers of objects), server-directed data movement over a
//! one-sided transport, direct object access, and distributed
//! transactions — and let I/O libraries build everything else (naming,
//! distribution, consistency) to fit the application.
//!
//! This crate is the facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`proto`] | `lwfs-proto` | wire types, ids, capabilities, codec |
//! | [`replica`] | `lwfs-replica` | replication groups, directory, failover |
//! | [`portals`] | `lwfs-portals` | Portals-like one-sided substrate |
//! | [`auth`] | `lwfs-auth` | authentication service |
//! | [`authz`] | `lwfs-authz` | authorization service + cap caches |
//! | [`storage`] | `lwfs-storage` | object storage, server-directed I/O |
//! | [`naming`] | `lwfs-naming` | path binding service (client extension) |
//! | [`txn`] | `lwfs-txn` | journals, locks, two-phase commit |
//! | [`obs`] | `lwfs-obs` | metrics, distributed traces, event journal |
//! | [`wal`] | `lwfs-wal` | segmented write-ahead log + replay |
//! | [`core`] | `lwfs-core` | **the LWFS-core client API + cluster** |
//! | [`pfs`] | `lwfs-pfs` | Lustre-like baseline (MDS + OSTs) |
//! | [`checkpoint`] | `lwfs-checkpoint` | the §4 case study |
//! | [`sim`] | `lwfs-sim` | discrete-event simulation engine |
//! | [`models`] | `lwfs-models` | queueing models for Figures 9/10 |
//! | [`sciio`] | `lwfs-sciio` | PnetCDF-like library on the core (§6) |
//! | [`iolib`] | `lwfs-iolib` | caching/prefetching layer (Figure 2) |
//! | [`workload`] | `lwfs-workload` | workload generators, sweep grids |
//!
//! ## Quickstart
//!
//! ```
//! use lwfs::prelude::*;
//!
//! // Boot a full in-process deployment: auth + authz + naming +
//! // txn/lock + 4 storage servers, wired over the Portals substrate.
//! let cluster = LwfsCluster::boot(ClusterConfig::default());
//!
//! // An application process authenticates and acquires capabilities.
//! let mut client = cluster.client(0, 0);
//! let ticket = cluster.kdc().kinit("app", "secret").unwrap();
//! client.get_cred(ticket).unwrap();
//! let cid = client.create_container().unwrap();
//! let caps = client.get_caps(cid, OpMask::ALL).unwrap();
//!
//! // Object I/O with server-directed transfers.
//! let obj = client.create_obj(0, &caps, None, None).unwrap();
//! client.write(0, &caps, None, obj, 0, b"hello lightweight i/o").unwrap();
//! assert_eq!(
//!     client.read(0, &caps, obj, 0, 21).unwrap(),
//!     b"hello lightweight i/o"
//! );
//! ```

pub mod inspect;

pub use lwfs_auth as auth;
pub use lwfs_authz as authz;
pub use lwfs_cap as cap;
pub use lwfs_checkpoint as checkpoint;
pub use lwfs_core as core;
pub use lwfs_iolib as iolib;
pub use lwfs_models as models;
pub use lwfs_naming as naming;
pub use lwfs_obs as obs;
pub use lwfs_pfs as pfs;
pub use lwfs_portals as portals;
pub use lwfs_proto as proto;
pub use lwfs_replica as replica;
pub use lwfs_sciio as sciio;
pub use lwfs_sim as sim;
pub use lwfs_storage as storage;
pub use lwfs_txn as txn;
pub use lwfs_wal as wal;
pub use lwfs_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use lwfs_checkpoint::{CkptReport, LwfsCheckpointer, PfsCheckpointer, PfsStyle};
    pub use lwfs_core::{CapSet, ClusterConfig, LwfsClient, LwfsCluster};
    pub use lwfs_pfs::{OpenMode, PfsCluster, PfsConfig};
    pub use lwfs_portals::Group;
    pub use lwfs_proto::{
        Capability, ContainerId, Credential, Error, ObjId, OpMask, PrincipalId, ProcessId, TxnId,
    };
    pub use lwfs_wal::{SyncPolicy, WalConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let cluster = LwfsCluster::boot(ClusterConfig::default());
        let mut client = cluster.client(0, 0);
        let ticket = cluster.kdc().kinit("app", "secret").unwrap();
        client.get_cred(ticket).unwrap();
        let cid = client.create_container().unwrap();
        let caps = client.get_caps(cid, OpMask::ALL).unwrap();
        let obj = client.create_obj(0, &caps, None, None).unwrap();
        client.write(0, &caps, None, obj, 0, b"facade").unwrap();
        assert_eq!(client.read(0, &caps, obj, 0, 6).unwrap(), b"facade");
    }
}
