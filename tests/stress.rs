//! Randomized concurrency stress over the functional plane: several
//! client threads drive seeded random operation mixes against live
//! services while each thread checks every result against a local shadow
//! model. Catches cross-request races in the storage server, capability
//! cache, and transaction machinery that directed tests can miss.

use std::collections::HashMap;
use std::sync::Arc;

use lwfs::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 200;

#[test]
fn randomized_object_ops_match_shadow_model() {
    let cluster =
        Arc::new(LwfsCluster::boot(ClusterConfig { storage_servers: 3, ..Default::default() }));
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let wire = caps.to_wire();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let client = cluster.client(t as u32, 0);
                let caps = CapSet::from_wire(wire).unwrap();
                let mut rng = ChaCha8Rng::seed_from_u64(0x57E55 ^ t as u64);
                // Shadow: my objects and their expected contents.
                let mut shadow: HashMap<(usize, ObjId), Vec<u8>> = HashMap::new();
                let mut live: Vec<(usize, ObjId)> = Vec::new();

                for op in 0..OPS_PER_THREAD {
                    match rng.gen_range(0..100) {
                        // Create (30%).
                        0..=29 => {
                            let server = rng.gen_range(0..3);
                            let obj = client.create_obj(server, &caps, None, None).unwrap();
                            shadow.insert((server, obj), Vec::new());
                            live.push((server, obj));
                        }
                        // Write at random offset (35%).
                        30..=64 if !live.is_empty() => {
                            let key = live[rng.gen_range(0..live.len())];
                            let offset = rng.gen_range(0..2048u64);
                            let len = rng.gen_range(1..512usize);
                            let data: Vec<u8> =
                                (0..len).map(|i| ((op * 31 + i) % 251) as u8).collect();
                            client.write(key.0, &caps, None, key.1, offset, &data).unwrap();
                            let entry = shadow.get_mut(&key).unwrap();
                            let end = offset as usize + len;
                            if entry.len() < end {
                                entry.resize(end, 0);
                            }
                            entry[offset as usize..end].copy_from_slice(&data);
                        }
                        // Read and compare (25%).
                        65..=89 if !live.is_empty() => {
                            let key = live[rng.gen_range(0..live.len())];
                            let expect = &shadow[&key];
                            let got =
                                client.read(key.0, &caps, key.1, 0, expect.len().max(1)).unwrap();
                            assert_eq!(&got, expect, "thread {t} op {op} object {key:?}");
                        }
                        // Remove (10%).
                        90..=99 if !live.is_empty() => {
                            let idx = rng.gen_range(0..live.len());
                            let key = live.swap_remove(idx);
                            client.remove_obj(key.0, &caps, None, key.1).unwrap();
                            shadow.remove(&key);
                            // Reading a removed object must fail.
                            assert_eq!(
                                client.read(key.0, &caps, key.1, 0, 1).unwrap_err(),
                                Error::NoSuchObject(key.1)
                            );
                        }
                        _ => {}
                    }
                }
                // Final sweep: every surviving object matches its shadow.
                for (key, expect) in &shadow {
                    let got = client.read(key.0, &caps, key.1, 0, expect.len().max(1)).unwrap();
                    assert_eq!(&got, expect, "final sweep, thread {t}, object {key:?}");
                }
                shadow.len()
            })
        })
        .collect();

    let survivors: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // Every thread's surviving objects are accounted for on the servers
    // (threads never touch each other's objects).
    let stored: usize = (0..3).map(|i| cluster.storage_server(i).store().object_count()).sum();
    assert_eq!(stored, survivors);
    // The capability cache absorbed the whole run: a handful of misses
    // (one per (server, capability) pair), thousands of hits.
    let mut total_misses = 0;
    for i in 0..3 {
        let s = cluster.storage_server(i).cap_cache_stats().unwrap();
        total_misses += s.misses;
        assert!(s.hits > 100, "server {i} hits {}", s.hits);
    }
    assert!(total_misses <= 5 * 3, "misses: {total_misses}");
}

#[test]
fn randomized_concurrent_transactions_are_atomic() {
    // Threads run small transactions (create + writes) and randomly commit
    // or abort; afterwards every committed object is intact and every
    // aborted one is gone.
    let cluster =
        Arc::new(LwfsCluster::boot(ClusterConfig { storage_servers: 2, ..Default::default() }));
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let wire = caps.to_wire();
    let cred = owner.current_cred().unwrap();

    let handles: Vec<_> = (0..3usize)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let mut client = cluster.client(t as u32, 0);
                client.adopt_cred(cred);
                let caps = CapSet::from_wire(wire).unwrap();
                let mut rng = ChaCha8Rng::seed_from_u64(0x7A5 ^ t as u64);
                let mut committed = Vec::new();
                let mut aborted = Vec::new();

                for i in 0..40 {
                    let txn = client.txn_begin().unwrap();
                    let server = rng.gen_range(0..2);
                    let obj = client.create_obj(server, &caps, Some(txn), None).unwrap();
                    let payload = format!("t{t}-i{i}");
                    client.write(server, &caps, Some(txn), obj, 0, payload.as_bytes()).unwrap();
                    let participants = vec![cluster.addrs().storage[server]];
                    if rng.gen_bool(0.5) {
                        let out = client.txn_commit(txn, participants).unwrap();
                        assert!(out.is_committed());
                        committed.push((server, obj, payload));
                    } else {
                        client.txn_abort(txn, participants).unwrap();
                        aborted.push((server, obj));
                    }
                }
                (committed, aborted)
            })
        })
        .collect();

    let client = cluster.client(98, 0);
    let caps = CapSet::from_wire(wire).unwrap();
    for h in handles {
        let (committed, aborted) = h.join().unwrap();
        for (server, obj, payload) in committed {
            let got = client.read(server, &caps, obj, 0, payload.len()).unwrap();
            assert_eq!(got, payload.as_bytes());
        }
        for (server, obj) in aborted {
            assert_eq!(
                client.read(server, &caps, obj, 0, 1).unwrap_err(),
                Error::NoSuchObject(obj)
            );
        }
    }
}

#[test]
fn worker_pool_keeps_objects_exact_under_parallel_clients() {
    // One storage server with a 4-worker pool; four client threads mix
    // disjoint-object traffic (must overlap freely) with whole-range
    // overlapping writes to one shared object (must serialize — a torn
    // multi-chunk write would leave mixed fill bytes).
    use lwfs::storage::StorageConfig;

    let cluster = Arc::new(LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        storage: StorageConfig { workers: 4, ..Default::default() },
        ..Default::default()
    }));
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let wire = caps.to_wire();
    let shared = owner.create_obj(0, &caps, None, None).unwrap();

    const STRIDE: usize = 4 * 1024;
    const SHARED_LEN: usize = 300 * 1024; // > one chunk: tearing visible
    const ITERS: usize = 10;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let client = cluster.client(t as u32, 0);
                let caps = CapSet::from_wire(wire).unwrap();
                let own = client.create_obj(0, &caps, None, None).unwrap();
                for i in 0..ITERS {
                    let tag = (t * ITERS + i) as u8;
                    // Disjoint: my object, my stripe.
                    client
                        .write(0, &caps, None, own, (i * STRIDE) as u64, &vec![tag; STRIDE])
                        .unwrap();
                    // Contended: everyone rewrites the whole shared range.
                    client.write(0, &caps, None, shared, 0, &vec![tag; SHARED_LEN]).unwrap();
                }
                own
            })
        })
        .collect();
    let owns: Vec<ObjId> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let client = cluster.client(98, 0);
    let caps = CapSet::from_wire(wire).unwrap();
    for (t, own) in owns.iter().enumerate() {
        let data = client.read(0, &caps, *own, 0, ITERS * STRIDE).unwrap();
        assert_eq!(data.len(), ITERS * STRIDE);
        for i in 0..ITERS {
            let tag = (t * ITERS + i) as u8;
            assert!(
                data[i * STRIDE..(i + 1) * STRIDE].iter().all(|b| *b == tag),
                "thread {t} stripe {i} corrupted"
            );
        }
    }
    // Whole-range writes serialize: the shared object is uniformly one
    // thread's final tag, never a mix of chunks from different writers.
    let data = client.read(0, &caps, shared, 0, SHARED_LEN).unwrap();
    let first = data[0];
    assert!(data.iter().all(|b| *b == first), "shared object torn (starts with {first})");
    assert!(
        (0..THREADS).any(|t| first as usize >= t * ITERS && (first as usize) < (t + 1) * ITERS),
        "final bytes must come from some thread's write"
    );

    let server = cluster.storage_server(0);
    let expected_writes = (THREADS * ITERS * 2) as u64;
    assert_eq!(server.stats().writes.get(), expected_writes);
}

#[test]
fn cross_process_replication_write_storm() {
    // The whole cluster as real OS processes: one R=2 storage group plus
    // auth/authz/naming/txnlock/directory, each spawned from the
    // `lwfs-node` binary, with this test process holding only a client
    // fabric. Every op below — kinit verification, capability issue,
    // verify-through, create, replicated writes with WAL ships, reads —
    // crosses process boundaries over TCP.
    use lwfs::core::{ProcessCluster, ProcessClusterConfig};

    let mut cluster = ProcessCluster::launch(ProcessClusterConfig {
        node_bin: env!("CARGO_BIN_EXE_lwfs-node").into(),
        storage_servers: 1,
        replication: 2,
        ..Default::default()
    })
    .expect("launching process cluster");
    // 7 service processes (auth, authz, naming, txnlock, directory, two
    // storage servers) plus this launcher: real OS-level parallelism.
    assert_eq!(cluster.host_parallelism(), 8);

    let mut client = cluster.client(1, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    // The write storm: every write is WAL-shipped to the backup process
    // before the ack comes back over the wire.
    const WRITES: u64 = 32;
    const CHUNK: usize = 16 * 1024;
    let payload = vec![0xC3u8; CHUNK];
    for i in 0..WRITES {
        let n = client.write(0, &caps, None, obj, i * CHUNK as u64, &payload).unwrap();
        assert_eq!(n, CHUNK as u64);
    }
    let back = client.read(0, &caps, obj, 0, WRITES as usize * CHUNK).unwrap();
    assert_eq!(back.len(), WRITES as usize * CHUNK);
    assert!(back.iter().all(|b| *b == 0xC3), "storm bytes corrupted crossing processes");

    // SIGKILL the backup process: the primary's next ship fails on the
    // wire, it reports the drop to the directory over the fabric, and
    // writes proceed against the shrunken group. The first write may need
    // to outwait the primary's ship deadline.
    assert!(cluster.kill_storage(1), "backup process was not running");
    let mut attempts = 0;
    loop {
        match client.write(0, &caps, None, obj, 0, &payload) {
            Ok(_) => break,
            Err(Error::Timeout) | Err(Error::ServerBusy) if attempts < 50 => attempts += 1,
            Err(e) => panic!("write after backup kill: {e:?}"),
        }
    }
    assert_eq!(client.read(0, &caps, obj, 0, CHUNK).unwrap(), payload);
    assert_eq!(cluster.host_parallelism(), 7, "exactly the killed backup should be gone");
    cluster.shutdown();
}

#[test]
fn rpc_storm_under_message_loss_converges() {
    // 10% message loss: a retry wrapper over the RPC layer still completes
    // every operation, and the final state is exact.
    use lwfs::portals::FaultPlan;

    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 1, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    // Short RPC timeout: lost messages are detected in 100 ms, so fifty
    // operations with ~10% loss converge in a couple of seconds.
    client.set_rpc_timeout(std::time::Duration::from_millis(100));
    cluster.network().set_faults(FaultPlan { drop_rate: 0.10, ..Default::default() });

    let mut completed = 0u32;
    for i in 0..50u64 {
        // Application-level retry loop: writes are idempotent (same data,
        // same offset), so retrying a timed-out write is safe.
        let mut attempts = 0;
        loop {
            match client.write(0, &caps, None, obj, i * 4, b"ok!!") {
                Ok(_) => break,
                Err(Error::Timeout) | Err(Error::ServerBusy) if attempts < 50 => attempts += 1,
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        completed += 1;
    }
    assert_eq!(completed, 50);

    cluster.network().heal();
    let data = client.read(0, &caps, obj, 0, 200).unwrap();
    assert_eq!(data.len(), 200);
    for chunk in data.chunks_exact(4) {
        assert_eq!(chunk, b"ok!!");
    }
}
