//! Layering integration tests — Figure 2 as executable claims.
//!
//! "The LWFS-core provides object-based access, user authentication, and
//! authorization. Layers above provide application-specific functionality
//! in the form of libraries or file system implementations. … each layer
//! (including the application) may access the LWFS-core directly."

use std::time::Duration;

use lwfs::prelude::*;

#[test]
fn pfs_files_are_ordinary_lwfs_objects_underneath() {
    // The Lustre-like PFS is built entirely on the LWFS public API: an
    // application holding the right capabilities can address the stripe
    // objects of a PFS file directly through the core — layers do not
    // hide the substrate.
    let cluster = PfsCluster::boot(PfsConfig {
        lwfs: ClusterConfig { storage_servers: 2, ..Default::default() },
        mds_create_service: Duration::from_micros(50),
        mds_open_service: Duration::from_micros(10),
    });
    let pfs_client = cluster.client(0, 0);
    let mut f = pfs_client.create("/layered", 2, 1024, OpenMode::Private).unwrap();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    pfs_client.write(&mut f, 0, &payload).unwrap();
    pfs_client.close(f).unwrap();

    // Reopen to learn the layout, then read the FIRST STRIPE directly via
    // the LWFS core using the (trusted-client) capabilities the MDS hands
    // out — bypassing the file abstraction entirely.
    let f = pfs_client.open("/layered", OpenMode::Private).unwrap();
    let lwfs_view = cluster.lwfs().client(50, 0);
    let caps = lwfs::core::CapSet::new(
        // Reuse the caps embedded in the PFS layout reply.
        {
            let f2 = pfs_client.open("/layered", OpenMode::Private).unwrap();
            let _ = f2; // layout identical; fetch caps from a fresh open
                        // The public PfsFile API doesn't expose caps; go through the
                        // authorization service as the owner instead:
            cluster
                .lwfs()
                .authz_service()
                .get_caps(
                    &cluster
                        .lwfs()
                        .auth_service()
                        .get_cred(&cluster.lwfs().kdc().kinit("pfs-mds", "mds-secret").unwrap())
                        .unwrap(),
                    cluster.container(),
                    OpMask::READ | OpMask::GETATTR,
                )
                .unwrap()
        },
    );
    let objs = lwfs_view.list_objs(0, &caps).unwrap();
    assert!(!objs.is_empty(), "stripe objects visible through the core");
    // Stripe 0 of the file holds bytes [0..1024) ++ [2048..3072).
    let direct = lwfs_view.read(0, &caps, objs[0], 0, 1024).unwrap();
    assert_eq!(direct, &payload[..1024]);
    drop(f);
}

#[test]
fn checkpoint_library_is_backend_agnostic() {
    // The same application-facing call sequence works over LWFS and over
    // the PFS — the case study's three implementations share a shape.
    use lwfs::checkpoint::{LwfsCheckpointer, PfsCheckpointer, PfsStyle};

    let state = vec![0xC4u8; 64 * 1024];
    let group = Group::new(vec![ProcessId::new(0, 0)]);

    // LWFS backend.
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 2, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::CHECKPOINT | OpMask::READ).unwrap();
    let ck = LwfsCheckpointer::new(&client, group.clone(), 0, caps, "/agnostic");
    let r1 = ck.checkpoint(1, &state).unwrap();
    assert_eq!(ck.restore(1).unwrap(), state);

    // PFS backend (both styles).
    let pfs = PfsCluster::boot(PfsConfig {
        lwfs: ClusterConfig { storage_servers: 2, ..Default::default() },
        mds_create_service: Duration::from_micros(50),
        mds_open_service: Duration::from_micros(10),
    });
    let pclient = pfs.client(0, 0);
    for style in [PfsStyle::FilePerProcess, PfsStyle::SharedFile] {
        let ck = PfsCheckpointer::new(
            &pclient,
            group.clone(),
            0,
            style,
            format!("/agnostic-{}", style.label()),
            2,
            16 * 1024,
        );
        let r = ck.checkpoint(1, &state).unwrap();
        assert_eq!(ck.restore(1, state.len()).unwrap(), state, "{}", style.label());
        assert!(r.bytes == r1.bytes);
    }
}

#[test]
fn application_specific_layout_beats_imposed_policy_for_its_pattern() {
    // Figure 2's point, made concrete: an application that KNOWS its
    // access pattern (strided records, reader wants one column) can place
    // data so each reader touches exactly one server — something the
    // PFS's fixed striping cannot express.
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 4, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    // Application-chosen layout: column c of a 4-column matrix lives
    // wholly on server c.
    let cols = 4usize;
    let col_bytes = 8 * 1024;
    let mut objs = Vec::new();
    for c in 0..cols {
        let obj = client.create_obj(c, &caps, None, None).unwrap();
        client.write(c, &caps, None, obj, 0, &vec![c as u8; col_bytes]).unwrap();
        objs.push(obj);
    }

    // Column read: exactly one server involved, measurable on the wire.
    let stats = cluster.network().stats();
    stats.reset();
    let col2 = client.read(2, &caps, objs[2], 0, col_bytes).unwrap();
    assert!(col2.iter().all(|b| *b == 2));
    for (i, addr) in cluster.addrs().storage.iter().enumerate() {
        let sent = stats.sent_by(*addr);
        if i == 2 {
            assert!(sent > 0, "server 2 must serve the read");
        } else {
            assert_eq!(sent, 0, "server {i} must be untouched by a column read");
        }
    }
}
