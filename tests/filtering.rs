//! Integration tests for the remote-filtering extension (§6): server-side
//! filters over the full stack, with wire-traffic accounting showing the
//! data-movement win.

use lwfs::prelude::*;
use lwfs::proto::FilterSpec;
use lwfs::storage::decode_stats;

fn f32s(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn setup() -> (LwfsCluster, LwfsClient, CapSet, ObjId) {
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 1, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    (cluster, client, caps, obj)
}

#[test]
fn threshold_filter_returns_only_events() {
    let (_cluster, client, caps, obj) = setup();
    // A "trace": quiet background with two strong arrivals.
    let mut trace = vec![0.01f32; 10_000];
    trace[1234] = 8.5;
    trace[8765] = -9.25;
    client.write(0, &caps, None, obj, 0, &f32s(&trace)).unwrap();

    let (result, scanned) = client
        .read_filtered(0, &caps, obj, 0, trace.len() * 4, FilterSpec::Threshold { min_abs: 1.0 })
        .unwrap();
    assert_eq!(scanned, trace.len() as u64 * 4);
    let events: Vec<f32> =
        result.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(events, vec![8.5, -9.25]);
}

#[test]
fn filtering_moves_less_than_a_full_read() {
    let (cluster, client, caps, obj) = setup();
    let trace = vec![0.001f32; 100_000]; // 400 KB, nothing above threshold
    client.write(0, &caps, None, obj, 0, &f32s(&trace)).unwrap();

    let stats = cluster.network().stats();

    stats.reset();
    let full = client.read(0, &caps, obj, 0, trace.len() * 4).unwrap();
    let full_bytes = stats.bytes.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(full.len(), 400_000);

    stats.reset();
    let (result, scanned) =
        client.read_filtered(0, &caps, obj, 0, trace.len() * 4, FilterSpec::Stats).unwrap();
    let filtered_bytes = stats.bytes.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(result.len(), 16);
    assert_eq!(scanned, 400_000);

    assert!(
        filtered_bytes * 100 < full_bytes,
        "filtered path moved {filtered_bytes}B vs {full_bytes}B for the full read"
    );
}

#[test]
fn stats_filter_computes_reduction() {
    let (_cluster, client, caps, obj) = setup();
    let values = [3.0f32, -1.0, 4.0, 1.5, -9.25];
    client.write(0, &caps, None, obj, 0, &f32s(&values)).unwrap();

    let (block, _) =
        client.read_filtered(0, &caps, obj, 0, values.len() * 4, FilterSpec::Stats).unwrap();
    let (min, max, sum, count) = decode_stats(&block).unwrap();
    assert_eq!(min, -9.25);
    assert_eq!(max, 4.0);
    assert!((sum - (-1.75)).abs() < 1e-5);
    assert_eq!(count, 5);
}

#[test]
fn subsample_filter_decimates_on_the_server() {
    let (_cluster, client, caps, obj) = setup();
    let values: Vec<f32> = (0..1000).map(|i| i as f32).collect();
    client.write(0, &caps, None, obj, 0, &f32s(&values)).unwrap();

    let (result, _) = client
        .read_filtered(0, &caps, obj, 0, 4000, FilterSpec::Subsample { stride: 100 })
        .unwrap();
    let decimated: Vec<f32> =
        result.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(decimated, (0..10).map(|i| (i * 100) as f32).collect::<Vec<_>>());
}

#[test]
fn filtered_read_requires_a_read_capability() {
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 1, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let full = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &full, None, None).unwrap();
    client.write(0, &full, None, obj, 0, &f32s(&[1.0, 2.0])).unwrap();

    // Write-only capabilities cannot run filters.
    let write_only = client.get_caps(cid, OpMask::WRITE).unwrap();
    let err = client.read_filtered(0, &write_only, obj, 0, 8, FilterSpec::Stats).unwrap_err();
    assert_eq!(err, Error::AccessDenied);
}
