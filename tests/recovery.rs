//! Durability and crash-recovery integration tests: WAL-backed storage
//! servers are crashed mid-workload and restarted, and the replayed state
//! must honor exactly the acknowledgments the old instance gave out —
//! committed transactions survive, unprepared staged work vanishes, and
//! prepared transactions come back *in doubt* until the coordinator
//! resolves them.

use std::path::PathBuf;

use lwfs::prelude::*;
use lwfs::storage::StorageConfig;

/// A fresh WAL root for one test, removed when the guard drops.
struct WalRoot(PathBuf);

impl WalRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("lwfs-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        WalRoot(dir)
    }
}

impl Drop for WalRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn boot_wal(servers: usize, root: &WalRoot, sync: SyncPolicy) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig {
        storage_servers: servers,
        storage: StorageConfig {
            wal: Some(WalConfig { sync, ..WalConfig::new(root.0.clone()) }),
            ..Default::default()
        },
        ..Default::default()
    })
}

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

#[test]
fn committed_2pc_write_survives_crash_and_restart() {
    let root = WalRoot::new("committed");
    let mut cluster = boot_wal(2, &root, SyncPolicy::Always);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    // A 2PC write spanning both servers, committed.
    let txn = client.txn_begin().unwrap();
    let o0 = client.create_obj(0, &caps, Some(txn), None).unwrap();
    let o1 = client.create_obj(1, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), o0, 0, b"replica zero").unwrap();
    client.write(1, &caps, Some(txn), o1, 0, b"replica one!").unwrap();
    let participants = vec![cluster.addrs().storage[0], cluster.addrs().storage[1]];
    assert!(client.txn_commit(txn, participants).unwrap().is_committed());

    // Plus a plain acknowledged (non-transactional) write.
    let plain = client.create_obj(1, &caps, None, None).unwrap();
    client.write(1, &caps, None, plain, 0, b"acked outside txn").unwrap();

    cluster.crash_storage(1);
    assert_eq!(client.read(1, &caps, o1, 0, 12).unwrap_err(), Error::Unreachable);
    cluster.restart_storage(1);

    // Everything the old instance acknowledged is back.
    assert_eq!(client.read(0, &caps, o0, 0, 12).unwrap(), b"replica zero");
    assert_eq!(client.read(1, &caps, o1, 0, 12).unwrap(), b"replica one!");
    assert_eq!(client.read(1, &caps, plain, 0, 17).unwrap(), b"acked outside txn");

    // Recovery observability: records were replayed and timed.
    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("wal.replay_records").unwrap_or(0) > 0, "replay counted no records");
    assert!(snap.gauge("storage.recovery_ms").is_some(), "recovery time not recorded");
    assert!(snap.gauge("storage.recovered_objects").unwrap_or(0) >= 2);
}

#[test]
fn unprepared_staged_ops_vanish_on_restart() {
    let root = WalRoot::new("unprepared");
    let mut cluster = boot_wal(1, &root, SyncPolicy::Always);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    // Durable baseline the staged transaction scribbles over.
    let base = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, base, 0, b"baseline").unwrap();

    // Staged but never prepared: the crash hits before phase 1.
    let txn = client.txn_begin().unwrap();
    let staged = client.create_obj(0, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), staged, 0, b"doomed").unwrap();
    client.write(0, &caps, Some(txn), base, 0, b"OVERWRIT").unwrap();

    cluster.crash_storage(0);
    cluster.restart_storage(0);

    // Presumed abort: the staged create is gone and the overwrite is
    // rolled back to the baseline bytes.
    assert_eq!(client.read(0, &caps, staged, 0, 6).unwrap_err(), Error::NoSuchObject(staged));
    assert_eq!(client.read(0, &caps, base, 0, 8).unwrap(), b"baseline");
    assert_eq!(cluster.storage_server(0).in_doubt_txns(), vec![]);
}

#[test]
fn prepared_txn_restarts_in_doubt_and_follows_commit_verdict() {
    let root = WalRoot::new("indoubt-commit");
    let mut cluster = boot_wal(2, &root, SyncPolicy::Always);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let txn = client.txn_begin().unwrap();
    let o0 = client.create_obj(0, &caps, Some(txn), None).unwrap();
    let o1 = client.create_obj(1, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), o0, 0, b"half zero").unwrap();
    client.write(1, &caps, Some(txn), o1, 0, b"half one!").unwrap();

    // Phase 1 only: both participants vote yes and persist the vote; the
    // coordinator "crashes" before sending the decision.
    let participants = vec![cluster.addrs().storage[0], cluster.addrs().storage[1]];
    assert!(client.txn_prepare(txn, participants.clone()).unwrap().is_empty());

    cluster.crash_storage(1);
    cluster.restart_storage(1);

    // The restarted participant is in doubt: it remembers the prepared
    // transaction and must not decide unilaterally.
    assert_eq!(cluster.storage_server(1).in_doubt_txns(), vec![txn]);

    // The coordinator resolves to commit; the staged bytes become
    // permanent on both the survivor and the restarted server.
    client.txn_resolve(txn, participants, true).unwrap();
    assert_eq!(client.read(0, &caps, o0, 0, 9).unwrap(), b"half zero");
    assert_eq!(client.read(1, &caps, o1, 0, 9).unwrap(), b"half one!");
    assert_eq!(cluster.storage_server(1).in_doubt_txns(), vec![]);
}

#[test]
fn prepared_txn_restarts_in_doubt_and_follows_abort_verdict() {
    let root = WalRoot::new("indoubt-abort");
    let mut cluster = boot_wal(2, &root, SyncPolicy::Always);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let txn = client.txn_begin().unwrap();
    let o0 = client.create_obj(0, &caps, Some(txn), None).unwrap();
    let o1 = client.create_obj(1, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), o0, 0, b"never lands").unwrap();
    client.write(1, &caps, Some(txn), o1, 0, b"never lands").unwrap();
    let participants = vec![cluster.addrs().storage[0], cluster.addrs().storage[1]];
    assert!(client.txn_prepare(txn, participants.clone()).unwrap().is_empty());

    cluster.crash_storage(1);
    cluster.restart_storage(1);
    assert_eq!(cluster.storage_server(1).in_doubt_txns(), vec![txn]);

    // Verdict: abort. The reconstructed undo journal rolls everything
    // back, including on the restarted participant.
    client.txn_resolve(txn, participants, false).unwrap();
    assert_eq!(client.read(0, &caps, o0, 0, 11).unwrap_err(), Error::NoSuchObject(o0));
    assert_eq!(client.read(1, &caps, o1, 0, 11).unwrap_err(), Error::NoSuchObject(o1));
    assert_eq!(cluster.storage_server(1).in_doubt_txns(), vec![]);
}

#[test]
fn resolve_tolerates_participants_that_never_crashed() {
    // Resolving a transaction the survivor already decided (e.g. the
    // coordinator retried after a partial phase 2) must be idempotent.
    let root = WalRoot::new("reresolve");
    let mut cluster = boot_wal(1, &root, SyncPolicy::Always);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let txn = client.txn_begin().unwrap();
    let obj = client.create_obj(0, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), obj, 0, b"decided").unwrap();
    let participants = vec![cluster.addrs().storage[0]];
    assert!(client.txn_commit(txn, participants.clone()).unwrap().is_committed());

    // A second decision round: the participant no longer knows the txn.
    client.txn_resolve(txn, participants.clone(), true).unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 7).unwrap(), b"decided");

    // And the restarted instance (which replayed prepare+commit) also
    // treats a late resolve as already done.
    cluster.crash_storage(0);
    cluster.restart_storage(0);
    client.txn_resolve(txn, participants, true).unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 7).unwrap(), b"decided");
}

#[test]
fn concurrent_acked_writes_all_survive_a_crash() {
    // Many clients writing in parallel through the worker pool: every
    // write that was *acknowledged* before the crash must be readable
    // after restart (WAL appends are ordered by the conflict tracker).
    let root = WalRoot::new("concurrent");
    let mut cluster = boot_wal(1, &root, SyncPolicy::Always);
    let mut admin = cluster.client(0, 0);
    login(&cluster, &mut admin);
    let cid = admin.create_container().unwrap();
    let caps = admin.get_caps(cid, OpMask::ALL).unwrap();

    const WRITERS: usize = 4;
    const WRITES: usize = 16;
    let objs: Vec<ObjId> =
        (0..WRITERS).map(|_| admin.create_obj(0, &caps, None, None).unwrap()).collect();

    std::thread::scope(|s| {
        for (w, obj) in objs.iter().enumerate() {
            let client = cluster.client(1 + w as u32, 0);
            let caps = caps.clone();
            s.spawn(move || {
                for i in 0..WRITES {
                    let payload = [w as u8 * 16 + i as u8; 32];
                    client.write(0, &caps, None, *obj, (i * 32) as u64, &payload).unwrap();
                }
            });
        }
    });

    cluster.crash_storage(0);
    cluster.restart_storage(0);

    for (w, obj) in objs.iter().enumerate() {
        let data = admin.read(0, &caps, *obj, 0, WRITERS * WRITES * 32).unwrap();
        assert_eq!(data.len(), WRITES * 32, "object {w} truncated after replay");
        for i in 0..WRITES {
            assert!(
                data[i * 32..(i + 1) * 32].iter().all(|&b| b == w as u8 * 16 + i as u8),
                "object {w} chunk {i} corrupted after replay"
            );
        }
    }
}
