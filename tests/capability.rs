//! Self-certifying capabilities, end to end (DESIGN §16).
//!
//! These tests boot full clusters in `Signed`/`Require` mode and verify
//! the mode's load-bearing claims: signed writes reach storage without a
//! single authorization-server message on the data path; tampered and
//! stale-epoch tokens are refused locally; `Require` closes the unsigned
//! downgrade path; and replication ships authenticate cryptographically.
//! The transport-sensitive invariants run over both the in-process
//! substrate and real sockets.

use lwfs::cap::CapMode;
use lwfs::core::TransportKind;
use lwfs::prelude::*;

fn boot(cap_mode: CapMode, transport: TransportKind, replication: usize) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication,
        cap_mode,
        transport,
        ..Default::default()
    })
}

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

/// The tentpole claim: in signed mode a write storm completes with ZERO
/// messages from the authorization server on the data path — every check
/// is a local ed25519 verify at storage.
fn signed_data_path_never_calls_authz(transport: TransportKind) {
    let cluster = boot(CapMode::Signed, transport, 1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    assert!(caps.has_tokens(), "signed issuer pairs every capability with a token");
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    let stats = cluster.network().stats();
    stats.reset();
    for i in 0..50u64 {
        client.write(0, &caps, None, obj, i * 8, b"no rpc!!").unwrap();
    }
    assert_eq!(client.read(0, &caps, obj, 0, 8).unwrap(), b"no rpc!!");
    assert_eq!(
        stats.sent_by(cluster.addrs().authz),
        0,
        "authorization server spoke during a signed write storm"
    );

    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("cap.cache.hits").unwrap_or(0) > 0, "repeat tokens hit the verdict cache");
    assert!(snap.histogram("cap.verify_ns").is_some(), "verify cost is observable");
}

#[test]
fn signed_data_path_never_calls_authz_in_process() {
    signed_data_path_never_calls_authz(TransportKind::InProcess);
}

#[test]
fn signed_data_path_never_calls_authz_over_sockets() {
    signed_data_path_never_calls_authz(TransportKind::Tcp);
}

#[test]
fn tampered_token_is_refused_locally() {
    let cluster = boot(CapMode::Require, TransportKind::InProcess, 1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    // Flip one bit in every token (ops field region) and re-pair: the
    // signature no longer covers the claims, so storage must refuse.
    let bent: Vec<bytes::Bytes> = caps
        .iter()
        .map(|c| {
            let mut t = caps.token_for_op(c.ops()).to_vec();
            t[40] ^= 0x01;
            bytes::Bytes::from(t)
        })
        .collect();
    let forged = CapSet::with_tokens(caps.iter().copied().collect(), bent);
    assert_eq!(
        client.write(0, &forged, None, obj, 0, b"forged").unwrap_err(),
        Error::BadCapability,
        "CRC/signature framing refuses the tampered blob"
    );
    // The genuine set still works — refusal was the token, not the state.
    client.write(0, &caps, None, obj, 0, b"honest").unwrap();
}

#[test]
fn require_mode_closes_the_unsigned_downgrade() {
    let cluster = boot(CapMode::Require, TransportKind::InProcess, 1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    // A "legacy client" presents valid capabilities but no tokens. Under
    // `Signed` that falls back to verify-through and succeeds…
    let unsigned = CapSet::new(caps.iter().copied().collect());
    assert_eq!(
        client.write(0, &unsigned, None, obj, 0, b"naked").unwrap_err(),
        Error::AccessDenied,
        "…but Require refuses the downgrade outright"
    );
    client.write(0, &caps, None, obj, 0, b"signed").unwrap();
}

#[test]
fn signed_mode_still_accepts_legacy_clients() {
    let cluster = boot(CapMode::Signed, TransportKind::InProcess, 1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    // Tokenless writes verify through the authz service, as before the
    // migration: `Signed` is deployable without flag-daying every client.
    let unsigned = CapSet::new(caps.iter().copied().collect());
    client.write(0, &unsigned, None, obj, 0, b"legacy ok").unwrap();
    assert_eq!(client.read(0, &unsigned, obj, 0, 9).unwrap(), b"legacy ok");
}

/// Revocation stays near-immediate (the paper's §5 claim) in signed mode:
/// a policy change that revokes bits bumps the container's epoch, the
/// bump is pushed to storage synchronously, and tokens minted before it
/// are refused on their next use — no waiting for expiry.
fn revocation_rejects_stale_tokens(transport: TransportKind) {
    let cluster = boot(CapMode::Signed, transport, 1);
    let mut owner = cluster.client(0, 0);
    login(&cluster, &mut owner);
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let obj = owner.create_obj(0, &caps, None, None).unwrap();
    owner.write(0, &caps, None, obj, 0, b"pre-revocation").unwrap();

    // Revoking WRITE for this principal re-epochs the container…
    owner.mod_policy(&caps, PrincipalId(1), OpMask::NONE, OpMask::WRITE).unwrap();

    // …so the old token — cryptographically valid, lifetime unexpired —
    // is now refused locally for carrying a stale epoch.
    assert_eq!(
        owner.write(0, &caps, None, obj, 0, b"post-revocation").unwrap_err(),
        Error::CapabilityRevoked
    );
    let snap = cluster.network().obs().snapshot();
    assert!(
        snap.counter("cap.cache.stale_epoch").unwrap_or(0) > 0,
        "the refusal was the epoch check, and it is observable"
    );
}

#[test]
fn revocation_rejects_stale_tokens_in_process() {
    revocation_rejects_stale_tokens(TransportKind::InProcess);
}

#[test]
fn revocation_rejects_stale_tokens_over_sockets() {
    revocation_rejects_stale_tokens(TransportKind::Tcp);
}

/// Replication under signed mode: every ship carries the primary's
/// group-scoped holder-bound token, the backup verifies it locally, and
/// the write path works end to end — ship-before-ack preserved.
fn signed_ships_replicate(transport: TransportKind) {
    let cluster = boot(CapMode::Signed, transport, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"signed ship").unwrap();

    let backup = cluster.storage_server(1);
    assert!(backup.replica().unwrap().is_backup());
    assert_eq!(backup.store().bytes_stored(), 11, "acked bytes are on the backup");
    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.counter("storage.ship_failures").unwrap_or(0), 0);
}

#[test]
fn signed_ships_replicate_in_process() {
    signed_ships_replicate(TransportKind::InProcess);
}

#[test]
fn signed_ships_replicate_over_sockets() {
    signed_ships_replicate(TransportKind::Tcp);
}

#[test]
fn rogue_ship_without_token_is_refused_under_require() {
    use lwfs::portals::RpcClient;
    use lwfs::proto::{OpNum, ProcessId, RequestBody};

    let cluster = boot(CapMode::Require, TransportKind::InProcess, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"real traffic").unwrap();

    // A rogue endpoint reads the topology and re-plays a plausible ship
    // at the backup — right group, right claimed epoch, no signed token.
    // Before this PR the nid check alone gated it; now the missing token
    // is refused before anything is logged or applied.
    let ep = cluster.network().register(ProcessId::new(66, 0));
    let rogue = RpcClient::new(&ep);
    let backup = cluster.addrs().storage[1];
    let err = rogue
        .call(
            backup,
            RequestBody::ReplShip {
                group: 0,
                epoch: 1,
                seq: 999,
                origin: ProcessId::new(66, 0),
                origin_opnum: OpNum(1),
                records: vec![bytes::Bytes::from_static(b"junk")],
                reply: bytes::Bytes::new(),
            },
        )
        .unwrap_err();
    assert_eq!(err, Error::AccessDenied, "rogue ship applied!");
    assert_eq!(
        cluster.storage_server(1).store().bytes_stored(),
        12,
        "backup holds exactly the honest bytes"
    );
}
