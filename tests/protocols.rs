//! Protocol-level integration tests: the Figure 4 message flows and the
//! §2.3 scalability rules, asserted by *counting messages* on the
//! transport rather than trusting the implementation's structure.

use std::sync::Arc;

use lwfs::prelude::*;
use lwfs::proto::{Decode as _, Encode as _};

fn boot(servers: usize) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig { storage_servers: servers, ..Default::default() })
}

#[test]
fn figure4a_one_getcaps_rpc_plus_log_tree_scatter() {
    // Rule 1 (§2.3): acquiring capabilities for n ranks must not be an
    // O(n) operation at any *system* component. One rank does one GetCaps
    // RPC; distribution is the application's log-tree scatter.
    let n = 16usize;
    let cluster = Arc::new(boot(2));
    let mut rank0 = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    rank0.get_cred(ticket).unwrap();
    let cid = rank0.create_container().unwrap();

    let mut clients = vec![rank0];
    for r in 1..n {
        clients.push(cluster.client(r as u32, 0));
    }
    let group = Group::new((0..n as u32).map(|i| ProcessId::new(i, 0)).collect());

    cluster.network().stats().reset();
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(rank, client)| {
            let group = group.clone();
            std::thread::spawn(move || {
                if rank == 0 {
                    let caps = client.get_caps(cid, OpMask::CHECKPOINT).unwrap();
                    client.scatter_caps(&group, 0, 0, 7, Some(&caps)).unwrap()
                } else {
                    client.scatter_caps(&group, rank, 0, 7, None).unwrap()
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = cluster.network().stats();
    // The authorization server sent exactly one message: the GetCaps
    // reply. (It received exactly one request.)
    assert_eq!(stats.sent_by(cluster.addrs().authz), 1, "authz must answer once, not per rank");
    // No rank sent more than ~log2(n)+1 messages (its scatter forwards
    // plus, for rank 0, the one RPC).
    let log_n = (usize::BITS - (n - 1).leading_zeros()) as u64;
    for rank in 0..n as u32 {
        let sent = stats.sent_by(ProcessId::new(rank, 0));
        assert!(sent <= log_n + 1, "rank {rank} sent {sent} messages (> log2(n)+1)");
    }
    // Total scatter traffic is exactly n-1 deliveries + 1 RPC exchange.
    assert_eq!(stats.messages.load(std::sync::atomic::Ordering::Relaxed), (n - 1) as u64 + 2);
}

#[test]
fn figure4b_warm_cache_data_access_touches_only_the_storage_server() {
    let cluster = boot(1);
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    // Warm the write capability's cache entry.
    client.write(0, &caps, None, obj, 0, b"warmup").unwrap();

    let stats = cluster.network().stats();
    stats.reset();
    for i in 0..50u64 {
        client.write(0, &caps, None, obj, i * 8, b"steady!!").unwrap();
    }
    // Steady state: the authorization and authentication services see
    // ZERO traffic — enforcement is fully distributed (§2.4).
    assert_eq!(stats.sent_by(cluster.addrs().authz), 0, "authz contacted on warm path");
    assert_eq!(stats.sent_by(cluster.addrs().auth), 0, "auth contacted on warm path");
    // Each write is exactly: 1 request + 1 one-sided pull + 1 reply.
    let sent_by_server = stats.sent_by(cluster.addrs().storage[0]);
    assert_eq!(sent_by_server, 100, "server: 50 pulls + 50 replies, got {sent_by_server}");
}

#[test]
fn connectionless_requests_carry_full_context() {
    // Rule 2 (§2.3): no connection state. A request decoded from bytes
    // carries everything needed to authorize it: capability, object,
    // reply address. Spot-check by decoding a re-encoded request.
    use lwfs::proto::{
        Capability, CapabilityBody, ContainerId, Lifetime, MdHandle, ObjId, OpNum, Request,
        RequestBody, Signature,
    };
    let cap = Capability {
        body: CapabilityBody {
            container: ContainerId(1),
            ops: OpMask::WRITE,
            principal: PrincipalId(1),
            issuer_epoch: 1,
            lifetime: Lifetime::UNBOUNDED,
            serial: 5,
        },
        sig: Signature([1; 16]),
    };
    let req = Request::new(
        OpNum(9),
        ProcessId::new(3, 1),
        RequestBody::Write {
            txn: None,
            cap,
            obj: ObjId(4),
            offset: 128,
            len: 512,
            md: MdHandle { match_bits: 0xAB },
        },
    );
    let decoded = Request::from_bytes(req.to_bytes()).unwrap();
    assert_eq!(decoded, req);
    match decoded.body {
        RequestBody::Write { cap, .. } => {
            assert_eq!(cap.container(), ContainerId(1));
            assert!(cap.grants(OpMask::WRITE));
        }
        _ => unreachable!(),
    }
    assert_eq!(decoded.reply_to, ProcessId::new(3, 1));
}

#[test]
fn rule3_revocation_is_the_only_om_broadcast_and_it_is_bounded_by_m() {
    // Rule 3 (§2.3): O(m) inter-server operations must be rare. Verify
    // the revocation walk contacts exactly the m' ≤ m servers that cached
    // the capability — not every server, and never any client.
    let m = 4usize;
    let cluster = boot(m);
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::CREATE | OpMask::WRITE | OpMask::ADMIN).unwrap();

    // Cache the write capability at only two of the four servers.
    for server in 0..2 {
        let obj = client.create_obj(server, &caps, None, None).unwrap();
        client.write(server, &caps, None, obj, 0, b"cached here").unwrap();
    }

    let stats = cluster.network().stats();
    stats.reset();
    client.mod_policy(&caps, PrincipalId(1), OpMask::NONE, OpMask::WRITE).unwrap();

    // The authz server sent: the ModPolicy reply + one InvalidateCaps per
    // *caching* site (2), not per server (4), not per client.
    let authz_sent = stats.sent_by(cluster.addrs().authz);
    assert!(
        authz_sent <= 1 + 2,
        "authz sent {authz_sent} messages; expected reply + ≤2 invalidations"
    );
    // Note: the create capability also lives at those two servers but was
    // not revoked, so exactly the write-cap entries are invalidated.
}
