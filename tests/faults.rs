//! Failure-injection integration tests: partitions, crashed services, and
//! message loss, exercised through the full stack.

use std::sync::Arc;
use std::time::Duration;

use lwfs::core::TransportKind;
use lwfs::portals::FaultPlan;
use lwfs::prelude::*;

fn boot(servers: usize) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig { storage_servers: servers, ..Default::default() })
}

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

#[test]
fn partitioned_storage_server_aborts_the_transaction_cleanly() {
    let cluster = boot(2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let txn = client.txn_begin().unwrap();
    let o0 = client.create_obj(0, &caps, Some(txn), None).unwrap();
    let o1 = client.create_obj(1, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), o0, 0, b"survives?").unwrap();
    client.write(1, &caps, Some(txn), o1, 0, b"survives?").unwrap();

    // Partition server 1 before commit: phase 1 cannot reach it, so the
    // coordinator must abort everywhere reachable.
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().storage[1].nid);
    cluster.network().set_faults(plan);

    let participants = vec![cluster.addrs().storage[0], cluster.addrs().storage[1]];
    let outcome = client.txn_commit(txn, participants).unwrap();
    assert!(!outcome.is_committed(), "commit must fail under partition");

    // Heal. Server 0 rolled back; server 1 still holds the journal (it
    // never saw the abort) but presumed-abort means a later abort is
    // harmless and the created object was rolled back nowhere visible...
    cluster.network().heal();
    assert_eq!(client.read(0, &caps, o0, 0, 9).unwrap_err(), Error::NoSuchObject(o0));
    // Explicitly abort at the recovered participant (recovery pass).
    client.txn_abort(txn, vec![cluster.addrs().storage[1]]).unwrap();
    assert_eq!(client.read(1, &caps, o1, 0, 9).unwrap_err(), Error::NoSuchObject(o1));
}

#[test]
fn participant_crash_during_prepare_aborts_and_recovers_clean() {
    // One participant dies between staging and phase 1: its vote never
    // arrives, the coordinator aborts, and the crashed server — restarted
    // from its write-ahead log — presumes abort for the staged work.
    let wal_root = std::env::temp_dir().join(format!("lwfs-faults-prep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 2,
        storage: lwfs::storage::StorageConfig {
            wal: Some(lwfs::wal::WalConfig::new(wal_root.clone())),
            ..Default::default()
        },
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let txn = client.txn_begin().unwrap();
    let o0 = client.create_obj(0, &caps, Some(txn), None).unwrap();
    let o1 = client.create_obj(1, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), o0, 0, b"half-done").unwrap();
    client.write(1, &caps, Some(txn), o1, 0, b"half-done").unwrap();

    // Crash server 1 before phase 1 can reach it.
    cluster.crash_storage(1);
    let participants = vec![cluster.addrs().storage[0], cluster.addrs().storage[1]];
    let no_votes = client.txn_prepare(txn, participants.clone()).unwrap();
    assert_eq!(no_votes, vec![cluster.addrs().storage[1]], "dead participant is a no vote");
    client.txn_resolve(txn, vec![cluster.addrs().storage[0]], false).unwrap();

    // The survivor rolled back; the restarted server replays its log and
    // presumes abort for the transaction that never prepared there.
    cluster.restart_storage(1);
    assert_eq!(client.read(0, &caps, o0, 0, 9).unwrap_err(), Error::NoSuchObject(o0));
    assert_eq!(client.read(1, &caps, o1, 0, 9).unwrap_err(), Error::NoSuchObject(o1));
    assert_eq!(cluster.storage_server(1).in_doubt_txns(), vec![]);
    let _ = std::fs::remove_dir_all(&wal_root);
}

#[test]
fn operations_fail_fast_while_partitioned_and_recover_after_heal() {
    let cluster = boot(1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().storage[0].nid);
    cluster.network().set_faults(plan);
    assert_eq!(client.write(0, &caps, None, obj, 0, b"blocked").unwrap_err(), Error::Unreachable);

    cluster.network().heal();
    client.write(0, &caps, None, obj, 0, b"healed!").unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 7).unwrap(), b"healed!");
}

#[test]
fn authz_partition_blocks_cold_caps_but_not_warm_ones() {
    // Distributed enforcement under a control-plane outage: capabilities
    // already cached at storage servers keep working; verifying *new*
    // capabilities requires the authorization service.
    let cluster = boot(1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let warm = client.get_caps(cid, OpMask::CREATE | OpMask::WRITE).unwrap();
    let cold = client.get_caps(cid, OpMask::READ).unwrap();
    let obj = client.create_obj(0, &warm, None, None).unwrap();
    client.write(0, &warm, None, obj, 0, b"cached").unwrap(); // warm the cache

    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().authz.nid);
    cluster.network().set_faults(plan);

    // Warm path: still authorized, still works.
    client.write(0, &warm, None, obj, 0, b"still!").unwrap();
    // Cold path: the storage server cannot verify-through.
    assert_eq!(
        client.read(0, &cold, obj, 0, 6).unwrap_err(),
        Error::Unreachable,
        "cold capability should fail while authz is down"
    );

    cluster.network().heal();
    assert_eq!(client.read(0, &cold, obj, 0, 6).unwrap(), b"still!");
}

#[test]
fn message_loss_surfaces_as_timeouts_not_corruption() {
    let cluster = boot(1);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"baseline-contents").unwrap();

    // 100% loss: every RPC times out; nothing hangs forever.
    cluster.network().set_faults(FaultPlan { drop_rate: 1.0, ..Default::default() });
    // (Reads use call_retrying only for ServerBusy; loss is a timeout.)
    let t0 = std::time::Instant::now();
    let err = client.getattr(0, &caps, obj).unwrap_err();
    assert_eq!(err, Error::Timeout);
    assert!(t0.elapsed() < Duration::from_secs(30));

    // Heal: state is exactly as before the outage.
    cluster.network().heal();
    assert_eq!(client.read(0, &caps, obj, 0, 17).unwrap(), b"baseline-contents");
}

#[test]
fn replicated_write_is_not_acked_until_the_backup_acks() {
    replicated_write_partition_holds_ack(TransportKind::InProcess);
}

#[test]
fn replicated_write_is_not_acked_until_the_backup_acks_over_tcp() {
    // Fault-injection parity: the same partition plan, installed through
    // the same harness call, must produce the same held-ack behavior when
    // the ship crosses a real socket instead of the in-process queue.
    replicated_write_partition_holds_ack(TransportKind::Tcp);
}

/// Ship-before-ack under a partition: with the backup unreachable the
/// primary keeps retrying the `ReplShip` and the client's write must
/// NOT complete; the moment the partition heals, a retry lands, the
/// backup applies, and the ack flows back. Runs under either transport —
/// the fault plan is shared across every node's network, so one
/// `set_faults` partitions the whole cluster either way.
fn replicated_write_partition_holds_ack(transport: TransportKind) {
    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication: 2,
        transport,
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().storage[1].nid);
    cluster.network().set_faults(plan);

    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&done);
        let caps = caps.clone();
        let client = cluster.client(1, 0);
        std::thread::spawn(move || {
            let r = client.write(0, &caps, None, obj, 0, b"held back");
            done.store(true, std::sync::atomic::Ordering::SeqCst);
            r
        })
    };

    // While the backup is cut off, the write stays unacknowledged.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        !done.load(std::sync::atomic::Ordering::SeqCst),
        "write acked while the backup was unreachable"
    );

    cluster.network().heal();
    writer.join().unwrap().unwrap();
    // The ack implies the backup already holds the bytes — and getting
    // there took at least one ship retry.
    assert_eq!(cluster.storage_server(1).store().bytes_stored(), 9);
    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("storage.ship_retries").unwrap_or(0) > 0, "no ship retry recorded");
    assert_eq!(snap.counter("storage.ship_failures").unwrap_or(0), 0);
}

#[test]
fn restart_refusal_under_replication_is_transport_invariant() {
    // A replicated group heals by promotion; restarting a stale member
    // would need a re-sync protocol this build does not implement, so
    // `restart_storage` refuses — and the refusal must read identically
    // whether the cluster runs in-process or over sockets.
    let mut messages = Vec::new();
    for transport in [TransportKind::InProcess, TransportKind::Tcp] {
        let mut cluster = LwfsCluster::boot(ClusterConfig {
            storage_servers: 1,
            replication: 2,
            transport,
            ..Default::default()
        });
        cluster.crash_storage(1);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cluster.restart_storage(1);
        }))
        .expect_err("restart_storage must refuse under replication");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("only supported without replication"),
            "unexpected refusal under {transport:?}: {msg}"
        );
        messages.push(msg);
    }
    assert_eq!(messages[0], messages[1], "refusal differs between transports");
}

#[test]
fn dead_client_does_not_wedge_servers() {
    // A client that posts a descriptor, sends a write request, and then
    // "dies" (never drains events) must not affect other clients.
    let cluster = Arc::new(boot(1));
    let mut healthy = cluster.client(1, 0);
    login(&cluster, &mut healthy);
    let cid = healthy.create_container().unwrap();
    let caps = healthy.get_caps(cid, OpMask::ALL).unwrap();

    // The dying client: issue a write whose MD vanishes mid-flight by
    // marking the process dead. The server's one-sided pull fails and it
    // answers with an error nobody reads — and must move on.
    {
        let doomed = cluster.client(2, 0);
        let caps2 = caps.clone();
        let cluster2 = Arc::clone(&cluster);
        let t = std::thread::spawn(move || {
            let obj = doomed.create_obj(0, &caps2, None, None).unwrap();
            // Kill ourselves right before the write's pull can complete.
            let mut plan = FaultPlan::default();
            plan.dead.insert(doomed.id());
            cluster2.network().set_faults(plan);
            // This call fails by timeout or unreachable — either is fine.
            let _ = doomed.write(0, &caps2, None, obj, 0, &[0u8; 1024]);
        });
        t.join().unwrap();
    }

    // Other clients are unaffected (the dead flag only blocks the doomed
    // process).
    let obj = healthy.create_obj(0, &caps, None, None).unwrap();
    healthy.write(0, &caps, None, obj, 0, b"alive").unwrap();
    assert_eq!(healthy.read(0, &caps, obj, 0, 5).unwrap(), b"alive");
}
