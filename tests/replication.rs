//! Replicated storage groups, end to end: WAL log-shipping to backups,
//! primary failover without restart, and client-side transparent retry.
//!
//! These tests run the full stack — auth, authz, group directory, and
//! R-member storage groups — and exercise the paper-level guarantee the
//! replication layer adds: **every acknowledged mutation survives the
//! primary** and is observed exactly once by readers.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lwfs::portals::FaultPlan;
use lwfs::prelude::*;

/// Boot `groups` replication groups of `r` members each.
fn boot(groups: usize, r: usize) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig {
        storage_servers: groups,
        replication: r,
        ..Default::default()
    })
}

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

#[test]
fn acknowledged_writes_are_on_the_backup_before_the_ack() {
    let cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"ship before ack").unwrap();

    // The moment the write is acknowledged, the backup's store already
    // holds the object and its bytes — no anti-entropy, no wait.
    let backup = cluster.storage_server(1);
    assert!(backup.replica().unwrap().is_backup());
    assert_eq!(backup.store().object_count(), 1);
    assert_eq!(backup.store().bytes_stored(), 15);

    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("storage.repl_ships").unwrap_or(0) >= 2, "create + write both ship");
    assert_eq!(snap.counter("storage.ship_failures").unwrap_or(0), 0);
}

#[test]
fn reads_are_served_by_a_backup_while_the_primary_is_partitioned() {
    let cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"any in-sync member").unwrap();

    // Cut the primary off. No failover happens (the control plane saw no
    // crash); the client's read sweep simply falls through to the backup.
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().storage[0].nid);
    cluster.network().set_faults(plan);
    assert_eq!(client.read(0, &caps, obj, 0, 18).unwrap(), b"any in-sync member");
    cluster.network().heal();
}

#[test]
fn primary_crash_promotes_the_backup_and_clients_fail_over() {
    let mut cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"survives the primary").unwrap();

    cluster.crash_storage(0);

    // The map advanced and now names the old backup as primary.
    let map = cluster.group_map().unwrap();
    assert_eq!(map.epoch, 2);
    assert_eq!(map.groups[0].primary(), Some(cluster.addrs().storage[1]));

    // Reads and writes keep working through the same client handle.
    assert_eq!(client.read(0, &caps, obj, 0, 20).unwrap(), b"survives the primary");
    client.write(0, &caps, None, obj, 0, b"writable after loss!").unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 20).unwrap(), b"writable after loss!");

    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.gauge("storage.failovers"), Some(1));
}

#[test]
fn losing_a_backup_shrinks_the_group_but_keeps_it_writable() {
    let mut cluster = boot(1, 3);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    cluster.crash_storage(2);
    // No failover — the primary just stops shipping to the dead member.
    client.write(0, &caps, None, obj, 0, b"two of three").unwrap();
    let map = cluster.group_map().unwrap();
    assert_eq!(map.epoch, 2);
    assert_eq!(map.groups[0].members.len(), 2);
    assert_eq!(cluster.network().obs().snapshot().gauge("storage.failovers"), None);
    // The surviving backup still got the write.
    assert_eq!(cluster.storage_server(1).store().bytes_stored(), 12);
}

#[test]
fn write_storm_through_a_primary_crash_is_exactly_once() {
    // The acceptance scenario: clients hammer a 2-member group, the
    // primary dies mid-storm and is never restarted, and afterwards every
    // acknowledged object reads back with exactly its acknowledged bytes.
    let mut cluster = boot(1, 2);
    let mut admin = cluster.client(99, 0);
    login(&cluster, &mut admin);
    let cid = admin.create_container().unwrap();
    let caps = admin.get_caps(cid, OpMask::ALL).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..4u32 {
        let mut worker = cluster.client(t, 0);
        login(&cluster, &mut worker);
        let caps = caps.clone();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut acked: Vec<(ObjId, Vec<u8>)> = Vec::new();
            let mut seq = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let payload = format!("worker {t} op {seq}").into_bytes();
                // Only fully acknowledged create+write pairs count: an op
                // the storm lost to the crash window made no promise.
                if let Ok(obj) = worker.create_obj(0, &caps, None, None) {
                    if worker.write(0, &caps, None, obj, 0, &payload).is_ok() {
                        acked.push((obj, payload));
                    }
                }
                seq += 1;
            }
            acked
        }));
    }

    // Let the storm ramp, kill the primary under it, let the survivors
    // keep writing against the promoted backup, then stop.
    std::thread::sleep(Duration::from_millis(100));
    cluster.crash_storage(0);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<(ObjId, Vec<u8>)> =
        threads.into_iter().flat_map(|t| t.join().unwrap()).collect();
    assert!(!acked.is_empty(), "storm acknowledged nothing");

    // Exactly once: every acknowledged object exists with its exact
    // bytes, no object was created twice (all ids distinct), and the
    // survivor lists each acknowledged id.
    let ids: HashSet<ObjId> = acked.iter().map(|(o, _)| *o).collect();
    assert_eq!(ids.len(), acked.len(), "an acknowledged create was applied twice");
    for (obj, payload) in &acked {
        assert_eq!(&admin.read(0, &caps, *obj, 0, payload.len()).unwrap(), payload);
    }
    let listed: HashSet<ObjId> = admin.list_objs(0, &caps).unwrap().into_iter().collect();
    for (obj, _) in &acked {
        assert!(listed.contains(obj), "acknowledged {obj:?} missing from the survivor");
    }

    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.gauge("storage.failovers"), Some(1));
    assert_eq!(cluster.group_map().unwrap().epoch, 2);
}

#[test]
fn replication_metrics_are_exported() {
    let cluster = boot(2, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    for group in 0..2 {
        let obj = client.create_obj(group, &caps, None, None).unwrap();
        client.write(group, &caps, None, obj, 0, b"metered").unwrap();
    }

    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("storage.repl_ships").unwrap_or(0) >= 4);
    assert_eq!(snap.gauge("storage.repl_lag"), Some(0), "all ships acknowledged");
    assert_eq!(snap.gauge("storage.repl_epoch"), Some(1));
    assert_eq!(snap.counter("storage.dedup_hits").unwrap_or(0), 0);
}

#[test]
fn a_backup_dropped_at_the_ship_deadline_leaves_the_map_and_is_never_promoted() {
    // The silent-staleness scenario: a backup misses its ship deadline,
    // the primary drops it and *reports the drop to the directory*, so
    // the republished map stops routing reads to the out-of-sync member
    // — and a later election can never promote it over a member that
    // holds the acknowledged write it missed.
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication: 3,
        ship_deadline: Some(Duration::from_millis(100)),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"before the drop!").unwrap();

    // Cut off the junior backup; the next write misses its ship deadline
    // there and evicts it from the group.
    let stale = cluster.addrs().storage[2];
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(stale.nid);
    cluster.network().set_faults(plan);
    client.write(0, &caps, None, obj, 0, b"after it was cut").unwrap();
    cluster.network().heal();

    // The map was republished without the member ...
    let map = cluster.group_map().unwrap();
    assert_eq!(map.epoch, 2);
    assert_eq!(map.groups[0].members, vec![cluster.addrs().storage[0], cluster.addrs().storage[1]]);
    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.counter("storage.ship_failures"), Some(1));
    assert_eq!(snap.counter("storage.drop_reports"), Some(1));

    // ... while the member itself — healed, reachable, happy to answer —
    // still holds only the pre-drop bytes. It is genuinely stale.
    assert_eq!(
        cluster.storage_server(2).store().read(cid, obj, 0, u64::MAX).unwrap(),
        b"before the drop!"
    );

    // Reads keep returning the acknowledged bytes, never the stale ones.
    for _ in 0..4 {
        assert_eq!(client.read(0, &caps, obj, 0, 16).unwrap(), b"after it was cut");
    }

    // And when the primary dies, the election promotes the in-sync
    // survivor: promoting the dropped member would silently roll back an
    // acknowledged write.
    cluster.crash_storage(0);
    let map = cluster.group_map().unwrap();
    assert_eq!(map.groups[0].primary(), Some(cluster.addrs().storage[1]));
    assert!(!map.groups[0].members.contains(&stale), "the stale member stays out of the map");
    assert_eq!(client.read(0, &caps, obj, 0, 16).unwrap(), b"after it was cut");
    client.write(0, &caps, None, obj, 0, b"still writable..").unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 16).unwrap(), b"still writable..");
}

#[test]
fn a_ship_from_anyone_but_the_primary_is_refused_before_it_applies() {
    use lwfs::portals::RpcClient;
    use lwfs::proto::{OpNum, RequestBody};

    let cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"legitimate").unwrap();

    // A rogue process can learn the group and epoch from the public map,
    // but its crafted ship must be refused before anything is logged,
    // applied, or cached — ships bypass capability checks, so sender
    // identity is the only gate.
    let map = cluster.group_map().unwrap();
    let backup = cluster.addrs().storage[1];
    let rogue_id = ProcessId::new(66, 0);
    let rogue_ep = cluster.network().register(rogue_id);
    let rogue = RpcClient::new(&rogue_ep);
    let err = rogue
        .call(
            backup,
            RequestBody::ReplShip {
                group: 0,
                epoch: map.epoch,
                seq: 1000,
                origin: rogue_id,
                origin_opnum: OpNum(1),
                records: vec![],
                reply: Default::default(),
            },
        )
        .unwrap_err();
    assert_eq!(err, Error::AccessDenied);

    // Nothing was applied and the reply cache was not poisoned.
    let backup_srv = cluster.storage_server(1);
    assert_eq!(backup_srv.store().object_count(), 1);
    assert!(backup_srv.replica().unwrap().replies.get(rogue_id, OpNum(1)).is_none());

    // Ships from the actual primary keep flowing.
    client.write(0, &caps, None, obj, 0, b"still ships").unwrap();
    assert_eq!(backup_srv.store().read(cid, obj, 0, u64::MAX).unwrap(), b"still ships");
}

#[test]
fn the_primary_fences_mutations_stamped_with_a_retired_epoch() {
    use lwfs::portals::{reply_match, Event, REQUEST_MATCH};
    use lwfs::proto::{Decode as _, Encode as _, OpNum, Reply, Request, RequestBody};

    let mut cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let cap = caps.for_op(OpMask::CREATE).unwrap();

    // Retire epoch 1: losing the backup republishes the map at epoch 2
    // and walks the primary up to it.
    cluster.crash_storage(1);
    assert_eq!(cluster.group_map().unwrap().epoch, 2);

    // A mutation still stamped with epoch 1 routed on the retired map is
    // fenced — the sender must refresh; epoch 0 ("no epoch info", the
    // transaction-coordinator path) still passes.
    let ep = cluster.network().register(ProcessId::new(77, 0));
    let primary = cluster.addrs().storage[0];
    let send = |opnum: u64, epoch: u64| {
        let body = RequestBody::CreateObj { txn: None, cap, obj: None };
        let req = Request::new(OpNum(opnum), ep.id(), body).with_epoch(epoch);
        ep.send(primary, REQUEST_MATCH, req.to_bytes()).unwrap();
        let want = reply_match(opnum);
        let ev = ep
            .recv_match(
                Duration::from_secs(2),
                |e| matches!(e, Event::Message { match_bits, .. } if *match_bits == want),
            )
            .unwrap();
        Reply::from_bytes(ev.message_data().unwrap().clone()).unwrap().into_result()
    };
    assert_eq!(send(1, 1).unwrap_err(), Error::NotPrimary);
    assert!(send(2, 2).is_ok(), "the current epoch passes");
    assert!(send(3, 0).is_ok(), "epoch 0 means no epoch info and always passes");
}

#[test]
fn replication_one_is_exactly_the_legacy_cluster() {
    // R=1 (the default) must not grow a directory endpoint or change any
    // data-path behavior: clients address servers directly.
    let cluster = boot(3, 1);
    assert!(cluster.group_map().is_none());
    assert!(cluster.addrs().directory.is_none());
    assert_eq!(cluster.addrs().storage.len(), 3);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(2, &caps, None, None).unwrap();
    client.write(2, &caps, None, obj, 0, b"plain").unwrap();
    assert_eq!(client.read(2, &caps, obj, 0, 5).unwrap(), b"plain");
    assert_eq!(cluster.network().obs().snapshot().counter("storage.repl_ships").unwrap_or(0), 0);
}
