//! Replicated storage groups, end to end: WAL log-shipping to backups,
//! primary failover without restart, and client-side transparent retry.
//!
//! These tests run the full stack — auth, authz, group directory, and
//! R-member storage groups — and exercise the paper-level guarantee the
//! replication layer adds: **every acknowledged mutation survives the
//! primary** and is observed exactly once by readers.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lwfs::portals::FaultPlan;
use lwfs::prelude::*;

/// Boot `groups` replication groups of `r` members each.
fn boot(groups: usize, r: usize) -> LwfsCluster {
    LwfsCluster::boot(ClusterConfig {
        storage_servers: groups,
        replication: r,
        ..Default::default()
    })
}

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

#[test]
fn acknowledged_writes_are_on_the_backup_before_the_ack() {
    let cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();

    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"ship before ack").unwrap();

    // The moment the write is acknowledged, the backup's store already
    // holds the object and its bytes — no anti-entropy, no wait.
    let backup = cluster.storage_server(1);
    assert!(backup.replica().unwrap().is_backup());
    assert_eq!(backup.store().object_count(), 1);
    assert_eq!(backup.store().bytes_stored(), 15);

    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("storage.repl_ships").unwrap_or(0) >= 2, "create + write both ship");
    assert_eq!(snap.counter("storage.ship_failures").unwrap_or(0), 0);
}

#[test]
fn reads_are_served_by_a_backup_while_the_primary_is_partitioned() {
    let cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"any in-sync member").unwrap();

    // Cut the primary off. No failover happens (the control plane saw no
    // crash); the client's read sweep simply falls through to the backup.
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(cluster.addrs().storage[0].nid);
    cluster.network().set_faults(plan);
    assert_eq!(client.read(0, &caps, obj, 0, 18).unwrap(), b"any in-sync member");
    cluster.network().heal();
}

#[test]
fn primary_crash_promotes_the_backup_and_clients_fail_over() {
    let mut cluster = boot(1, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"survives the primary").unwrap();

    cluster.crash_storage(0);

    // The map advanced and now names the old backup as primary.
    let map = cluster.group_map().unwrap();
    assert_eq!(map.epoch, 2);
    assert_eq!(map.groups[0].primary(), Some(cluster.addrs().storage[1]));

    // Reads and writes keep working through the same client handle.
    assert_eq!(client.read(0, &caps, obj, 0, 20).unwrap(), b"survives the primary");
    client.write(0, &caps, None, obj, 0, b"writable after loss!").unwrap();
    assert_eq!(client.read(0, &caps, obj, 0, 20).unwrap(), b"writable after loss!");

    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.gauge("storage.failovers"), Some(1));
}

#[test]
fn losing_a_backup_shrinks_the_group_but_keeps_it_writable() {
    let mut cluster = boot(1, 3);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();

    cluster.crash_storage(2);
    // No failover — the primary just stops shipping to the dead member.
    client.write(0, &caps, None, obj, 0, b"two of three").unwrap();
    let map = cluster.group_map().unwrap();
    assert_eq!(map.epoch, 2);
    assert_eq!(map.groups[0].members.len(), 2);
    assert_eq!(cluster.network().obs().snapshot().gauge("storage.failovers"), None);
    // The surviving backup still got the write.
    assert_eq!(cluster.storage_server(1).store().bytes_stored(), 12);
}

#[test]
fn write_storm_through_a_primary_crash_is_exactly_once() {
    // The acceptance scenario: clients hammer a 2-member group, the
    // primary dies mid-storm and is never restarted, and afterwards every
    // acknowledged object reads back with exactly its acknowledged bytes.
    let mut cluster = boot(1, 2);
    let mut admin = cluster.client(99, 0);
    login(&cluster, &mut admin);
    let cid = admin.create_container().unwrap();
    let caps = admin.get_caps(cid, OpMask::ALL).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for t in 0..4u32 {
        let mut worker = cluster.client(t, 0);
        login(&cluster, &mut worker);
        let caps = caps.clone();
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut acked: Vec<(ObjId, Vec<u8>)> = Vec::new();
            let mut seq = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let payload = format!("worker {t} op {seq}").into_bytes();
                // Only fully acknowledged create+write pairs count: an op
                // the storm lost to the crash window made no promise.
                if let Ok(obj) = worker.create_obj(0, &caps, None, None) {
                    if worker.write(0, &caps, None, obj, 0, &payload).is_ok() {
                        acked.push((obj, payload));
                    }
                }
                seq += 1;
            }
            acked
        }));
    }

    // Let the storm ramp, kill the primary under it, let the survivors
    // keep writing against the promoted backup, then stop.
    std::thread::sleep(Duration::from_millis(100));
    cluster.crash_storage(0);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<(ObjId, Vec<u8>)> =
        threads.into_iter().flat_map(|t| t.join().unwrap()).collect();
    assert!(!acked.is_empty(), "storm acknowledged nothing");

    // Exactly once: every acknowledged object exists with its exact
    // bytes, no object was created twice (all ids distinct), and the
    // survivor lists each acknowledged id.
    let ids: HashSet<ObjId> = acked.iter().map(|(o, _)| *o).collect();
    assert_eq!(ids.len(), acked.len(), "an acknowledged create was applied twice");
    for (obj, payload) in &acked {
        assert_eq!(&admin.read(0, &caps, *obj, 0, payload.len()).unwrap(), payload);
    }
    let listed: HashSet<ObjId> = admin.list_objs(0, &caps).unwrap().into_iter().collect();
    for (obj, _) in &acked {
        assert!(listed.contains(obj), "acknowledged {obj:?} missing from the survivor");
    }

    let snap = cluster.network().obs().snapshot();
    assert_eq!(snap.gauge("storage.failovers"), Some(1));
    assert_eq!(cluster.group_map().unwrap().epoch, 2);
}

#[test]
fn replication_metrics_are_exported() {
    let cluster = boot(2, 2);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    for group in 0..2 {
        let obj = client.create_obj(group, &caps, None, None).unwrap();
        client.write(group, &caps, None, obj, 0, b"metered").unwrap();
    }

    let snap = cluster.network().obs().snapshot();
    assert!(snap.counter("storage.repl_ships").unwrap_or(0) >= 4);
    assert_eq!(snap.gauge("storage.repl_lag"), Some(0), "all ships acknowledged");
    assert_eq!(snap.gauge("storage.repl_epoch"), Some(1));
    assert_eq!(snap.counter("storage.dedup_hits").unwrap_or(0), 0);
}

#[test]
fn replication_one_is_exactly_the_legacy_cluster() {
    // R=1 (the default) must not grow a directory endpoint or change any
    // data-path behavior: clients address servers directly.
    let cluster = boot(3, 1);
    assert!(cluster.group_map().is_none());
    assert!(cluster.addrs().directory.is_none());
    assert_eq!(cluster.addrs().storage.len(), 3);
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(2, &caps, None, None).unwrap();
    client.write(2, &caps, None, obj, 0, b"plain").unwrap();
    assert_eq!(client.read(2, &caps, obj, 0, 5).unwrap(), b"plain");
    assert_eq!(cluster.network().obs().snapshot().counter("storage.repl_ships").unwrap_or(0), 0);
}
