//! Cluster-wide causal tracing, end to end: wire-propagated trace
//! contexts, per-node span invariants, and the control-plane event
//! journal.
//!
//! The properties here are the contract the tracing subsystem sells:
//!
//! 1. one acknowledged mutation = one trace, with exactly one `total`
//!    span per participating node,
//! 2. each node's stage decomposition accounts for no more than its own
//!    end-to-end span,
//! 3. a backup's `ReplShip` spans carry the *originating* client's
//!    `trace_id` (propagated, never re-derived), and
//! 4. control-plane transitions land in the journal in causal order —
//!    eviction before republish, promotion when the primary dies.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use lwfs::obs::{Snapshot, Trace, TraceCollector, TOTAL_STAGE};
use lwfs::portals::FaultPlan;
use lwfs::prelude::*;
use proptest::{prop_assert, prop_assert_eq, proptest};

/// Ops recorded as annotations *inside* another op's stage intervals
/// (`wal.append`/`wal.fsync` under `wal_append`, `repl.ship` around the
/// backup round trip, `authz.verify_through` inside `authorize`). They
/// carry no `total` and overlap their parent's stages.
const ANNOTATION_OPS: &[&str] = &["wal", "repl", "authz"];

fn login(cluster: &LwfsCluster, client: &mut LwfsClient) {
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
}

/// Traces that contain a client-side mutation span — the acked-mutation
/// traces invariants 1–3 quantify over.
fn mutation_traces(snap: &Snapshot) -> Vec<Trace> {
    let mut collector = TraceCollector::new();
    collector.add_spans(snap.spans.iter().cloned());
    collector
        .traces()
        .into_iter()
        .filter(|t| t.spans.iter().any(|s| s.op == "client.mutate"))
        .collect()
}

/// A server finishes a request's trace moments *after* its reply is on
/// the wire, so the snapshot can catch the tail mutation still closing.
/// Poll until every mutation trace has a `total` on each node it
/// touched (bounded; the close is prompt).
fn settled_snapshot(cluster: &LwfsCluster) -> Snapshot {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = cluster.network().obs().snapshot();
        let settled = mutation_traces(&snap).iter().all(|t| {
            t.nodes()
                .into_iter()
                .all(|nid| t.spans.iter().any(|s| s.nid == nid && s.stage == TOTAL_STAGE))
        });
        if settled || Instant::now() > deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

proptest! {
    /// Random mutation workloads on a healthy replicated group: every
    /// acked mutation forms one trace spanning client, primary, and
    /// backup, with exactly one `total` per node, per-node stage sums
    /// within that `total`, and ship spans referencing the originating
    /// trace.
    #[test]
    fn mutation_traces_span_every_replica_exactly_once(
        ops in proptest::collection::vec((0usize..3, 1usize..96), 1..5),
    ) {
        let cluster = LwfsCluster::boot(ClusterConfig {
            storage_servers: 1,
            replication: 2,
            ..Default::default()
        });
        let mut client = cluster.client(0, 0);
        login(&cluster, &mut client);
        let cid = client.create_container().unwrap();
        let caps = client.get_caps(cid, OpMask::ALL).unwrap();

        let mut objs: Vec<ObjId> = Vec::new();
        let mut acked = 0usize;
        for &(kind, size_kib) in &ops {
            match kind {
                // A removal consumes an object when one exists, else
                // falls through to a create.
                0 if !objs.is_empty() => {
                    let obj = objs.remove(objs.len() / 2);
                    client.remove_obj(0, &caps, None, obj).unwrap();
                    acked += 1;
                }
                1 if !objs.is_empty() => {
                    let obj = objs[objs.len() / 2];
                    let payload = vec![0x5Au8; size_kib * 1024];
                    client.write(0, &caps, None, obj, 0, &payload).unwrap();
                    acked += 1;
                }
                _ => {
                    objs.push(client.create_obj(0, &caps, None, None).unwrap());
                    acked += 1;
                }
            }
        }

        let snap = settled_snapshot(&cluster);
        let traces = mutation_traces(&snap);
        prop_assert_eq!(traces.len(), acked, "one trace per acked mutation");

        for t in &traces {
            // Invariant 1: client (nid 0), primary (1100), backup (1101)
            // each contributed, and each closed exactly one total.
            prop_assert_eq!(
                t.nodes(),
                vec![0u32, 1100, 1101],
                "trace {:#x} must span client, primary, and backup", t.trace_id
            );
            for nid in t.nodes() {
                let totals =
                    t.spans.iter().filter(|s| s.nid == nid && s.stage == TOTAL_STAGE).count();
                prop_assert_eq!(
                    totals, 1,
                    "trace {:#x}: node {} closed {} totals", t.trace_id, nid, totals
                );
            }

            // Invariant 2: per (node, op), stages stay within the total.
            let mut per_node: BTreeMap<(u32, &str), (u64, u64)> = BTreeMap::new();
            for s in t.spans.iter().filter(|s| !ANNOTATION_OPS.contains(&s.op)) {
                let e = per_node.entry((s.nid, s.op)).or_default();
                if s.stage == TOTAL_STAGE {
                    e.1 += s.dur_ns;
                } else {
                    e.0 += s.dur_ns;
                }
            }
            for ((nid, op), (stages, total)) in per_node {
                prop_assert!(
                    stages <= total,
                    "trace {:#x}: {op} on node {nid} stages {stages}ns > total {total}ns",
                    t.trace_id
                );
            }

            // Invariant 3: the backup's ship application rides the
            // originating trace — its spans carry the client's trace_id
            // but their own (distinct) request id.
            let ships: Vec<_> =
                t.spans.iter().filter(|s| s.op == "storage.repl_ship").collect();
            prop_assert!(!ships.is_empty(), "trace {:#x}: mutation never shipped", t.trace_id);
            for s in &ships {
                prop_assert_eq!(s.trace_id, t.trace_id);
                prop_assert!(
                    s.req_id != t.trace_id,
                    "ship req {:#x} must be a child request, not the trace root", s.req_id
                );
            }
        }

        // Annotation spans never stand alone: each belongs to one of the
        // mutation traces above.
        for s in snap.spans.iter().filter(|s| ANNOTATION_OPS.contains(&s.op)) {
            prop_assert!(
                traces.iter().any(|t| t.trace_id == s.trace_id),
                "annotation {}.{} carries unknown trace {:#x}", s.op, s.stage, s.trace_id
            );
        }
    }
}

#[test]
fn event_journal_records_eviction_republish_and_promotion_in_order() {
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication: 3,
        ship_deadline: Some(Duration::from_millis(100)),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"healthy write").unwrap();

    // Partition the junior backup; the next write evicts it at the ship
    // deadline and the directory republishes the shrunken map.
    let stale = cluster.addrs().storage[2];
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(stale.nid);
    cluster.network().set_faults(plan);
    client.write(0, &caps, None, obj, 0, b"evicting write").unwrap();
    cluster.network().heal();

    // Kill the primary: the control plane promotes the surviving backup.
    cluster.crash_storage(0);
    assert_eq!(client.read(0, &caps, obj, 0, 14).unwrap(), b"evicting write");

    let snap = cluster.network().obs().snapshot();
    let evict = snap.events_of_kind("repl.evict_backup");
    let republish = snap.events_of_kind("directory.republish");
    let promote = snap.events_of_kind("failover.promote");

    // The eviction is journaled by the primary (its decision), the
    // republish and promotion by the directory (where they become
    // visible).
    assert_eq!(evict.len(), 1, "exactly one eviction: {evict:?}");
    assert_eq!(evict[0].nid, 1100);
    assert!(evict[0].detail.contains(&format!("{stale}")), "eviction names the backup");
    assert_eq!(republish.len(), 1, "exactly one republish: {republish:?}");
    assert_eq!(republish[0].nid, 1004);
    assert_eq!(promote.len(), 1, "exactly one promotion: {promote:?}");
    assert_eq!(promote[0].nid, 1004);
    assert!(promote[0].detail.contains("promoting"), "promotion names the winner");

    // Causal order: the primary decided the eviction before the
    // directory republished, and the promotion came after both.
    assert!(evict[0].seq < republish[0].seq, "eviction must precede its republish");
    assert!(republish[0].seq < promote[0].seq, "promotion happened last");

    // The promoted survivor journals its epoch bump when it takes over.
    let bumps = snap.events_of_kind("repl.epoch_bump");
    assert!(
        bumps.iter().any(|e| e.nid == 1101 && e.detail.contains("promoted to primary")),
        "promoted backup must journal its epoch bump: {bumps:?}"
    );
}

#[test]
fn wal_recovery_is_journaled_on_restart() {
    let dir = std::env::temp_dir().join(format!("lwfs-trace-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        storage: lwfs::storage::StorageConfig {
            wal: Some(WalConfig::new(&dir)),
            ..Default::default()
        },
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    login(&cluster, &mut client);
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"durable").unwrap();

    // A fresh boot replays nothing and journals nothing.
    assert!(cluster.network().obs().snapshot().events_of_kind("wal.recovery").is_empty());

    cluster.crash_storage(0);
    cluster.restart_storage(0);
    let snap = cluster.network().obs().snapshot();
    let recovery = snap.events_of_kind("wal.recovery");
    assert_eq!(recovery.len(), 1, "one restart, one recovery event: {recovery:?}");
    assert_eq!(recovery[0].nid, 1100);
    assert!(
        recovery[0].detail.contains("objects restored"),
        "recovery detail summarizes the replay: {:?}",
        recovery[0].detail
    );
    let _ = std::fs::remove_dir_all(&dir);
}
