//! Drive the discrete-event models from application code: sweep the
//! checkpoint experiment from the paper's dev-cluster scale out to Red
//! Storm scale, printing the Figure 9-style curves and where each
//! implementation hits its wall.
//!
//! ```text
//! cargo run --release --example simulate_scaling
//! ```

use lwfs::models::{Calibration, CkptImpl, CreateSim, DumpSim, Machine};

fn main() {
    let calib = Calibration::default();

    println!("== dev cluster (the paper's testbed), 512 MB/process ==");
    println!(
        "{:>8} {:>12} {:>26} {:>26} {:>26}",
        "clients", "servers", "lwfs MB/s", "fpp MB/s", "shared MB/s"
    );
    for &servers in &[4usize, 16] {
        for &clients in &[4usize, 16, 64] {
            let run = |impl_kind| {
                DumpSim {
                    machine: Machine::dev_cluster(),
                    calib: calib.clone(),
                    impl_kind,
                    clients,
                    servers,
                    bytes_per_client: 512_000_000,
                }
                .run(1)
                .throughput_mbps
            };
            println!(
                "{clients:>8} {servers:>12} {:>26.0} {:>26.0} {:>26.0}",
                run(CkptImpl::LwfsObjPerProc),
                run(CkptImpl::LustreFilePerProc),
                run(CkptImpl::LustreShared),
            );
        }
    }

    println!("\n== Red Storm (Table 2 rates), 2 GB/process, 256 I/O nodes ==");
    for &clients in &[512usize, 2048, 8192] {
        let run = |impl_kind| {
            DumpSim {
                machine: Machine::red_storm(),
                calib: calib.clone(),
                impl_kind,
                clients,
                servers: 256,
                bytes_per_client: 2_000_000_000,
            }
            .run(1)
        };
        let lwfs = run(CkptImpl::LwfsObjPerProc);
        let fpp = run(CkptImpl::LustreFilePerProc);
        println!(
            "{clients:>6} clients: lwfs {:>9.0} MB/s (create {:>6.2}s)   fpp {:>9.0} MB/s (create {:>6.2}s)",
            lwfs.throughput_mbps, lwfs.create_secs, fpp.throughput_mbps, fpp.create_secs
        );
    }

    println!("\n== create storms at Red Storm scale ==");
    for &clients in &[1024usize, 4096, 10_000] {
        let run = |impl_kind| {
            CreateSim {
                machine: Machine::red_storm(),
                calib: calib.clone(),
                impl_kind,
                clients,
                servers: 256,
                creates_per_client: 1,
            }
            .run(1)
        };
        let lwfs = run(CkptImpl::LwfsObjPerProc);
        let lustre = run(CkptImpl::LustreFilePerProc);
        println!(
            "{clients:>6} creates: lwfs {:>8.3}s   mds-serialized {:>8.3}s   ({:.0}x)",
            lwfs.makespan_secs,
            lustre.makespan_secs,
            lustre.makespan_secs / lwfs.makespan_secs
        );
    }

    println!("\nThe mechanism: a single metadata service is an O(n) serial point;");
    println!("LWFS distributes creates across the storage partition (O(n/m)).");
}
