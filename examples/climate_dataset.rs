//! A PnetCDF-style workflow on the LWFS-core: an SPMD climate model writes
//! a self-describing `(time, lat, lon)` dataset in parallel — no locks, no
//! metadata bottleneck — and an analysis job reopens it by name, slices a
//! time step, and asks the storage servers for statistics.
//!
//! This is the §6 plan ("implementing commonly used I/O libraries like …
//! PnetCDF directly on top of the LWFS core") made concrete.
//!
//! ```text
//! cargo run --release --example climate_dataset
//! ```

use std::sync::Arc;

use lwfs::prelude::*;
use lwfs::sciio::{Dataset, Schema, Slab, VarType};

const RANKS: usize = 4;
const TIME: u64 = 16;
const LAT: u64 = 24;
const LON: u64 = 48;

/// The "model": temperature field with a zonal gradient plus a hot anomaly.
fn temperature(t: u64, la: u64, lo: u64) -> f32 {
    let base = 15.0 - 0.5 * (la as f32 - LAT as f32 / 2.0).abs();
    let seasonal = 5.0 * ((t as f32) / TIME as f32 * std::f32::consts::TAU).sin();
    let anomaly = if la == 7 && lo == 11 { 20.0 } else { 0.0 };
    base + seasonal + anomaly
}

fn f32s(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn main() {
    let cluster =
        Arc::new(LwfsCluster::boot(ClusterConfig { storage_servers: RANKS, ..Default::default() }));
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();

    // Define the dataset (netCDF "define mode").
    let mut schema = Schema::new();
    let t = schema.dim("time", TIME);
    let la = schema.dim("lat", LAT);
    let lo = schema.dim("lon", LON);
    schema.var("temp", VarType::F32, &[t, la, lo]);
    schema.attr("title", "LWFS reproduction climate demo");
    schema.attr("units", "degC");
    Dataset::create(&owner, caps.clone(), "/runs/climate-001", schema).unwrap();
    println!("defined /runs/climate-001: temp(time={TIME}, lat={LAT}, lon={LON})");

    // ---- parallel write phase ------------------------------------------
    // Each rank owns TIME/RANKS time steps; writes are disjoint row blocks
    // on disjoint servers — zero lock traffic (asserted below).
    let wire = caps.to_wire();
    let handles: Vec<_> = (0..RANKS)
        .map(|rank| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let client = cluster.client(rank as u32, 0);
                let caps = CapSet::from_wire(wire).unwrap();
                let ds = Dataset::open(&client, caps, "/runs/climate-001").unwrap();
                let steps = TIME / RANKS as u64;
                let first = rank as u64 * steps;
                let mut field = Vec::with_capacity((steps * LAT * LON) as usize);
                for ts in first..first + steps {
                    for y in 0..LAT {
                        for x in 0..LON {
                            field.push(temperature(ts, y, x));
                        }
                    }
                }
                ds.put_slab("temp", &Slab::rows(&[TIME, LAT, LON], first, steps), &f32s(&field))
                    .unwrap();
                ds.sync_var("temp").unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let (locks_granted, _) = cluster.lock_table().contention();
    println!(
        "{} ranks wrote {:.1} MB in parallel, locks taken: {locks_granted}",
        RANKS,
        (TIME * LAT * LON * 4) as f64 / 1e6
    );
    assert_eq!(locks_granted, 0);

    // ---- analysis phase -------------------------------------------------
    let analyst = cluster.client(50, 0);
    let ds = Dataset::open(&analyst, caps, "/runs/climate-001").unwrap();
    println!(
        "reopened by name: title={:?} units={:?}",
        ds.schema().attr_value("title").unwrap(),
        ds.schema().attr_value("units").unwrap()
    );

    // Slice time step 9 and find its maximum locally.
    let slice = ds.get_slab("temp", &Slab::rows(&[TIME, LAT, LON], 9, 1)).unwrap();
    let step9: Vec<f32> =
        slice.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    let local_max = step9.iter().copied().fold(f32::NEG_INFINITY, f32::max);

    // Same question answered by the storage servers (16 bytes per block).
    let (min, max, sum, count) =
        ds.var_stats("temp", &Slab::rows(&[TIME, LAT, LON], 9, 1)).unwrap();
    assert_eq!(max, local_max);
    println!(
        "time step 9 stats (server-side): min {min:.2}degC max {max:.2}degC mean {:.2}degC over {count} cells",
        sum / count as f64
    );
    assert!(max > 25.0, "the hot anomaly must dominate");

    println!("climate_dataset complete");
}
