//! Remote filtering in action: event detection over distributed seismic
//! traces **without moving the traces**.
//!
//! The paper's future work (§6) names "I/O libraries that incorporate
//! remote processing (e.g., remote filtering)" after the active-disk line
//! of work it cites. This example stores a large synthetic trace set on
//! every storage server, then runs a threshold detector *on the servers*
//! and compares the bytes that crossed the network against the same
//! analysis done client-side.
//!
//! ```text
//! cargo run --release --example active_filter
//! ```

use lwfs::prelude::*;
use lwfs::proto::FilterSpec;
use lwfs::storage::decode_stats;

const SERVERS: usize = 4;
const SAMPLES_PER_TRACE: usize = 250_000; // 1 MB of f32 per server

fn synth_trace(server: usize) -> Vec<f32> {
    // Quiet Gaussian-ish background with a handful of strong arrivals.
    let mut v: Vec<f32> = (0..SAMPLES_PER_TRACE)
        .map(|i| (((i * 2654435761 + server * 97) % 1000) as f32 / 1000.0 - 0.5) * 0.02)
        .collect();
    for k in 0..5 {
        v[(k * 49_999 + server * 137) % SAMPLES_PER_TRACE] = 3.0 + k as f32;
    }
    v
}

fn f32s(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn main() -> Result<(), Error> {
    let cluster =
        LwfsCluster::boot(ClusterConfig { storage_servers: SERVERS, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket)?;
    let cid = client.create_container()?;
    let caps = client.get_caps(cid, OpMask::ALL)?;

    // Load one trace object per server.
    let mut objs = Vec::new();
    for s in 0..SERVERS {
        let obj = client.create_obj(s, &caps, None, None)?;
        client.write(s, &caps, None, obj, 0, &f32s(&synth_trace(s)))?;
        objs.push(obj);
    }
    let trace_bytes = SAMPLES_PER_TRACE * 4;
    println!(
        "loaded {SERVERS} traces x {} KB = {} MB total",
        trace_bytes / 1024,
        SERVERS * trace_bytes / 1_000_000
    );

    let stats = cluster.network().stats();

    // --- client-side analysis: ship everything, filter locally ---------
    stats.reset();
    let mut client_side_events = 0usize;
    for (s, obj) in objs.iter().enumerate() {
        let raw = client.read(s, &caps, *obj, 0, trace_bytes)?;
        client_side_events += raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .filter(|v| v.abs() >= 1.0)
            .count();
    }
    let shipped_full = stats.bytes.load(std::sync::atomic::Ordering::Relaxed);

    // --- server-side analysis: ship only the events ---------------------
    stats.reset();
    let mut server_side_events = 0usize;
    for (s, obj) in objs.iter().enumerate() {
        let (events, scanned) = client.read_filtered(
            s,
            &caps,
            *obj,
            0,
            trace_bytes,
            FilterSpec::Threshold { min_abs: 1.0 },
        )?;
        assert_eq!(scanned as usize, trace_bytes);
        server_side_events += events.len() / 4;
    }
    let shipped_filtered = stats.bytes.load(std::sync::atomic::Ordering::Relaxed);

    assert_eq!(client_side_events, server_side_events);
    println!("events detected: {server_side_events} (both methods agree)");
    println!(
        "bytes over the network: full read {:.1} MB vs filtered {:.2} KB  ({}x reduction)",
        shipped_full as f64 / 1e6,
        shipped_filtered as f64 / 1e3,
        shipped_full / shipped_filtered.max(1)
    );

    // Bonus: one-shot statistics without shipping anything but 16 bytes.
    let (block, _) = client.read_filtered(0, &caps, objs[0], 0, trace_bytes, FilterSpec::Stats)?;
    let (min, max, _sum, count) = decode_stats(&block).unwrap();
    println!("server-side stats of trace 0: min {min:.3} max {max:.3} over {count} samples");

    println!("active_filter complete");
    Ok(())
}
