//! Application-specific I/O: parallel seismic trace processing.
//!
//! The paper's introduction motivates lightweight I/O with data-intensive
//! applications — seismic imaging among them [Oldfield et al., ref 27] —
//! whose access patterns defeat general-purpose file-system policies.
//! This example shows what the "open architecture" buys such an
//! application: *it* chooses the data distribution (one shot-gather
//! object per storage server, writer-placed), *it* decides there is no
//! need for locking (writers own disjoint gathers), and readers assemble
//! strided trace sections directly from the distributed objects.
//!
//! ```text
//! cargo run --example seismic_io
//! ```

use std::sync::Arc;

use lwfs::prelude::*;
use lwfs::workload::AccessPattern;

const WRITERS: usize = 4;
const TRACES_PER_GATHER: u64 = 64;
const TRACE_BYTES: u64 = 4096;

fn trace_bytes(gather: usize, trace: u64) -> Vec<u8> {
    (0..TRACE_BYTES).map(|i| ((gather as u64 * 131 + trace * 17 + i) % 251) as u8).collect()
}

fn main() {
    let cluster = Arc::new(LwfsCluster::boot(ClusterConfig {
        storage_servers: WRITERS,
        ..Default::default()
    }));

    // One principal owns the survey container.
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();

    // ---- write phase -------------------------------------------------
    // Each writer owns one shot gather and places it on "its" storage
    // server — application-controlled distribution, no striping policy
    // imposed from below (paper §3, guideline 3).
    let wire = caps.to_wire();
    let write_handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let client = cluster.client(w as u32, 0);
                let caps = CapSet::from_wire(wire).unwrap();
                let obj = client.create_obj(w, &caps, None, None).unwrap();

                // Traces are written in acquisition order: a strided
                // pattern within the gather object.
                let pattern = AccessPattern::Strided {
                    base: 0,
                    record: TRACE_BYTES,
                    stride: TRACE_BYTES,
                    count: TRACES_PER_GATHER,
                };
                for (t, op) in pattern.generate(0).into_iter().enumerate() {
                    client
                        .write(w, &caps, None, obj, op.offset, &trace_bytes(w, t as u64))
                        .unwrap();
                }
                client.sync(w, &caps, Some(obj)).unwrap();
                // Register the gather under a survey path.
                client
                    .name_create(
                        None,
                        &format!("/survey/gather{w:03}"),
                        caps.container().unwrap(),
                        obj,
                    )
                    .unwrap();
                println!(
                    "writer {w}: {} traces -> server {w} ({} KiB)",
                    TRACES_PER_GATHER,
                    TRACES_PER_GATHER * TRACE_BYTES / 1024
                );
            })
        })
        .collect();
    for h in write_handles {
        h.join().unwrap();
    }

    // ---- read phase ---------------------------------------------------
    // A migration kernel reads a *common-offset section*: trace #17 of
    // every gather — a strided read across all servers in parallel,
    // impossible to express efficiently through a POSIX stream.
    let reader = cluster.client(50, 0);
    let caps_r = CapSet::from_wire(wire).unwrap();
    let section_trace = 17u64;
    let mut section = Vec::new();
    for w in 0..WRITERS {
        let (gcid, obj) = reader.name_lookup(&format!("/survey/gather{w:03}")).unwrap();
        assert_eq!(gcid, cid);
        let data = reader
            .read(w, &caps_r, obj, section_trace * TRACE_BYTES, TRACE_BYTES as usize)
            .unwrap();
        assert_eq!(data, trace_bytes(w, section_trace), "gather {w} trace mismatch");
        section.push(data);
    }
    println!(
        "reader: assembled common-offset section of {} traces ({} KiB) across {} servers",
        section.len(),
        section.len() as u64 * TRACE_BYTES / 1024,
        WRITERS
    );

    // ---- bookkeeping ----------------------------------------------------
    let survey = reader.name_list("/survey").unwrap();
    println!("survey catalogue: {survey:?}");
    assert_eq!(survey.len(), WRITERS);
    println!("seismic_io complete");
}
