//! Security walkthrough: transferable capabilities, delegation to an
//! unauthenticated process, and near-immediate partial revocation — the
//! §3.1 design end to end.
//!
//! ```text
//! cargo run --example capability_delegation
//! ```

use lwfs::prelude::*;

fn main() -> Result<(), Error> {
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 2, ..Default::default() });

    // Alice authenticates, creates a container, and writes a dataset.
    let mut alice = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    alice.get_cred(ticket)?;
    let cid = alice.create_container()?;
    let alice_caps = alice.get_caps(cid, OpMask::ALL)?;
    let obj = alice.create_obj(0, &alice_caps, None, None)?;
    alice.write(0, &alice_caps, None, obj, 0, b"classified simulation output")?;
    println!("alice wrote the dataset into container {cid}");

    // --- delegation ---------------------------------------------------
    // Capabilities are fully transferable (§3.1.2): alice hands a
    // read+write subset to a collaborator process that never talked to
    // the authentication service at all.
    let deleg_caps: CapSet = alice.get_caps(cid, OpMask::READ | OpMask::WRITE)?;
    let wire = deleg_caps.to_wire();

    let bob = cluster.client(1, 0); // unauthenticated!
    let bob_caps = CapSet::from_wire(wire).unwrap();
    let got = bob.read(0, &bob_caps, obj, 0, 28)?;
    assert_eq!(got, b"classified simulation output");
    bob.write(0, &bob_caps, None, obj, 0, b"Classified")?;
    println!("bob (delegated) read and annotated the dataset");

    // Bob cannot exceed the delegated rights: no create capability.
    match bob.create_obj(0, &bob_caps, None, None) {
        Err(Error::AccessDenied) => println!("bob correctly denied object creation"),
        other => panic!("expected AccessDenied, got {other:?}"),
    }

    // --- partial revocation (the chmod scenario, §3.1.4) ---------------
    // Alice removes write access for her principal. The authorization
    // service walks its back pointers and invalidates ONLY the cached
    // write verdicts at the storage servers; reads stay cached and valid.
    alice.mod_policy(&alice_caps, PrincipalId(1), OpMask::NONE, OpMask::WRITE)?;
    println!("alice chmod'ed write access away");

    match bob.write(0, &bob_caps, None, obj, 0, b"denied!") {
        Err(e) if e.is_security() => println!("bob's write now refused: {e}"),
        other => panic!("expected a security refusal, got {other:?}"),
    }
    let still = bob.read(0, &bob_caps, obj, 0, 10)?;
    println!(
        "bob's read still works without re-acquisition ({} bytes) — partial revocation",
        still.len()
    );

    // --- forgery resistance --------------------------------------------
    // A fabricated capability with plausible structure fails verification
    // at the authorization service (storage servers hold no signing key).
    let mut forged = bob_caps.for_op(OpMask::READ)?;
    forged.body.ops = OpMask::ALL;
    let forged_set = CapSet::new(vec![forged]);
    match bob.remove_obj(0, &forged_set, None, obj) {
        Err(e) if e.is_security() => println!("forged capability rejected: {e}"),
        other => panic!("expected a security refusal, got {other:?}"),
    }

    println!("capability_delegation complete");
    Ok(())
}
