//! Out-of-core computation with the caching/prefetching layer — the
//! "Low-Level I/O Libs" box of the paper's Figure 2, and the workload
//! class ("Beyond core", Womble et al., the paper's reference 40) that
//! motivated application-tailored policies in the first place.
//!
//! A solver sweeps a vector far larger than its "memory" (the cache),
//! reading sequentially (the prefetcher hauls blocks ahead of the sweep)
//! and writing results back through the write-back buffer, flushing once
//! per sweep — the application's own consistency point, no locks anywhere.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use lwfs::iolib::{CacheConfig, CachedObject};
use lwfs::prelude::*;

const ELEMENTS: usize = 1 << 18; // 256 Ki f64 = 2 MiB "problem"
const SWEEPS: usize = 3;

fn main() -> Result<(), Error> {
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 2, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket)?;
    let cid = client.create_container()?;
    let caps = client.get_caps(cid, OpMask::ALL)?;

    // The out-of-core vector lives in one object on server 0; initialize
    // it to x[i] = i.
    let obj = client.create_obj(0, &caps, None, None)?;
    let init: Vec<u8> = (0..ELEMENTS).flat_map(|i| (i as f64).to_le_bytes()).collect();
    client.write(0, &caps, None, obj, 0, &init)?;
    println!(
        "problem: {} elements ({} KiB) — cache holds only {} KiB",
        ELEMENTS,
        ELEMENTS * 8 / 1024,
        16 * 16
    );

    // The solver's "memory": a 16-block cache of 16 KiB blocks (1/8 of the
    // problem), readahead 4.
    let config = CacheConfig { block_size: 16 * 1024, max_blocks: 16, readahead_blocks: 4 };
    let mut cache = CachedObject::new(&client, caps.clone(), 0, obj, config);

    // Jacobi-flavoured sweeps: x[i] += 1.0, blocked through the cache.
    let chunk_elems = 2048usize; // 16 KiB per chunk
    for sweep in 0..SWEEPS {
        for c in 0..(ELEMENTS / chunk_elems) {
            let offset = (c * chunk_elems * 8) as u64;
            let raw = cache.read(offset, chunk_elems * 8)?;
            let bumped: Vec<u8> = raw
                .chunks_exact(8)
                .flat_map(|b| {
                    let v = f64::from_le_bytes(b.try_into().unwrap());
                    (v + 1.0).to_le_bytes()
                })
                .collect();
            cache.write(offset, &bumped)?;
        }
        // The application's consistency point: one flush per sweep.
        cache.flush()?;
        let s = cache.stats();
        println!(
            "sweep {sweep}: demand fetches {} prefetches {} (hits on prefetched {}) writebacks {}",
            s.demand_fetches, s.prefetches, s.prefetch_hits, s.writebacks
        );
    }

    // Verify the final state directly (no cache): x[i] = i + SWEEPS.
    let verify = cluster.client(1, 0);
    let raw = verify.read(0, &caps, obj, 0, ELEMENTS * 8)?;
    for (i, b) in raw.chunks_exact(8).enumerate().step_by(7919) {
        let v = f64::from_le_bytes(b.try_into().unwrap());
        assert_eq!(v, i as f64 + SWEEPS as f64, "element {i}");
    }
    let s = cache.stats();
    let total_blocks_touched = (ELEMENTS * 8 / (16 * 1024)) * SWEEPS;
    println!(
        "verified. {total_blocks_touched} block-touches served by {} demand fetches + {} prefetches",
        s.demand_fetches, s.prefetches
    );
    println!("out_of_core complete");
    Ok(())
}
