//! The paper's case study as an application: an SPMD job computes,
//! checkpoints with the Figure 8 lightweight algorithm, "crashes", and
//! restarts from the latest checkpoint.
//!
//! ```text
//! cargo run --example checkpoint_restart
//! ```

use std::sync::Arc;

use lwfs::checkpoint::LwfsCheckpointer;
use lwfs::prelude::*;
use lwfs::proto::{Decode as _, Encode as _};

const RANKS: usize = 4;
const STATE_BYTES: usize = 1 << 20; // 1 MiB per rank
const EPOCHS: u64 = 3;

/// The "science": each rank evolves a state vector; the checkpointed bytes
/// are the raw state.
fn compute_step(state: &mut [u8], epoch: u64) {
    for (i, b) in state.iter_mut().enumerate() {
        *b = b.wrapping_add((i as u64 + epoch) as u8).rotate_left(1);
    }
}

fn main() {
    let cluster =
        Arc::new(LwfsCluster::boot(ClusterConfig { storage_servers: 4, ..Default::default() }));

    // MAIN() of Figure 8, rank 0: GETCREDS, CREATECONTAINER, GETCAPS.
    let mut rank0 = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    rank0.get_cred(ticket).unwrap();
    let cid = rank0.create_container().unwrap();

    let group = Group::new((0..RANKS as u32).map(|i| ProcessId::new(i, 0)).collect());
    let mut clients = vec![rank0];
    for r in 1..RANKS {
        clients.push(cluster.client(r as u32, 0));
    }

    // Run the job: every rank is a thread; rank 0 scatters the credential
    // and the capability set down a log tree; ranks compute and
    // checkpoint; after a simulated crash everyone restores.
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(rank, mut client)| {
            let group = group.clone();
            std::thread::spawn(move || {
                let caps = if rank == 0 {
                    let caps = client.get_caps(cid, OpMask::CHECKPOINT | OpMask::READ).unwrap();
                    let cred = client.current_cred().unwrap();
                    client.broadcast(&group, 0, 0, 900, Some(cred.to_bytes())).unwrap();
                    client.scatter_caps(&group, 0, 0, 901, Some(&caps)).unwrap()
                } else {
                    let wire = client.broadcast(&group, rank, 0, 900, None).unwrap();
                    client.adopt_cred(Credential::from_bytes(wire).unwrap());
                    client.scatter_caps(&group, rank, 0, 901, None).unwrap()
                };
                let ck = LwfsCheckpointer::new(&client, group.clone(), rank, caps, "/ckpt/demo");

                // while not done: state ← COMPUTE(); CHECKPOINT(state …)
                let mut state = vec![rank as u8; STATE_BYTES];
                for epoch in 1..=EPOCHS {
                    compute_step(&mut state, epoch);
                    let report = ck.checkpoint(epoch, &state).unwrap();
                    if rank == 0 {
                        println!(
                            "epoch {epoch}: create {:.2} ms, dump {:.2} ms ({:.0} MB/s/rank)",
                            report.create_secs * 1e3,
                            report.dump_secs * 1e3,
                            report.dump_mb_per_sec()
                        );
                    }
                }

                // 💥 simulated crash: all in-memory state is lost.
                let lost_state = state.clone();
                drop(state);

                // Restart: restore the newest checkpoint by name.
                let restored = ck.restore(EPOCHS).unwrap();
                assert_eq!(restored, lost_state, "rank {rank}: restore mismatch");
                if rank == 0 {
                    let names = ck.list().unwrap();
                    println!("restart: restored epoch {EPOCHS}; checkpoints kept: {names:?}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    println!(
        "checkpoint/restart complete: {} ranks x {} MiB x {} epochs, all restores byte-exact",
        RANKS,
        STATE_BYTES >> 20,
        EPOCHS
    );
}
