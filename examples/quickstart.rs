//! Quickstart: boot an in-process LWFS deployment, authenticate, acquire
//! capabilities, and do object I/O with server-directed transfers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lwfs::prelude::*;

fn main() -> Result<(), Error> {
    // 1. Boot the Figure 3 deployment: authentication server,
    //    authorization server, naming server, txn/lock server, and four
    //    object storage servers — all real threads over the Portals-like
    //    substrate.
    let cluster = LwfsCluster::boot(ClusterConfig::default());
    println!(
        "booted LWFS cluster: {} storage servers, services at {:?}",
        cluster.storage_count(),
        cluster.addrs().authz
    );

    // 2. Authenticate against the external mechanism (a mock Kerberos KDC)
    //    and exchange the ticket for an LWFS credential.
    let mut client = cluster.client(/*compute node*/ 0, /*process*/ 0);
    let ticket = cluster.kdc().kinit("app", "secret").expect("user registered at boot");
    let cred = client.get_cred(ticket)?;
    println!("authenticated as principal {}", cred.principal());

    // 3. Create a container — the unit of access control — and acquire
    //    capabilities for the operations we need.
    let cid = client.create_container()?;
    let caps =
        client.get_caps(cid, OpMask::CREATE | OpMask::WRITE | OpMask::READ | OpMask::GETATTR)?;
    println!("container {cid} with capabilities {:?}", caps.ops());

    // 4. Create an object on storage server 0 and write to it. The write
    //    request is ~150 bytes; the payload moves when the *server* pulls
    //    it from our posted memory descriptor (server-directed I/O, §3.2).
    let obj = client.create_obj(0, &caps, None, None)?;
    let payload = b"I/O is the Achilles' heel of MPP computing".to_vec();
    let n = client.write(0, &caps, None, obj, 0, &payload)?;
    println!("wrote {n} bytes to {obj} on server 0");

    // 5. Read it back (the server pushes into our descriptor) and check
    //    the attributes.
    let back = client.read(0, &caps, obj, 0, payload.len())?;
    assert_eq!(back, payload);
    let attr = client.getattr(0, &caps, obj)?;
    println!("read back {} bytes, object size {}", back.len(), attr.size);

    // 6. Bind a name to the object via the naming service — a *client
    //    extension*, deliberately outside the LWFS-core.
    client.name_create(None, "/demo/greeting", cid, obj)?;
    let (found_cid, found_obj) = client.name_lookup("/demo/greeting")?;
    assert_eq!((found_cid, found_obj), (cid, obj));
    println!("named it /demo/greeting -> {found_obj}");

    println!("quickstart complete");
    Ok(())
}
