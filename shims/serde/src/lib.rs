//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as derive annotations on protocol
//! types; nothing ever serializes through it. `Serialize` and
//! `Deserialize` are therefore plain marker traits, and the `derive`
//! feature re-exports the no-op derives from the `serde_derive` shim.

/// Marker for types annotated `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker for types annotated `#[derive(Deserialize)]`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
