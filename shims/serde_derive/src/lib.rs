//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! annotations — no serializer is ever instantiated — so these derives
//! expand to empty impls of the marker traits in the `serde` shim.

use proc_macro::TokenStream;

/// Extract the identifier of the type a derive is attached to.
///
/// Scans past attributes, visibility, and the struct/enum/union keyword;
/// the next identifier is the type name. This is enough for the simple
/// data types the workspace derives on.
fn type_ident(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(proc_macro::TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// Collect generic parameter names (e.g. `T`, `U`) so the emitted impl
/// can repeat them. Lifetimes and bounds are not supported — the
/// workspace only derives on concrete types.
fn emit_marker_impls(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_ident(&input) {
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit_marker_impls(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit_marker_impls(input, "Deserialize")
}
