//! Offline stand-in for the `bytes` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `bytes` to this shim. [`Bytes`] is a cheaply cloneable shared view over
//! an `Arc<[u8]>`; [`BytesMut`] is a growable buffer that freezes into a
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! accessor set the workspace codec uses. Semantics match the real crate
//! for this surface; zero-copy `split_off`-style operations that the
//! workspace does not use are omitted.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    /// Unlike the real crate this copies: the shim's backing store is an
    /// `Arc<[u8]>` with no static variant. Call sites only pass small
    /// literals, and none require const evaluation.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of range: {lo}..{hi} of {len}");
        Self { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.slice(0..at);
        self.start += at;
        head
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::from(v.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    pos: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity), pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }

    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(self.pos + len);
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Convert the unread remainder into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.data.drain(..self.pos);
        }
        Bytes::from(self.data)
    }

    /// Split off the first `len` unread bytes into their own buffer,
    /// leaving the remainder in `self`.
    pub fn split_to(&mut self, len: usize) -> BytesMut {
        assert!(len <= self.len(), "split_to out of range");
        let out = BytesMut { data: self.data[self.pos..self.pos + len].to_vec(), pos: 0 };
        self.pos += len;
        out
    }

    /// Take the full contents, leaving `self` empty (the workspace only
    /// uses this as "split everything off").
    pub fn split(&mut self) -> BytesMut {
        let out = BytesMut { data: self.data.split_off(self.pos), pos: 0 };
        self.data.clear();
        self.pos = 0;
        out
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.data[pos..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec(), pos: 0 }
    }
}

/// Read access to a sequence of bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The current contiguous unread region.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice overrun");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes overrun");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes overrun");
        self.split_to(len)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    fn put(&mut self, mut src: impl Buf)
    where
        Self: Sized,
    {
        while src.has_remaining() {
            let chunk = src.chunk();
            self.put_slice(chunk);
            let n = chunk.len();
            src.advance(n);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn buf_reads_advance() {
        let mut b = Bytes::from(vec![1u8, 0, 0, 0, 0xAA]);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 0xAA);
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytesmut_write_then_freeze() {
        let mut m = BytesMut::new();
        m.put_u16_le(0xBEEF);
        m.put_slice(b"xy");
        assert_eq!(m.len(), 4);
        let b = m.freeze();
        assert_eq!(b.as_slice(), &[0xEF, 0xBE, b'x', b'y']);
    }

    #[test]
    fn bytesmut_is_also_a_buf() {
        let mut m = BytesMut::new();
        m.put_u32_le(7);
        m.put_u8(9);
        assert_eq!(m.get_u32_le(), 7);
        assert_eq!(m.len(), 1);
        m.truncate(0);
        assert!(m.is_empty());
    }

    #[test]
    fn copy_to_bytes_shares_backing() {
        let mut b = Bytes::from(vec![9u8; 64]);
        let head = b.copy_to_bytes(16);
        assert_eq!(head.len(), 16);
        assert_eq!(b.remaining(), 48);
    }

    #[test]
    fn slice_buf_advance() {
        let mut s: &[u8] = &[1, 2, 3];
        s.advance(1);
        assert_eq!(s.chunk(), &[2, 3]);
    }
}
