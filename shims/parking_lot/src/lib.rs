//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `parking_lot` to this shim: thin wrappers over
//! `std::sync` primitives that reproduce the non-poisoning parking_lot
//! API surface the workspace uses (`Mutex::lock`, `RwLock::read/write`,
//! `Condvar::notify_all/wait_until`). Poisoned locks are unwrapped —
//! matching parking_lot's semantics of not propagating panics as
//! poison errors.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// Non-poisoning mutex with the parking_lot API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_until can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Non-poisoning reader-writer lock with the parking_lot API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wait until `deadline`, reporting whether the deadline passed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, deadline - now) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakeup_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*done {
            assert!(!cv.wait_until(&mut done, deadline).timed_out());
        }
        t.join().unwrap();

        // An expired deadline reports timed_out immediately.
        let m = Mutex::new(());
        let mut g = m.lock();
        assert!(Condvar::new().wait_until(&mut g, Instant::now()).timed_out());
    }
}
