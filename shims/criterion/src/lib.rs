//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`throughput`, `Bencher::iter`,
//! `iter_batched`, `criterion_group!`, `criterion_main!` — backed by a
//! simple median-of-runs timer. When invoked with `--test` (as `cargo
//! test` does for `harness = false` bench targets) each benchmark body
//! runs once, so benches act as smoke tests.

use std::time::{Duration, Instant};

/// How work is batched for `iter_batched`; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median nanoseconds per iteration from the last `iter` call.
    last_ns: Option<f64>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            std::hint::black_box(routine());
            self.last_ns = None;
            return;
        }
        // Warm up, then time a few batches and keep the median.
        let mut iters = 1u64;
        let warmup_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warmup_deadline {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_batch = iters.clamp(1, 10_000);
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = Some(samples[samples.len() / 2]);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            std::hint::black_box(routine(setup()));
            self.last_ns = None;
            return;
        }
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = Some(samples[samples.len() / 2]);
    }
}

struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Config {
    fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { sample_size: 15, warm_up_time: Duration::from_millis(50), test_mode }
    }
}

/// Benchmark driver; collects and prints one line per benchmark.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { config: Config::from_args() }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, id.as_ref(), None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { config: &self.config, name: name.as_ref().to_string(), throughput: None }
    }

    pub fn final_summary(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Config,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher { config, last_ns: None };
    f(&mut b);
    match b.last_ns {
        Some(ns) => {
            let rate = match throughput {
                Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes)) => {
                    let gib_s = bytes as f64 / ns * 1e9 / (1u64 << 30) as f64;
                    format!("  {gib_s:8.3} GiB/s")
                }
                Some(Throughput::Elements(n)) => {
                    let elem_s = n as f64 / ns * 1e9;
                    format!("  {elem_s:12.0} elem/s")
                }
                None => String::new(),
            };
            println!("bench {id:<40} {ns:12.1} ns/iter{rate}");
        }
        None => println!("bench {id:<40} ok (test mode)"),
    }
}

/// Grouped benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    config: &'a Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(self.config, &full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export used by some call sites; `std::hint::black_box` works too.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("x", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default().sample_size(3).warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
