//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `rand` to this shim. It reproduces the subset the workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the rand_core 0.6 PCG-based
//! `seed_from_u64` expansion, so seeded streams match the real crate when
//! paired with the faithful ChaCha8 in the `rand_chacha` shim),
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! `distributions::{Distribution, Uniform, Standard}`.

use std::ops::Range;

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed exactly like rand_core 0.6 (PCG32
    /// output function over a splitmix-style state walk), so seeded
    /// streams are bit-identical to the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generator methods.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0,1]");
        // Match rand 0.8: compare 64 random bits against p scaled to 2^64.
        if p >= 1.0 {
            return true;
        }
        let scale = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < scale
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Widening-multiply rejection-free mapping (small bias is
                // irrelevant at these span sizes; deterministic per stream).
                let v = ((rng.next_u64() as u128 * span) >> 64) as $t;
                range.start + v
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Self { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            let mut rng = rng;
            T::sample_range(&mut rng, &(self.lo..self.hi))
        }
    }

    /// The "natural" distribution for a type (full-range ints, unit-range
    /// floats, fair bools) — what `rng.gen()` draws from.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    /// A tiny deterministic generator for exercising the trait surface.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift(0x1234_5678);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3000..7000).contains(&heads), "{heads}");
    }

    #[test]
    fn uniform_distribution_samples() {
        let mut rng = XorShift(99);
        let d = Uniform::new(100u64, 200);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn seed_expansion_matches_rand_core_06() {
        // Golden value: rand_core 0.6 expands seed_from_u64(0) via PCG32;
        // the first four bytes of the expanded seed for any Seed=[u8;32]
        // generator are fixed. We pin the whole expansion here so a future
        // edit cannot silently desynchronize us from the real crate.
        struct CaptureSeed([u8; 32]);
        impl SeedableRng for CaptureSeed {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                CaptureSeed(seed)
            }
        }
        let s = CaptureSeed::seed_from_u64(0).0;
        // First word of PCG32 with rand_core's constants from state 0.
        let expected_first = {
            let state = 0u64.wrapping_mul(6364136223846793005).wrapping_add(11634580027462260723);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            xorshifted.rotate_right((state >> 59) as u32)
        };
        assert_eq!(&s[..4], &expected_first.to_le_bytes());
    }
}
