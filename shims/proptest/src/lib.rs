//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this shim: a deterministic randomized-testing engine
//! supporting the surface the workspace uses —
//!
//! - `proptest! { #[test] fn f(x in STRATEGY, y: Type) { .. } }`
//! - `prop_assert!` / `prop_assert_eq!`
//! - strategies: integer/float `Range`s, `&str` regex patterns
//!   (character-class subset), tuples, `collection::vec`,
//!   `bool::ANY`, `num::*::ANY`
//! - `Arbitrary` for the typed-argument form (ints, floats, `Vec<T>`,
//!   fixed-size arrays)
//!
//! No shrinking: on failure the generated inputs are part of the panic
//! payload's context via the deterministic per-test seed, so a failure
//! reproduces exactly on re-run.

use std::ops::Range;

/// Number of cases each property runs. Kept moderate so `cargo test`
/// stays fast while still exploring the input space.
pub const DEFAULT_CASES: usize = 96;

/// Deterministic per-test RNG (splitmix64). Seeded from the test name so
/// failures reproduce across runs without any global state.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name for a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the proptest `Strategy` concept, minus shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies are regex patterns. Supports the subset the
/// workspace uses: literal chars, `[a-z0-9]` classes with ranges,
/// `\PC` (any non-control char), and quantifiers `{m,n}`, `{m}`,
/// `*`, `+`, `?`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

mod regex_lite {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        /// `\PC`: any char that is not a control character.
        Printable,
    }

    const STAR_MAX: u64 = 8;

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let n = (*hi as u64) - (*lo as u64) + 1;
                    if pick < n {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= n;
                }
                ranges[0].0
            }
            Atom::Printable => {
                // Mostly ASCII printable, occasionally multibyte, so decoders
                // see non-trivial UTF-8 too.
                if rng.below(8) == 0 {
                    let choices = ['é', 'λ', '中', '🦀', 'ß', 'Ω'];
                    choices[rng.below(choices.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
                }
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // skip ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                    let esc = chars[i + 1];
                    i += 2;
                    if esc == 'P' || esc == 'p' {
                        // \PC / \p{...}: treat as "printable char".
                        if i < chars.len() && chars[i] == 'C' {
                            i += 1;
                        }
                        Atom::Printable
                    } else {
                        Atom::Literal(esc)
                    }
                }
                '.' => {
                    i += 1;
                    Atom::Printable
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, STAR_MAX)
                    }
                    '+' => {
                        i += 1;
                        (1, STAR_MAX)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|c| *c == '}')
                            .expect("unterminated quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                            None => {
                                let m: u64 = body.trim().parse().unwrap();
                                (m, m)
                            }
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let reps = min + rng.below(max - min + 1);
            for _ in 0..reps {
                out.push(sample_atom(&atom, rng));
            }
        }
        out
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Full-domain strategies for primitives, mirroring `proptest::num::*::ANY`
/// and `proptest::bool::ANY`.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_prim {
    ($mod_name:ident, $t:ty, $gen:expr) => {
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            #[allow(clippy::redundant_closure_call)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                ($gen)(rng)
            }
        }

        pub mod $mod_name {
            pub const ANY: super::AnyPrim<$t> = super::AnyPrim(std::marker::PhantomData);
        }
    };
}

impl_any_prim!(bool, bool, |rng: &mut TestRng| rng.next_u64() & 1 == 1);

pub mod num {
    use super::{AnyPrim, Strategy, TestRng};

    macro_rules! num_any {
        ($($m:ident : $t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            pub mod $m {
                pub const ANY: super::AnyPrim<$t> =
                    super::AnyPrim(std::marker::PhantomData);
            }
        )*};
    }

    num_any!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// Generator for the `name: Type` parameter form of `proptest!`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite magnitudes with special values, like proptest does.
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => (rng.unit_f64() - 0.5) * 2e9,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let n = rng.below(32);
        (0..n).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let n = rng.below(96);
        (0..n).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Defines property tests. Each `#[test]` fn inside runs its body
/// [`DEFAULT_CASES`] times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
            for __proptest_case in 0..$crate::DEFAULT_CASES {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
            }
        }
        $crate::proptest!($($rest)*);
    };
}

/// Internal: binds one `proptest!` parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    // Entry point without leading comma.
    ($rng:ident, ) => {};
    ($rng:ident $($rest:tt)+) => {
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in -3i32..3, f in 0.5f64..1.5) {
            crate::prop_assert!((5..10).contains(&x));
            crate::prop_assert!((-3..3).contains(&y));
            crate::prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn typed_args_generate(v: Vec<u8>, n: u64, sig: [u8; 16]) {
            crate::prop_assert!(v.len() < 96);
            let _ = n;
            crate::prop_assert_eq!(sig.len(), 16);
        }

        #[test]
        fn vec_of_tuples(ops in crate::collection::vec((0u64..12, crate::bool::ANY), 1..20)) {
            crate::prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (k, _flag) in ops {
                crate::prop_assert!(k < 12);
            }
        }
    }

    #[test]
    fn regex_class_with_quantifier() {
        let mut rng = TestRng::deterministic("regex_class");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn regex_printable_star() {
        let mut rng = TestRng::deterministic("regex_printable");
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
