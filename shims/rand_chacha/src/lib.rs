//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements the real ChaCha stream cipher (8-round variant) with the
//! same state layout rand_chacha 0.3 uses — 64-bit block counter in
//! words 12/13, 64-bit stream id (zero) in words 14/15 — and the same
//! word-consumption order, so `ChaCha8Rng::seed_from_u64(s)` produces
//! the same `next_u64` stream as the real crate. The workspace's DES
//! model calibration depends on seeded streams staying stable.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, seekable by 64-byte block.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // words 14/15: stream id, fixed at 0 (rand_chacha's default).
        let initial = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha8Rng").finish_non_exhaustive()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, buf: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core's BlockRng consumes two consecutive u32 output words
        // (low then high), including across a block boundary — identical
        // to two sequential next_u32 calls.
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha8_block_matches_reference() {
        // ChaCha8 keystream for the all-zero key, counter 0, nonce 0.
        // First output words per the ChaCha reference implementation
        // (chacha-merged.c, 8 rounds), widely published as a test vector:
        // 3e00ef2f895f40d67f5bb8e81f09a5a12c840ec3ce9a7f3b181be188ef711a1e
        let rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut r = rng;
        let mut out = [0u8; 32];
        r.fill_bytes(&mut out);
        let expected: [u8; 32] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1, 0x2c, 0x84, 0x0e, 0xc3, 0xce, 0x9a, 0x7f, 0x3b, 0x18, 0x1b, 0xe1, 0x88,
            0xef, 0x71, 0x1a, 0x1e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn blocks_advance_counter() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }
}
