//! The client-side two-phase commit coordinator.
//!
//! The paper makes the client the coordinator ("A two-phase commit protocol
//! (part of the LWFS API) helps the client to preserve the atomicity
//! property because it requires all participating servers to agree on the
//! final state of the system before changes become permanent", §3.4).
//!
//! Message complexity per transaction is `2 × |participants|` RPCs —
//! participants number O(m) (storage/naming servers touched), never O(n),
//! in keeping with the scalability rules of §2.3.

use std::time::Instant;

use lwfs_portals::RpcClient;
use lwfs_proto::{Error, ProcessId, ReplyBody, RequestBody, Result, TraceContext, TxnId};

/// Outcome of a completed two-phase commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    Committed,
    /// Aborted, with the participants (if any) whose "no" votes or errors
    /// caused it.
    Aborted {
        no_votes: Vec<ProcessId>,
    },
}

impl TxnOutcome {
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

/// A two-phase commit driver bound to an RPC client.
pub struct Coordinator<'a, 'ep> {
    client: &'a RpcClient<'ep>,
    participants: Vec<ProcessId>,
}

impl<'a, 'ep> Coordinator<'a, 'ep> {
    pub fn new(client: &'a RpcClient<'ep>, participants: Vec<ProcessId>) -> Self {
        Self { client, participants }
    }

    /// Root the distributed trace at the transaction id: every prepare,
    /// commit, and abort RPC this coordinator issues carries
    /// `trace_id = txn.0`, so the participants' spans — including their
    /// WAL appends and, on replicated groups, their ships — assemble into
    /// one transaction-wide trace.
    fn trace_as(&self, txn: TxnId) {
        self.client.set_trace(TraceContext { trace_id: txn.0, parent_req_id: 0 });
    }

    pub fn participants(&self) -> &[ProcessId] {
        &self.participants
    }

    /// Add a participant discovered mid-transaction (e.g. the naming
    /// service once rank 0 creates the checkpoint name). Duplicates are
    /// merged.
    pub fn enlist(&mut self, p: ProcessId) {
        if !self.participants.contains(&p) {
            self.participants.push(p);
        }
    }

    /// Run phase 1 (prepare) and phase 2 (commit or abort) for `txn`.
    ///
    /// Any participant voting no — or any transport error during phase 1 —
    /// aborts the whole transaction at every participant.
    ///
    /// Each run is traced on the fabric registry under op `txn` (keyed by
    /// the transaction id): a `prepare` span covering phase 1, a `commit`
    /// span covering phase 2, and the end-to-end total — which feed the
    /// `txn.prepare_ns` / `txn.commit_ns` / `txn.total_ns` histograms.
    pub fn commit(&self, txn: TxnId) -> Result<TxnOutcome> {
        let obs = self.client.endpoint().obs();
        self.trace_as(txn);
        let mut trace = obs.trace(txn.0, "txn").on_node(self.client.endpoint().id().nid.0);
        let mut no_votes = Vec::new();
        for p in &self.participants {
            match self.client.call(*p, RequestBody::TxnPrepare { txn }) {
                Ok(ReplyBody::TxnVote(true)) => {}
                Ok(ReplyBody::TxnVote(false)) => no_votes.push(*p),
                Ok(other) => return Err(Error::Internal(format!("bad prepare reply {other:?}"))),
                Err(_) => no_votes.push(*p),
            }
        }
        trace.stage("prepare");

        if no_votes.is_empty() {
            for p in &self.participants {
                match self.client.call(*p, RequestBody::TxnCommit { txn }) {
                    Ok(ReplyBody::TxnCommitted) => {}
                    Ok(other) => {
                        return Err(Error::Internal(format!("bad commit reply {other:?}")))
                    }
                    // A participant that prepared but is now unreachable
                    // must be retried by recovery; surface the error.
                    Err(e) => return Err(e),
                }
            }
            trace.stage("commit");
            obs.counter("txn.commits").inc();
            trace.finish();
            Ok(TxnOutcome::Committed)
        } else {
            // Abort latency and the abort count are recorded by `abort`
            // itself; the trace still captures the end-to-end total.
            self.abort(txn)?;
            trace.finish();
            Ok(TxnOutcome::Aborted { no_votes })
        }
    }

    /// Run **phase 1 only**: prepare `txn` at every participant and return
    /// the set of no-votes (empty means every participant is now durably
    /// prepared and holds the transaction *in doubt*).
    ///
    /// A coordinator that stops here — crash, test harness, or deliberate
    /// hand-off — leaves the decision to a later [`resolve`] call; prepared
    /// participants never unilaterally forget.
    ///
    /// [`resolve`]: Coordinator::resolve
    pub fn prepare(&self, txn: TxnId) -> Result<Vec<ProcessId>> {
        let obs = self.client.endpoint().obs();
        self.trace_as(txn);
        let mut trace = obs.trace(txn.0, "txn.phase1").on_node(self.client.endpoint().id().nid.0);
        let mut no_votes = Vec::new();
        for p in &self.participants {
            match self.client.call(*p, RequestBody::TxnPrepare { txn }) {
                Ok(ReplyBody::TxnVote(true)) => {}
                Ok(ReplyBody::TxnVote(false)) => no_votes.push(*p),
                Ok(other) => return Err(Error::Internal(format!("bad prepare reply {other:?}"))),
                Err(_) => no_votes.push(*p),
            }
        }
        trace.stage("prepare");
        trace.finish();
        Ok(no_votes)
    }

    /// Run **phase 2 only**, announcing an already-decided outcome to
    /// participants holding `txn` in doubt (e.g. after one of them
    /// restarted from its write-ahead log).
    ///
    /// `NoSuchTxn` replies are tolerated: a participant that already heard
    /// the verdict — or that aborted under presumed-abort — has nothing
    /// left to resolve.
    pub fn resolve(&self, txn: TxnId, commit: bool) -> Result<()> {
        let obs = self.client.endpoint().obs();
        self.trace_as(txn);
        let mut trace = obs.trace(txn.0, "txn.phase2").on_node(self.client.endpoint().id().nid.0);
        for p in &self.participants {
            let body =
                if commit { RequestBody::TxnCommit { txn } } else { RequestBody::TxnAbort { txn } };
            match self.client.call(*p, body) {
                Ok(ReplyBody::TxnCommitted) | Ok(ReplyBody::TxnAborted) => {}
                Err(Error::NoSuchTxn(_)) => {}
                Ok(other) => return Err(Error::Internal(format!("bad resolve reply {other:?}"))),
                Err(e) => return Err(e),
            }
        }
        trace.stage("resolve");
        trace.finish();
        Ok(())
    }

    /// Abort `txn` at every participant (also used directly by clients that
    /// hit an error before commit).
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let obs = self.client.endpoint().obs();
        self.trace_as(txn);
        let start = Instant::now();
        for p in &self.participants {
            // Best effort: an unreachable participant holds no prepared
            // state we committed to, and presumed-abort cleans it up.
            let _ = self.client.call(*p, RequestBody::TxnAbort { txn });
        }
        obs.histogram("txn.abort_ns").record_duration(start.elapsed());
        obs.counter("txn.aborts").inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_portals::{spawn_service, Endpoint, Network, Service, ServiceHandle};
    use lwfs_proto::Request;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A scripted participant: votes as told, counts protocol messages.
    struct ScriptedParticipant {
        vote: bool,
        prepares: Arc<AtomicU64>,
        commits: Arc<AtomicU64>,
        aborts: Arc<AtomicU64>,
    }

    impl Service for ScriptedParticipant {
        fn handle(&mut self, _ep: &Endpoint, req: &Request) -> ReplyBody {
            match req.body {
                RequestBody::TxnPrepare { .. } => {
                    self.prepares.fetch_add(1, Ordering::SeqCst);
                    ReplyBody::TxnVote(self.vote)
                }
                RequestBody::TxnCommit { .. } => {
                    self.commits.fetch_add(1, Ordering::SeqCst);
                    ReplyBody::TxnCommitted
                }
                RequestBody::TxnAbort { .. } => {
                    self.aborts.fetch_add(1, Ordering::SeqCst);
                    ReplyBody::TxnAborted
                }
                _ => ReplyBody::Err(Error::Internal("unexpected".into())),
            }
        }
    }

    struct Counters {
        prepares: Arc<AtomicU64>,
        commits: Arc<AtomicU64>,
        aborts: Arc<AtomicU64>,
    }

    fn spawn_participant(net: &Network, nid: u32, vote: bool) -> (ServiceHandle, Counters) {
        let c = Counters {
            prepares: Arc::new(AtomicU64::new(0)),
            commits: Arc::new(AtomicU64::new(0)),
            aborts: Arc::new(AtomicU64::new(0)),
        };
        let svc = ScriptedParticipant {
            vote,
            prepares: c.prepares.clone(),
            commits: c.commits.clone(),
            aborts: c.aborts.clone(),
        };
        (spawn_service(net, ProcessId::new(nid, 0), svc), c)
    }

    #[test]
    fn all_yes_commits_everywhere() {
        let net = Network::default();
        let (h1, c1) = spawn_participant(&net, 1, true);
        let (h2, c2) = spawn_participant(&net, 2, true);
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let coord = Coordinator::new(&client, vec![h1.id(), h2.id()]);
        let out = coord.commit(TxnId(1)).unwrap();
        assert_eq!(out, TxnOutcome::Committed);
        for c in [&c1, &c2] {
            assert_eq!(c.prepares.load(Ordering::SeqCst), 1);
            assert_eq!(c.commits.load(Ordering::SeqCst), 1);
            assert_eq!(c.aborts.load(Ordering::SeqCst), 0);
        }
        h1.shutdown();
        h2.shutdown();
    }

    #[test]
    fn one_no_vote_aborts_everyone() {
        let net = Network::default();
        let (h1, c1) = spawn_participant(&net, 1, true);
        let (h2, c2) = spawn_participant(&net, 2, false);
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let coord = Coordinator::new(&client, vec![h1.id(), h2.id()]);
        let out = coord.commit(TxnId(1)).unwrap();
        assert_eq!(out, TxnOutcome::Aborted { no_votes: vec![h2.id()] });
        assert!(!out.is_committed());
        for c in [&c1, &c2] {
            assert_eq!(c.commits.load(Ordering::SeqCst), 0);
            assert_eq!(c.aborts.load(Ordering::SeqCst), 1);
        }
        h1.shutdown();
        h2.shutdown();
    }

    #[test]
    fn unreachable_participant_aborts() {
        let net = Network::default();
        let (h1, c1) = spawn_participant(&net, 1, true);
        let ghost = ProcessId::new(99, 0); // never registered
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let coord = Coordinator::new(&client, vec![h1.id(), ghost]);
        let out = coord.commit(TxnId(7)).unwrap();
        assert_eq!(out, TxnOutcome::Aborted { no_votes: vec![ghost] });
        assert_eq!(c1.aborts.load(Ordering::SeqCst), 1);
        h1.shutdown();
    }

    #[test]
    fn enlist_merges_duplicates() {
        let net = Network::default();
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let mut coord = Coordinator::new(&client, vec![ProcessId::new(1, 0)]);
        coord.enlist(ProcessId::new(2, 0));
        coord.enlist(ProcessId::new(1, 0));
        assert_eq!(coord.participants().len(), 2);
    }

    #[test]
    fn phase_latencies_and_outcomes_feed_registry() {
        let net = Network::default();
        let (h1, _c1) = spawn_participant(&net, 1, true);
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let coord = Coordinator::new(&client, vec![h1.id()]);
        coord.commit(TxnId(1)).unwrap();
        let snap = net.obs().snapshot();
        assert_eq!(snap.counter("txn.commits"), Some(1));
        assert_eq!(snap.histogram("txn.prepare_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("txn.commit_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("txn.total_ns").unwrap().count, 1);

        let (h2, _c2) = spawn_participant(&net, 2, false);
        let coord = Coordinator::new(&client, vec![h1.id(), h2.id()]);
        assert!(!coord.commit(TxnId(2)).unwrap().is_committed());
        let snap = net.obs().snapshot();
        assert_eq!(snap.counter("txn.aborts"), Some(1));
        assert_eq!(snap.histogram("txn.abort_ns").unwrap().count, 1);
        h1.shutdown();
        h2.shutdown();
    }

    #[test]
    fn message_count_is_two_per_participant() {
        let net = Network::default();
        let (h1, _c1) = spawn_participant(&net, 1, true);
        let (h2, _c2) = spawn_participant(&net, 2, true);
        let (h3, _c3) = spawn_participant(&net, 3, true);
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        net.stats().reset();
        let coord = Coordinator::new(&client, vec![h1.id(), h2.id(), h3.id()]);
        coord.commit(TxnId(1)).unwrap();
        // 3 prepare + 3 commit requests from the coordinator.
        assert_eq!(net.stats().sent_by(ep.id()), 6);
        h1.shutdown();
        h2.shutdown();
        h3.shutdown();
    }
}
