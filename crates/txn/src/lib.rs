//! Transactional semantics for LWFS (paper §3.4).
//!
//! "LWFS provides two mechanisms for implementing ACID-compliant
//! transactions: journals and locks. Journals provide a mechanism to ensure
//! atomicity and durability … A two-phase commit protocol (part of the LWFS
//! API) helps the client preserve the atomicity property … Locks enable
//! consistency and isolation for concurrent transactions."
//!
//! The pieces:
//!
//! * [`JournalStore`] — generic per-transaction operation journal used by
//!   *participants* (storage servers, the naming service): operations are
//!   staged while a transaction is active, hardened at prepare, applied at
//!   commit, discarded at abort.
//! * [`LockTable`] — shared/exclusive byte-range locks over objects, the
//!   primitive a POSIX-semantics file system layered above LWFS uses for
//!   shared-file writes.
//! * [`Coordinator`] — the client-side two-phase commit driver (the paper
//!   makes the *client* the coordinator: "part of the LWFS API").
//! * [`TxnLockServer`] — a service that allocates transaction ids and
//!   serves the lock protocol.

pub mod coordinator;
pub mod journal;
pub mod locks;
pub mod server;

pub use coordinator::{Coordinator, TxnOutcome};
pub use journal::{JournalState, JournalStore};
pub use locks::{LockGrant, LockTable};
pub use server::TxnLockServer;
