//! Per-transaction operation journals for 2PC participants.
//!
//! A participant stages each transactional operation in its journal rather
//! than applying it immediately. At `prepare` the journal is *hardened*
//! (in a real deployment: synced to a persistent journal object — the
//! paper notes "a journal exists as a persistent object on the storage
//! system"; here: state-machine transition plus an optional sync hook).
//! `commit` drains the staged operations for application; `abort` discards
//! them. The state machine refuses every out-of-order transition, which is
//! what makes the distributed protocol auditable.

use std::collections::HashMap;

use lwfs_proto::{Error, Result, TxnId};
use parking_lot::Mutex;

/// Lifecycle of one transaction at one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalState {
    /// Accepting staged operations.
    Active,
    /// Hardened; the participant has voted yes and may no longer abort
    /// unilaterally.
    Prepared,
}

struct JournalRecord<Op> {
    state: JournalState,
    ops: Vec<Op>,
}

/// A participant's journal set: one journal per active transaction.
pub struct JournalStore<Op> {
    journals: Mutex<HashMap<TxnId, JournalRecord<Op>>>,
}

impl<Op> Default for JournalStore<Op> {
    fn default() -> Self {
        Self { journals: Mutex::new(HashMap::new()) }
    }
}

impl<Op> JournalStore<Op> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage an operation, implicitly opening the journal on first use
    /// (participants learn of a transaction from its first operation).
    pub fn stage(&self, txn: TxnId, op: Op) -> Result<()> {
        let mut js = self.journals.lock();
        let rec = js
            .entry(txn)
            .or_insert_with(|| JournalRecord { state: JournalState::Active, ops: Vec::new() });
        if rec.state != JournalState::Active {
            return Err(Error::Internal(format!("stage after prepare in {txn}")));
        }
        rec.ops.push(op);
        Ok(())
    }

    /// Phase 1: harden the journal and vote.
    ///
    /// Unknown transactions vote **yes with an empty journal** — a
    /// participant that never saw an operation has nothing to make durable,
    /// and the coordinator may legitimately prepare every participant it
    /// *might* have touched. (This matches presumed-abort 2PC.)
    pub fn prepare(&self, txn: TxnId) -> bool {
        let mut js = self.journals.lock();
        let rec = js
            .entry(txn)
            .or_insert_with(|| JournalRecord { state: JournalState::Active, ops: Vec::new() });
        rec.state = JournalState::Prepared;
        true
    }

    /// Phase 2 (commit): drain the staged operations for application.
    ///
    /// Committing a transaction that was never prepared is a protocol
    /// error: the coordinator skipped phase 1.
    pub fn commit(&self, txn: TxnId) -> Result<Vec<Op>> {
        let mut js = self.journals.lock();
        match js.remove(&txn) {
            None => Err(Error::NoSuchTxn(txn)),
            Some(rec) if rec.state != JournalState::Prepared => {
                // Put it back untouched; the caller's bug must not destroy
                // the journal.
                js.insert(txn, rec);
                Err(Error::Internal(format!("commit before prepare in {txn}")))
            }
            Some(rec) => Ok(rec.ops),
        }
    }

    /// Phase 2 (abort): discard. Aborting an unknown transaction is a no-op
    /// (presumed abort).
    pub fn abort(&self, txn: TxnId) -> Vec<Op> {
        self.journals.lock().remove(&txn).map(|r| r.ops).unwrap_or_default()
    }

    pub fn state(&self, txn: TxnId) -> Option<JournalState> {
        self.journals.lock().get(&txn).map(|r| r.state)
    }

    /// Snapshot of every open journal and its state, sorted by transaction
    /// id. Recovery uses this to separate end-of-log `Active` transactions
    /// (presumed aborted: roll back and discard) from `Prepared` ones
    /// (in doubt: hold for the coordinator's verdict).
    pub fn txns(&self) -> Vec<(TxnId, JournalState)> {
        let mut v: Vec<(TxnId, JournalState)> =
            self.journals.lock().iter().map(|(t, r)| (*t, r.state)).collect();
        v.sort_by_key(|(t, _)| *t);
        v
    }

    pub fn staged_ops(&self, txn: TxnId) -> usize {
        self.journals.lock().get(&txn).map(|r| r.ops.len()).unwrap_or(0)
    }

    pub fn active_txns(&self) -> usize {
        self.journals.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, PartialEq, Eq, Clone)]
    enum Op {
        Write(u64),
        Create,
    }

    #[test]
    fn stage_prepare_commit_drains_in_order() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(1);
        js.stage(t, Op::Create).unwrap();
        js.stage(t, Op::Write(0)).unwrap();
        js.stage(t, Op::Write(4096)).unwrap();
        assert_eq!(js.staged_ops(t), 3);
        assert!(js.prepare(t));
        let ops = js.commit(t).unwrap();
        assert_eq!(ops, vec![Op::Create, Op::Write(0), Op::Write(4096)]);
        assert_eq!(js.active_txns(), 0);
    }

    #[test]
    fn abort_discards() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(2);
        js.stage(t, Op::Create).unwrap();
        let discarded = js.abort(t);
        assert_eq!(discarded.len(), 1);
        assert_eq!(js.active_txns(), 0);
        // Committing after abort is NoSuchTxn.
        assert_eq!(js.commit(t).unwrap_err(), Error::NoSuchTxn(t));
    }

    #[test]
    fn abort_unknown_txn_is_noop() {
        let js: JournalStore<Op> = JournalStore::new();
        assert!(js.abort(TxnId(99)).is_empty());
    }

    #[test]
    fn commit_without_prepare_is_rejected_and_preserves_journal() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(3);
        js.stage(t, Op::Create).unwrap();
        assert!(matches!(js.commit(t), Err(Error::Internal(_))));
        // Journal intact; proper sequence still works.
        assert_eq!(js.staged_ops(t), 1);
        js.prepare(t);
        assert_eq!(js.commit(t).unwrap().len(), 1);
    }

    #[test]
    fn stage_after_prepare_rejected() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(4);
        js.stage(t, Op::Create).unwrap();
        js.prepare(t);
        assert!(matches!(js.stage(t, Op::Write(1)), Err(Error::Internal(_))));
    }

    #[test]
    fn prepare_of_unseen_txn_votes_yes_empty() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(5);
        assert!(js.prepare(t));
        assert_eq!(js.state(t), Some(JournalState::Prepared));
        assert!(js.commit(t).unwrap().is_empty());
    }

    #[test]
    fn prepare_after_prepare_is_idempotent() {
        let js: JournalStore<Op> = JournalStore::new();
        let t = TxnId(6);
        js.stage(t, Op::Write(1)).unwrap();
        assert!(js.prepare(t));
        assert!(js.prepare(t), "re-prepare (coordinator retry) must re-vote yes");
        assert_eq!(js.state(t), Some(JournalState::Prepared));
        assert_eq!(js.staged_ops(t), 1, "re-prepare must not disturb staged ops");
        assert_eq!(js.commit(t).unwrap().len(), 1);
    }

    #[test]
    fn txns_lists_states_sorted() {
        let js: JournalStore<Op> = JournalStore::new();
        js.stage(TxnId(2), Op::Create).unwrap();
        js.stage(TxnId(1), Op::Create).unwrap();
        js.prepare(TxnId(1));
        assert_eq!(
            js.txns(),
            vec![(TxnId(1), JournalState::Prepared), (TxnId(2), JournalState::Active)]
        );
    }

    #[test]
    fn concurrent_prepares_from_two_workers_agree() {
        // Two workers race `prepare` for the same transaction (a
        // coordinator retry landing on a second worker thread): both must
        // vote yes and the journal must stay intact.
        let js: Arc<JournalStore<Op>> = Arc::new(JournalStore::new());
        let t = TxnId(10);
        js.stage(t, Op::Write(7)).unwrap();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let js = Arc::clone(&js);
                std::thread::spawn(move || js.prepare(t))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert_eq!(js.state(t), Some(JournalState::Prepared));
        assert_eq!(js.commit(t).unwrap(), vec![Op::Write(7)]);
    }

    #[test]
    fn concurrent_commit_without_prepare_never_destroys_journal() {
        // Two workers race an out-of-order commit: every attempt must be
        // rejected and the journal must survive all of them.
        let js: Arc<JournalStore<Op>> = Arc::new(JournalStore::new());
        let t = TxnId(11);
        js.stage(t, Op::Create).unwrap();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let js = Arc::clone(&js);
                std::thread::spawn(move || js.commit(t))
            })
            .collect();
        for h in handles {
            assert!(matches!(h.join().unwrap(), Err(Error::Internal(_))));
        }
        assert_eq!(js.staged_ops(t), 1);
        js.prepare(t);
        assert_eq!(js.commit(t).unwrap().len(), 1);
    }

    #[test]
    fn abort_racing_commit_resolves_to_exactly_one_winner() {
        // After prepare, one worker commits while another aborts (a
        // confused coordinator). The store must hand the staged ops to
        // exactly one of them — never both, never neither — across many
        // interleavings.
        for round in 0..200u64 {
            let js: Arc<JournalStore<Op>> = Arc::new(JournalStore::new());
            let t = TxnId(round);
            js.stage(t, Op::Write(round)).unwrap();
            js.prepare(t);
            let js_c = Arc::clone(&js);
            let committer = std::thread::spawn(move || js_c.commit(t));
            let js_a = Arc::clone(&js);
            let aborter = std::thread::spawn(move || js_a.abort(t));
            let committed = committer.join().unwrap();
            let aborted = aborter.join().unwrap();
            match committed {
                Ok(ops) => {
                    assert_eq!(ops.len(), 1, "round {round}: commit won");
                    assert!(aborted.is_empty(), "round {round}: abort must see nothing");
                }
                Err(Error::NoSuchTxn(_)) => {
                    assert_eq!(aborted.len(), 1, "round {round}: abort won, owns the ops");
                }
                Err(e) => panic!("round {round}: unexpected commit error {e:?}"),
            }
            assert_eq!(js.active_txns(), 0, "round {round}: journal must be drained");
        }
    }

    #[test]
    fn independent_transactions_do_not_interfere() {
        let js: JournalStore<Op> = JournalStore::new();
        js.stage(TxnId(1), Op::Write(1)).unwrap();
        js.stage(TxnId(2), Op::Write(2)).unwrap();
        js.prepare(TxnId(1));
        let ops1 = js.commit(TxnId(1)).unwrap();
        assert_eq!(ops1, vec![Op::Write(1)]);
        assert_eq!(js.staged_ops(TxnId(2)), 1);
        js.abort(TxnId(2));
        assert_eq!(js.active_txns(), 0);
    }
}
