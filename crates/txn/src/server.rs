//! The transaction-id and lock service.
//!
//! A small service (one of the "client services" of Figure 3 — naming,
//! distribution, synchronization live *outside* the LWFS-core) that:
//!
//! * allocates transaction ids (`TxnBegin`),
//! * serves the lock protocol (`LockAcquire` / `LockRelease`) over a
//!   [`LockTable`], enforcing LOCK capabilities through the standard
//!   verify-through cache when security is configured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lwfs_auth::Clock;
use lwfs_authz::CachedCapVerifier;
use lwfs_portals::{spawn_service, Endpoint, Network, RpcClient, Service, ServiceHandle};
use lwfs_proto::{Error, OpMask, ProcessId, ReplyBody, Request, RequestBody, TxnId};

use crate::locks::LockTable;

/// Security configuration for the lock service: the verify-through cache
/// plus a protocol clock for expiry checks. `None` trusts every
/// structurally valid capability (single-tenant test deployments).
pub struct LockSecurity {
    pub verifier: CachedCapVerifier,
    pub clock: Arc<dyn Clock>,
}

/// The transaction-id + lock service.
pub struct TxnLockServer {
    locks: Arc<LockTable>,
    next_txn: AtomicU64,
    security: Option<LockSecurity>,
}

impl TxnLockServer {
    /// Spawn at `id` on `net`. Returns the handle and the shared lock
    /// table (tests inspect contention counters through it).
    pub fn spawn(
        net: &Network,
        id: ProcessId,
        security: Option<LockSecurity>,
    ) -> (ServiceHandle, Arc<LockTable>) {
        let locks = Arc::new(LockTable::new());
        let svc =
            TxnLockServer { locks: Arc::clone(&locks), next_txn: AtomicU64::new(1), security };
        (spawn_service(net, id, svc), locks)
    }

    fn check_cap(
        &self,
        ep: &Endpoint,
        cap: &lwfs_proto::Capability,
        need: OpMask,
    ) -> Result<(), Error> {
        match &self.security {
            None => {
                if cap.grants(need) {
                    Ok(())
                } else {
                    Err(Error::AccessDenied)
                }
            }
            Some(sec) => {
                let client = RpcClient::new(ep);
                sec.verifier.check(&client, cap, need, sec.clock.now())
            }
        }
    }
}

impl Service for TxnLockServer {
    fn handle(&mut self, ep: &Endpoint, req: &Request) -> ReplyBody {
        match &req.body {
            RequestBody::TxnBegin { cred: _ } => {
                // Transaction ids only need uniqueness within this service
                // instance; the credential is accepted as presented because
                // a transaction id grants nothing by itself.
                let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
                ReplyBody::TxnStarted(id)
            }
            RequestBody::LockAcquire { cap, resource, mode, wait } => {
                if let Err(e) = self.check_cap(ep, cap, OpMask::LOCK) {
                    return ReplyBody::Err(e);
                }
                // `wait` is honoured client-side with a retry loop; the
                // service never blocks its request queue.
                let _ = wait;
                match self.locks.try_acquire(req.reply_to, *resource, *mode) {
                    Ok(id) => ReplyBody::LockGranted(id),
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::LockRelease { cap, lock } => {
                if let Err(e) = self.check_cap(ep, cap, OpMask::LOCK) {
                    return ReplyBody::Err(e);
                }
                match self.locks.release(req.reply_to, *lock) {
                    Ok(()) => ReplyBody::LockReleased,
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::Ping => ReplyBody::Pong,
            other => ReplyBody::Err(Error::Malformed(format!(
                "txn/lock service cannot handle {other:?}"
            ))),
        }
    }
}

/// Client helper: acquire a lock, retrying `WouldBlock` with exponential
/// backoff when `wait` is requested. This is the client-side half of the
/// non-blocking lock protocol.
pub fn acquire_lock_waiting(
    client: &RpcClient<'_>,
    server: ProcessId,
    cap: lwfs_proto::Capability,
    resource: lwfs_proto::LockResource,
    mode: lwfs_proto::LockMode,
    max_attempts: u32,
) -> Result<lwfs_proto::LockId, Error> {
    let mut backoff = std::time::Duration::from_micros(100);
    for _ in 0..max_attempts {
        match client.call(server, RequestBody::LockAcquire { cap, resource, mode, wait: true }) {
            Ok(ReplyBody::LockGranted(id)) => return Ok(id),
            Ok(other) => return Err(Error::Internal(format!("bad lock reply {other:?}"))),
            Err(Error::WouldBlock) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(std::time::Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    Err(Error::WouldBlock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_proto::{
        Capability, CapabilityBody, ContainerId, Lifetime, LockMode, LockResource, ObjId,
        PrincipalId, Signature,
    };

    fn lock_cap() -> Capability {
        Capability {
            body: CapabilityBody {
                container: ContainerId(1),
                ops: OpMask::LOCK,
                principal: PrincipalId(1),
                issuer_epoch: 1,
                lifetime: Lifetime::UNBOUNDED,
                serial: 1,
            },
            sig: Signature([1; 16]),
        }
    }

    #[test]
    fn txn_ids_are_unique() {
        let net = Network::default();
        let (h, _locks) = TxnLockServer::spawn(&net, ProcessId::new(10, 0), None);
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let cred = lwfs_proto::Credential {
            body: lwfs_proto::CredentialBody {
                principal: PrincipalId(1),
                issuer_epoch: 1,
                lifetime: Lifetime::UNBOUNDED,
                serial: 0,
            },
            sig: Signature([0; 16]),
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            match client.call(h.id(), RequestBody::TxnBegin { cred }).unwrap() {
                ReplyBody::TxnStarted(t) => assert!(seen.insert(t)),
                other => panic!("unexpected {other:?}"),
            }
        }
        h.shutdown();
    }

    #[test]
    fn lock_protocol_over_rpc() {
        let net = Network::default();
        let (h, locks) = TxnLockServer::spawn(&net, ProcessId::new(10, 0), None);
        let ep1 = net.register(ProcessId::new(1, 0));
        let ep2 = net.register(ProcessId::new(2, 0));
        let c1 = RpcClient::new(&ep1);
        let c2 = RpcClient::new(&ep2);
        let res = LockResource::range(ContainerId(1), ObjId(1), 0, 100);

        let id = match c1
            .call(
                h.id(),
                RequestBody::LockAcquire {
                    cap: lock_cap(),
                    resource: res,
                    mode: LockMode::Exclusive,
                    wait: false,
                },
            )
            .unwrap()
        {
            ReplyBody::LockGranted(id) => id,
            other => panic!("unexpected {other:?}"),
        };

        // The other client is refused.
        assert_eq!(
            c2.call(
                h.id(),
                RequestBody::LockAcquire {
                    cap: lock_cap(),
                    resource: res,
                    mode: LockMode::Shared,
                    wait: false,
                },
            )
            .unwrap_err(),
            Error::WouldBlock
        );

        // Releasing with the wrong owner fails, right owner succeeds.
        assert_eq!(
            c2.call(h.id(), RequestBody::LockRelease { cap: lock_cap(), lock: id }).unwrap_err(),
            Error::AccessDenied
        );
        assert_eq!(
            c1.call(h.id(), RequestBody::LockRelease { cap: lock_cap(), lock: id }).unwrap(),
            ReplyBody::LockReleased
        );
        assert_eq!(locks.held_count(), 0);
        h.shutdown();
    }

    #[test]
    fn waiting_client_eventually_acquires() {
        let net = Network::default();
        let (h, _locks) = TxnLockServer::spawn(&net, ProcessId::new(10, 0), None);
        let server = h.id();
        let res = LockResource::range(ContainerId(1), ObjId(1), 0, 100);

        let ep1 = net.register(ProcessId::new(1, 0));
        let c1 = RpcClient::new(&ep1);
        let id =
            acquire_lock_waiting(&c1, server, lock_cap(), res, LockMode::Exclusive, 5).unwrap();

        let net2 = net.clone();
        let waiter = std::thread::spawn(move || {
            let ep2 = net2.register(ProcessId::new(2, 0));
            let c2 = RpcClient::new(&ep2);
            acquire_lock_waiting(&c2, server, lock_cap(), res, LockMode::Exclusive, 1000)
        });

        std::thread::sleep(std::time::Duration::from_millis(20));
        c1.call(server, RequestBody::LockRelease { cap: lock_cap(), lock: id }).unwrap();
        assert!(waiter.join().unwrap().is_ok());
        h.shutdown();
    }

    #[test]
    fn cap_without_lock_op_is_denied() {
        let net = Network::default();
        let (h, _locks) = TxnLockServer::spawn(&net, ProcessId::new(10, 0), None);
        let ep = net.register(ProcessId::new(1, 0));
        let client = RpcClient::new(&ep);
        let mut cap = lock_cap();
        cap.body.ops = OpMask::READ;
        let err = client
            .call(
                h.id(),
                RequestBody::LockAcquire {
                    cap,
                    resource: LockResource::whole_object(ContainerId(1), ObjId(1)),
                    mode: LockMode::Shared,
                    wait: false,
                },
            )
            .unwrap_err();
        assert_eq!(err, Error::AccessDenied);
        h.shutdown();
    }
}
