//! Shared/exclusive byte-range locks.
//!
//! The LWFS-core does not impose locking on anyone — the checkpoint case
//! study never takes a lock, which is precisely its performance story. The
//! lock service exists for layered file systems that *choose* POSIX-style
//! consistency (Figure 2, "Traditional PFS: striping, file locks, POSIX
//! consistency"): our Lustre-like baseline uses this table for shared-file
//! extent locks.
//!
//! Grant rules: any number of `Shared` locks may overlap; an `Exclusive`
//! lock conflicts with every overlapping lock held by another owner.
//! Acquisition is non-blocking ([`Error::WouldBlock`] on conflict); waiting
//! is the caller's retry loop, which keeps the single-threaded service
//! handler non-blocking. Re-acquisition by the same owner is permitted.

use std::collections::HashMap;

use lwfs_proto::{Error, LockId, LockMode, LockResource, ProcessId, Result};
use parking_lot::Mutex;

/// A granted lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGrant {
    pub id: LockId,
    pub owner: ProcessId,
    pub resource: LockResource,
    pub mode: LockMode,
}

#[derive(Debug, Default)]
struct TableState {
    held: HashMap<LockId, LockGrant>,
    next_id: u64,
    /// Counters for contention reporting.
    granted: u64,
    refused: u64,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    state: Mutex<TableState>,
}

impl LockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire a lock; `Err(WouldBlock)` on conflict.
    pub fn try_acquire(
        &self,
        owner: ProcessId,
        resource: LockResource,
        mode: LockMode,
    ) -> Result<LockId> {
        let mut st = self.state.lock();
        let conflict = st.held.values().any(|g| {
            g.owner != owner
                && g.resource.overlaps(&resource)
                && (mode == LockMode::Exclusive || g.mode == LockMode::Exclusive)
        });
        if conflict {
            st.refused += 1;
            return Err(Error::WouldBlock);
        }
        let id = LockId(st.next_id);
        st.next_id += 1;
        st.held.insert(id, LockGrant { id, owner, resource, mode });
        st.granted += 1;
        Ok(id)
    }

    /// Release a lock; only the owner may release it.
    pub fn release(&self, owner: ProcessId, id: LockId) -> Result<()> {
        let mut st = self.state.lock();
        match st.held.get(&id) {
            None => Err(Error::Internal(format!("release of unknown lock {id:?}"))),
            Some(g) if g.owner != owner => Err(Error::AccessDenied),
            Some(_) => {
                st.held.remove(&id);
                Ok(())
            }
        }
    }

    /// Drop every lock held by `owner` (client exit / credential
    /// revocation cleanup). Returns how many were released.
    pub fn release_all(&self, owner: ProcessId) -> usize {
        let mut st = self.state.lock();
        let before = st.held.len();
        st.held.retain(|_, g| g.owner != owner);
        before - st.held.len()
    }

    pub fn held_count(&self) -> usize {
        self.state.lock().held.len()
    }

    /// (granted, refused) counters — refusals measure lock contention, the
    /// mechanism behind the shared-file slowdown in Figure 9.
    pub fn contention(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.granted, st.refused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_proto::{ContainerId, ObjId};

    const P1: ProcessId = ProcessId::new(1, 0);
    const P2: ProcessId = ProcessId::new(2, 0);

    fn res(start: u64, end: u64) -> LockResource {
        LockResource::range(ContainerId(1), ObjId(1), start, end)
    }

    #[test]
    fn shared_locks_coexist() {
        let t = LockTable::new();
        t.try_acquire(P1, res(0, 100), LockMode::Shared).unwrap();
        t.try_acquire(P2, res(50, 150), LockMode::Shared).unwrap();
        assert_eq!(t.held_count(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_overlap() {
        let t = LockTable::new();
        t.try_acquire(P1, res(0, 100), LockMode::Exclusive).unwrap();
        assert_eq!(
            t.try_acquire(P2, res(50, 150), LockMode::Exclusive).unwrap_err(),
            Error::WouldBlock
        );
        assert_eq!(
            t.try_acquire(P2, res(50, 150), LockMode::Shared).unwrap_err(),
            Error::WouldBlock
        );
        let (granted, refused) = t.contention();
        assert_eq!((granted, refused), (1, 2));
    }

    #[test]
    fn disjoint_exclusive_ranges_coexist() {
        // The checkpoint story: non-overlapping writes need no waiting.
        let t = LockTable::new();
        t.try_acquire(P1, res(0, 100), LockMode::Exclusive).unwrap();
        t.try_acquire(P2, res(100, 200), LockMode::Exclusive).unwrap();
        assert_eq!(t.held_count(), 2);
    }

    #[test]
    fn different_objects_never_conflict() {
        let t = LockTable::new();
        let a = LockResource::whole_object(ContainerId(1), ObjId(1));
        let b = LockResource::whole_object(ContainerId(1), ObjId(2));
        t.try_acquire(P1, a, LockMode::Exclusive).unwrap();
        t.try_acquire(P2, b, LockMode::Exclusive).unwrap();
    }

    #[test]
    fn same_owner_may_overlap_itself() {
        let t = LockTable::new();
        t.try_acquire(P1, res(0, 100), LockMode::Exclusive).unwrap();
        t.try_acquire(P1, res(0, 100), LockMode::Exclusive).unwrap();
        assert_eq!(t.held_count(), 2);
    }

    #[test]
    fn release_frees_the_range() {
        let t = LockTable::new();
        let id = t.try_acquire(P1, res(0, 100), LockMode::Exclusive).unwrap();
        assert!(t.try_acquire(P2, res(0, 100), LockMode::Exclusive).is_err());
        t.release(P1, id).unwrap();
        t.try_acquire(P2, res(0, 100), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn only_owner_may_release() {
        let t = LockTable::new();
        let id = t.try_acquire(P1, res(0, 100), LockMode::Shared).unwrap();
        assert_eq!(t.release(P2, id).unwrap_err(), Error::AccessDenied);
        assert_eq!(t.held_count(), 1);
    }

    #[test]
    fn release_unknown_lock_errors() {
        let t = LockTable::new();
        assert!(t.release(P1, LockId(42)).is_err());
    }

    #[test]
    fn release_all_cleans_owner() {
        let t = LockTable::new();
        t.try_acquire(P1, res(0, 10), LockMode::Shared).unwrap();
        t.try_acquire(P1, res(20, 30), LockMode::Shared).unwrap();
        t.try_acquire(P2, res(40, 50), LockMode::Shared).unwrap();
        assert_eq!(t.release_all(P1), 2);
        assert_eq!(t.held_count(), 1);
    }

    #[test]
    fn whole_object_lock_blocks_every_range() {
        let t = LockTable::new();
        let whole = LockResource::whole_object(ContainerId(1), ObjId(1));
        t.try_acquire(P1, whole, LockMode::Exclusive).unwrap();
        assert!(t.try_acquire(P2, res(u64::MAX - 10, u64::MAX), LockMode::Shared).is_err());
    }

    proptest::proptest! {
        /// Safety invariant: at no point do two different owners hold
        /// overlapping locks where either is exclusive.
        #[test]
        fn prop_no_conflicting_grants(
            ops in proptest::collection::vec(
                (0u32..3, 0u64..200, 1u64..100, proptest::bool::ANY), 1..60)
        ) {
            let t = LockTable::new();
            let mut grants: Vec<LockGrant> = Vec::new();
            for (owner, start, len, exclusive) in ops {
                let owner = ProcessId::new(owner, 0);
                let r = res(start, start + len);
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                if let Ok(id) = t.try_acquire(owner, r, mode) {
                    grants.push(LockGrant { id, owner, resource: r, mode });
                }
            }
            for (i, a) in grants.iter().enumerate() {
                for b in &grants[i + 1..] {
                    if a.owner != b.owner && a.resource.overlaps(&b.resource) {
                        proptest::prop_assert!(
                            a.mode == LockMode::Shared && b.mode == LockMode::Shared,
                            "conflicting grant: {a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }
}
