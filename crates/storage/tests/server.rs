//! Integration tests for the storage server: the full Figure 6 data path,
//! transaction participation, and enforcement with a live authorization
//! service.

use std::sync::Arc;
use std::time::Duration;

use lwfs_auth::{AuthConfig, AuthService, ManualClock, MockKerberos};
use lwfs_authz::{AuthzConfig, AuthzServer, AuthzService, CachedCapVerifier, CredVerifier};
use lwfs_portals::{
    reply_match, Event, MdOptions, MemDesc, Network, RpcClient, BULK_SPACE, REQUEST_MATCH,
};
use lwfs_proto::{
    Capability, CapabilityBody, ContainerId, Decode as _, Encode as _, Error, Lifetime, MdHandle,
    ObjId, OpMask, OpNum, PrincipalId, ProcessId, Reply, ReplyBody, Request, RequestBody,
    Signature, TxnId,
};
use lwfs_storage::{StorageConfig, StorageServer};

fn open_cap(container: ContainerId, ops: OpMask) -> Capability {
    Capability {
        body: CapabilityBody {
            container,
            ops,
            principal: PrincipalId(1),
            issuer_epoch: 1,
            lifetime: Lifetime::UNBOUNDED,
            serial: 1,
        },
        sig: Signature([7; 16]),
    }
}

/// Boot a storage server with no verifier (structural trust).
fn boot_open() -> (Network, lwfs_storage::server::StorageHandle, Arc<StorageServer>) {
    let net = Network::default();
    let clock = Arc::new(ManualClock::new());
    let (handle, server) =
        StorageServer::spawn(&net, ProcessId::new(50, 0), StorageConfig::default(), None, clock);
    (net, handle, server)
}

fn create_obj(client: &RpcClient<'_>, srv: ProcessId, cap: Capability) -> ObjId {
    match client.call(srv, RequestBody::CreateObj { txn: None, cap, obj: None }).unwrap() {
        ReplyBody::ObjCreated(oid) => oid,
        other => panic!("unexpected {other:?}"),
    }
}

/// Client-side write: post an MD with the payload, send the small request,
/// let the server pull.
#[allow(clippy::too_many_arguments)]
fn write_obj(
    client: &RpcClient<'_>,
    ep: &lwfs_portals::Endpoint,
    srv: ProcessId,
    cap: Capability,
    obj: ObjId,
    offset: u64,
    payload: &[u8],
    txn: Option<TxnId>,
) -> Result<u64, Error> {
    let mb = ep.match_bits().alloc(BULK_SPACE);
    ep.post_md(mb, MemDesc::from_vec(payload.to_vec(), MdOptions::for_remote_get())).unwrap();
    let r = client.call_retrying(
        srv,
        RequestBody::Write {
            txn,
            cap,
            obj,
            offset,
            len: payload.len() as u64,
            md: MdHandle { match_bits: mb },
        },
    );
    ep.unlink_md(mb);
    match r? {
        ReplyBody::WriteDone { len } => Ok(len),
        other => panic!("unexpected {other:?}"),
    }
}

/// Client-side read: post a writable MD, server pushes into it.
fn read_obj(
    client: &RpcClient<'_>,
    ep: &lwfs_portals::Endpoint,
    srv: ProcessId,
    cap: Capability,
    obj: ObjId,
    offset: u64,
    len: usize,
) -> Result<Vec<u8>, Error> {
    let mb = ep.match_bits().alloc(BULK_SPACE);
    ep.post_md(mb, MemDesc::zeroed(len, MdOptions::for_remote_put())).unwrap();
    let r = client.call_retrying(
        srv,
        RequestBody::Read { cap, obj, offset, len: len as u64, md: MdHandle { match_bits: mb } },
    );
    let md = ep.unlink_md(mb).unwrap();
    match r? {
        ReplyBody::ReadDone { len } => {
            let mut data = md.snapshot();
            data.truncate(len as usize);
            Ok(data)
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn write_then_read_roundtrip_server_directed() {
    let (net, handle, server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);

    let oid = create_obj(&client, handle.id(), cap);
    // Payload larger than one chunk to exercise the chunk loop.
    let payload: Vec<u8> = (0..600 * 1024).map(|i| (i % 251) as u8).collect();
    let n = write_obj(&client, &ep, handle.id(), cap, oid, 0, &payload, None).unwrap();
    assert_eq!(n, payload.len() as u64);

    let back = read_obj(&client, &ep, handle.id(), cap, oid, 0, payload.len()).unwrap();
    assert_eq!(back, payload);

    // Data moved one-sidedly: the server performed gets (pull) and puts
    // (push), not inline request payloads.
    assert!(net.stats().gets.load(std::sync::atomic::Ordering::Relaxed) >= 3);
    assert!(net.stats().puts.load(std::sync::atomic::Ordering::Relaxed) >= 3);
    assert_eq!(
        server.stats().bytes_pulled.load(std::sync::atomic::Ordering::Relaxed),
        payload.len() as u64
    );
    handle.shutdown();
}

#[test]
fn partial_read_and_offset_write() {
    let (net, handle, _server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);

    let oid = create_obj(&client, handle.id(), cap);
    write_obj(&client, &ep, handle.id(), cap, oid, 10, b"offset-write", None).unwrap();
    let back = read_obj(&client, &ep, handle.id(), cap, oid, 0, 64).unwrap();
    assert_eq!(back.len(), 22, "short read stops at object end");
    assert_eq!(&back[10..], b"offset-write");
    assert!(back[..10].iter().all(|b| *b == 0), "gap zero-filled");
    handle.shutdown();
}

#[test]
fn getattr_sync_list() {
    let (net, handle, _server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);

    let a = create_obj(&client, handle.id(), cap);
    let b = create_obj(&client, handle.id(), cap);
    write_obj(&client, &ep, handle.id(), cap, a, 0, &[9u8; 1000], None).unwrap();

    match client.call(handle.id(), RequestBody::GetAttr { cap, obj: a }).unwrap() {
        ReplyBody::Attr(attr) => assert_eq!(attr.size, 1000),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        client.call(handle.id(), RequestBody::Sync { cap, obj: Some(a) }).unwrap(),
        ReplyBody::Synced
    );
    match client.call(handle.id(), RequestBody::ListObjs { cap }).unwrap() {
        ReplyBody::Objs(objs) => assert_eq!(objs, vec![a, b]),
        other => panic!("unexpected {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn cap_without_needed_op_is_denied() {
    let (net, handle, _server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let read_only = open_cap(ContainerId(1), OpMask::READ);

    let err =
        client.call(handle.id(), RequestBody::CreateObj { txn: None, cap: read_only, obj: None });
    assert_eq!(err.unwrap_err(), Error::AccessDenied);
    handle.shutdown();
}

#[test]
fn container_scoping_blocks_cross_container_access() {
    let (net, handle, _server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap1 = open_cap(ContainerId(1), OpMask::ALL);
    let cap2 = open_cap(ContainerId(2), OpMask::ALL);

    let oid = create_obj(&client, handle.id(), cap1);
    write_obj(&client, &ep, handle.id(), cap1, oid, 0, b"mine", None).unwrap();
    // A capability for a different container cannot read the object.
    let err = read_obj(&client, &ep, handle.id(), cap2, oid, 0, 4).unwrap_err();
    assert_eq!(err, Error::AccessDenied);
    let err = write_obj(&client, &ep, handle.id(), cap2, oid, 0, b"nope", None).unwrap_err();
    assert_eq!(err, Error::AccessDenied);
    handle.shutdown();
}

#[test]
fn txn_abort_rolls_back_create_and_writes() {
    let (net, handle, server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let txn = TxnId(42);

    // Pre-existing object with committed contents.
    let base = create_obj(&client, handle.id(), cap);
    write_obj(&client, &ep, handle.id(), cap, base, 0, b"stable", None).unwrap();

    // Transactional: new object + overwrite of the existing one.
    let fresh = match client
        .call(handle.id(), RequestBody::CreateObj { txn: Some(txn), cap, obj: None })
        .unwrap()
    {
        ReplyBody::ObjCreated(oid) => oid,
        other => panic!("unexpected {other:?}"),
    };
    write_obj(&client, &ep, handle.id(), cap, fresh, 0, b"doomed", Some(txn)).unwrap();
    write_obj(&client, &ep, handle.id(), cap, base, 0, b"mutate", Some(txn)).unwrap();

    assert_eq!(
        client.call(handle.id(), RequestBody::TxnAbort { txn }).unwrap(),
        ReplyBody::TxnAborted
    );

    // The fresh object is gone; the base object reads back unchanged.
    let err = read_obj(&client, &ep, handle.id(), cap, fresh, 0, 6).unwrap_err();
    assert_eq!(err, Error::NoSuchObject(fresh));
    let back = read_obj(&client, &ep, handle.id(), cap, base, 0, 6).unwrap();
    assert_eq!(back, b"stable");
    assert_eq!(server.stats().txn_aborts.load(std::sync::atomic::Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn txn_prepare_commit_makes_effects_permanent() {
    let (net, handle, server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let txn = TxnId(7);

    let oid = match client
        .call(handle.id(), RequestBody::CreateObj { txn: Some(txn), cap, obj: None })
        .unwrap()
    {
        ReplyBody::ObjCreated(oid) => oid,
        other => panic!("unexpected {other:?}"),
    };
    write_obj(&client, &ep, handle.id(), cap, oid, 0, b"durable", Some(txn)).unwrap();

    assert_eq!(
        client.call(handle.id(), RequestBody::TxnPrepare { txn }).unwrap(),
        ReplyBody::TxnVote(true)
    );
    assert_eq!(
        client.call(handle.id(), RequestBody::TxnCommit { txn }).unwrap(),
        ReplyBody::TxnCommitted
    );
    let back = read_obj(&client, &ep, handle.id(), cap, oid, 0, 7).unwrap();
    assert_eq!(back, b"durable");
    assert_eq!(server.stats().txn_commits.load(std::sync::atomic::Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn commit_without_prepare_is_rejected() {
    let (net, handle, _server) = boot_open();
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let txn = TxnId(8);
    client.call(handle.id(), RequestBody::CreateObj { txn: Some(txn), cap, obj: None }).unwrap();
    assert!(matches!(
        client.call(handle.id(), RequestBody::TxnCommit { txn }).unwrap_err(),
        Error::Internal(_)
    ));
    handle.shutdown();
}

/// Full security stack: auth + authz + storage, with verify-through
/// caching and revocation — the complete Figure 4-b protocol.
#[test]
fn enforcement_with_live_authorization_service() {
    let net = Network::default();
    let clock = Arc::new(ManualClock::new());
    let kdc = Arc::new(MockKerberos::new("TEST", 3));
    kdc.add_user("alice", "pw", PrincipalId(1));
    let auth = Arc::new(AuthService::new(
        AuthConfig::default(),
        kdc.clone() as Arc<dyn lwfs_auth::AuthMechanism>,
        clock.clone(),
    ));
    let alice = auth.get_cred(&kdc.kinit("alice", "pw").unwrap()).unwrap();
    let authz = AuthzService::new(
        AuthzConfig::default(),
        Arc::new(auth) as Arc<dyn CredVerifier>,
        clock.clone(),
    );
    let (authz_handle, authz_svc) = AuthzServer::spawn(&net, ProcessId::new(101, 0), authz);

    let storage_id = ProcessId::new(50, 0);
    let verifier = CachedCapVerifier::new(storage_id, authz_handle.id());
    let (storage_handle, server) = StorageServer::spawn(
        &net,
        storage_id,
        StorageConfig::default(),
        Some(verifier),
        clock.clone(),
    );

    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);

    // Genuine capabilities work.
    let cid = authz_svc.create_container(&alice).unwrap();
    let caps = authz_svc.get_caps(&alice, cid, OpMask::CREATE | OpMask::WRITE).unwrap();
    let create_cap = caps.iter().find(|c| c.grants(OpMask::CREATE)).copied().unwrap();
    let write_cap = caps.iter().find(|c| c.grants(OpMask::WRITE)).copied().unwrap();

    let oid = create_obj(&client, storage_id, create_cap);
    write_obj(&client, &ep, storage_id, write_cap, oid, 0, b"secured", None).unwrap();

    // Forged capability rejected even though structurally plausible.
    let forged = open_cap(cid, OpMask::WRITE);
    let err = write_obj(&client, &ep, storage_id, forged, oid, 0, b"forged", None).unwrap_err();
    assert_eq!(err, Error::BadCapability);

    // Cache works: repeated writes do one VerifyCaps total.
    for i in 0..10u64 {
        write_obj(&client, &ep, storage_id, write_cap, oid, i * 8, b"cached!!", None).unwrap();
    }
    let cache = server.cap_cache_stats().unwrap();
    // Exactly three misses so far: the create cap, the write cap's first
    // use, and the forged capability (which verified negative and was not
    // cached). All ten repeat writes must be hits.
    assert_eq!(cache.misses, 3, "one verify-through per distinct capability");
    assert!(cache.hits >= 10);

    // Revocation: chmod away write; the cached verdict is invalidated and
    // the next write fails.
    let admin = authz_svc.get_caps(&alice, cid, OpMask::ADMIN).unwrap()[0];
    let rep = client
        .call(
            authz_handle.id(),
            RequestBody::ModPolicy {
                cap: admin,
                container: cid,
                principal: PrincipalId(1),
                grant: OpMask::NONE,
                revoke: OpMask::WRITE,
            },
        )
        .unwrap();
    assert!(matches!(rep, ReplyBody::PolicyChanged { .. }));
    // Give the invalidation a moment to land (authz pushes synchronously
    // inside ModPolicy handling, so it has already happened; this is just
    // paranoia against scheduler jitter).
    std::thread::sleep(Duration::from_millis(10));
    let err = write_obj(&client, &ep, storage_id, write_cap, oid, 0, b"revoked", None).unwrap_err();
    assert!(
        err == Error::BadCapability || err == Error::CapabilityRevoked,
        "expected security refusal, got {err:?}"
    );

    storage_handle.shutdown();
    authz_handle.shutdown();
}

// ----------------------------------------------------------------------
// Worker-pool concurrency
// ----------------------------------------------------------------------

/// Boot a storage server with an explicit worker count (no verifier).
fn boot_workers(
    workers: usize,
) -> (Network, lwfs_storage::server::StorageHandle, Arc<StorageServer>) {
    let net = Network::default();
    let clock = Arc::new(ManualClock::new());
    let config = StorageConfig { workers, pool_buffers: 16, ..StorageConfig::default() };
    let (handle, server) = StorageServer::spawn(&net, ProcessId::new(50, 0), config, None, clock);
    (net, handle, server)
}

/// Fire a write request *without* waiting for the reply — several of these
/// back-to-back put genuinely concurrent requests in front of the worker
/// pool. Returns the MD's match bits for the later unlink.
fn send_write_pipelined(
    ep: &lwfs_portals::Endpoint,
    srv: ProcessId,
    opnum: u64,
    cap: Capability,
    obj: ObjId,
    offset: u64,
    payload: &[u8],
) -> u64 {
    let mb = ep.match_bits().alloc(BULK_SPACE);
    ep.post_md(mb, MemDesc::from_vec(payload.to_vec(), MdOptions::for_remote_get())).unwrap();
    let req = Request::new(
        OpNum(opnum),
        ep.id(),
        RequestBody::Write {
            txn: None,
            cap,
            obj,
            offset,
            len: payload.len() as u64,
            md: MdHandle { match_bits: mb },
        },
    );
    ep.send(srv, REQUEST_MATCH, req.to_bytes()).unwrap();
    mb
}

/// Collect the reply for a pipelined write sent with `opnum`.
fn await_write_done(ep: &lwfs_portals::Endpoint, opnum: u64) -> u64 {
    let want = reply_match(opnum);
    let ev = ep
        .recv_match(
            Duration::from_secs(5),
            |e| matches!(e, Event::Message { match_bits, .. } if *match_bits == want),
        )
        .unwrap();
    let reply = Reply::from_bytes(ev.message_data().unwrap().clone()).unwrap();
    match reply.into_result().unwrap() {
        ReplyBody::WriteDone { len } => len,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn pipelined_overlapping_writes_execute_in_arrival_order() {
    // Three whole-object writes in flight at once against a 4-worker pool:
    // they overlap, so the conflict tracker must run them in arrival
    // order, and the last arrival's bytes must win — every round. Payloads
    // span two chunks, so out-of-order or interleaved execution would
    // leave a visible mix of fill bytes.
    let (net, handle, server) = boot_workers(4);
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let oid = create_obj(&client, handle.id(), cap);

    let size = 300 * 1024;
    for round in 0..6u64 {
        let base = 10_000 + round * 3;
        let mbs: Vec<u64> = (0..3u64)
            .map(|k| {
                let payload = vec![(base + k) as u8; size];
                send_write_pipelined(&ep, handle.id(), base + k, cap, oid, 0, &payload)
            })
            .collect();
        for k in 0..3u64 {
            assert_eq!(await_write_done(&ep, base + k), size as u64);
        }
        for mb in mbs {
            ep.unlink_md(mb);
        }
        let back = read_obj(&client, &ep, handle.id(), cap, oid, 0, size).unwrap();
        let want = (base + 2) as u8;
        assert!(
            back.iter().all(|b| *b == want),
            "round {round}: last arrival must win (got mix, expected {want})"
        );
    }
    assert_eq!(server.stats().writes.get(), 18);
}

#[test]
fn disjoint_objects_overlap_without_conflict_deferrals() {
    // Four client threads, each hammering its own object: with per-object
    // store locking and range-based conflict tracking, nothing ever
    // defers, and every byte lands where a serial run would put it.
    let (net, handle, server) = boot_workers(4);
    let srv = handle.id();
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let setup_ep = net.register(ProcessId::new(0, 0));
    let setup = RpcClient::new(&setup_ep);
    let oids: Vec<ObjId> = (0..4).map(|_| create_obj(&setup, srv, cap)).collect();

    const STRIDE: usize = 8 * 1024;
    std::thread::scope(|s| {
        for (t, oid) in oids.iter().enumerate() {
            let net = &net;
            let oid = *oid;
            s.spawn(move || {
                let ep = net.register(ProcessId::new(10 + t as u32, 0));
                let client = RpcClient::new(&ep);
                for i in 0..20u64 {
                    let payload = vec![(t as u8) ^ (i as u8); STRIDE];
                    let n =
                        write_obj(&client, &ep, srv, cap, oid, i * STRIDE as u64, &payload, None)
                            .unwrap();
                    assert_eq!(n, STRIDE as u64);
                }
            });
        }
    });

    let ep = net.register(ProcessId::new(90, 0));
    let client = RpcClient::new(&ep);
    for (t, oid) in oids.iter().enumerate() {
        let back = read_obj(&client, &ep, srv, cap, *oid, 0, 20 * STRIDE).unwrap();
        assert_eq!(back.len(), 20 * STRIDE);
        for i in 0..20usize {
            assert!(
                back[i * STRIDE..(i + 1) * STRIDE].iter().all(|b| *b == (t as u8) ^ (i as u8)),
                "object {t} stripe {i} corrupted"
            );
        }
    }
    assert_eq!(server.stats().writes.get(), 80);
    assert_eq!(
        server.stats().conflict_defers.get(),
        0,
        "disjoint objects must never wait on each other"
    );
}

#[test]
fn single_worker_reproduces_serial_semantics() {
    // `workers = 1` is the paper-faithful serial loop: two racing clients
    // writing the same multi-chunk range can never tear, and nothing can
    // ever defer (each request completes before the next is popped).
    let (net, handle, server) = boot_workers(1);
    let srv = handle.id();
    let cap = open_cap(ContainerId(1), OpMask::ALL);
    let setup_ep = net.register(ProcessId::new(0, 0));
    let setup = RpcClient::new(&setup_ep);
    let oid = create_obj(&setup, srv, cap);

    let size = 300 * 1024;
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let net = &net;
            s.spawn(move || {
                let ep = net.register(ProcessId::new(10 + t, 0));
                let client = RpcClient::new(&ep);
                for i in 0..8u32 {
                    let payload = vec![(t * 16 + i) as u8; size];
                    write_obj(&client, &ep, srv, cap, oid, 0, &payload, None).unwrap();
                }
            });
        }
    });

    let ep = net.register(ProcessId::new(90, 0));
    let client = RpcClient::new(&ep);
    let back = read_obj(&client, &ep, srv, cap, oid, 0, size).unwrap();
    let first = back[0];
    assert!(back.iter().all(|b| *b == first), "serial loop must never tear a write");
    assert_eq!(server.stats().writes.get(), 16);
    assert_eq!(server.stats().conflict_defers.get(), 0, "one worker never defers");
}
