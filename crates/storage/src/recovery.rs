//! Crash recovery: rebuild a storage server's state from its write-ahead
//! log.
//!
//! The log is **redo-only** — it records the forward effect of every
//! acknowledged mutation, tagged with the transaction (if any) that staged
//! it. Replay applies the records in append order to a fresh
//! [`ObjectStore`] and reconstructs each open transaction's *undo* journal
//! as it goes: [`ObjectStore::write`] returns the preimage of the region
//! it overwrites, so the undo entries a replayed transaction would need
//! are recomputed exactly as the live server computed them. Because
//! dependent requests were ordered by the conflict tracker before their
//! records reached the log (and transaction control records are barriers),
//! in-order replay reproduces the live byte history.
//!
//! Transaction outcomes fall out of the record stream:
//!
//! * `TxnCommit` in the log → the staged effects are permanent; the
//!   reconstructed undo journal is dropped.
//! * `TxnAbort` in the log → the live server rolled the effects back
//!   *without logging the undo applications* (they are derived state);
//!   replay performs the same rollback from its reconstructed journal.
//!   Nothing is ever double-applied because the undos exist only here.
//! * `Active` at end of log → the crash hit before phase 1 completed:
//!   presumed abort. Rolled back and discarded.
//! * `Prepared` at end of log → the participant voted yes and must not
//!   decide unilaterally: the journal is restored **in doubt** and the
//!   coordinator's `TxnCommit`/`TxnAbort` (possibly via
//!   `Coordinator::resolve`) finishes the job.

use lwfs_proto::{Error, Result};
use lwfs_txn::{JournalState, JournalStore};
use lwfs_wal::WalRecord;

use crate::server::UndoOp;
use crate::store::ObjectStore;

/// What a replay pass did, for recovery observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Records applied.
    pub records: u64,
    /// Transactions still `Active` at end of log, rolled back (presumed
    /// abort).
    pub rolled_back: usize,
    /// Transactions restored in the `Prepared` state, awaiting the
    /// coordinator's verdict.
    pub in_doubt: usize,
}

/// Apply `records` (in log order) to empty `store`/`journal` state.
///
/// `now` stamps object metadata recreated by undo of a transactional
/// remove (every other timestamp comes from the records themselves).
pub(crate) fn replay(
    records: &[WalRecord],
    store: &ObjectStore,
    journal: &JournalStore<UndoOp>,
    now: u64,
) -> Result<RecoveryOutcome> {
    apply_records(records, store, journal, now)?;

    // End of log: transactions never prepared are presumed aborted; the
    // prepared ones are exactly the in-doubt set.
    let mut outcome = RecoveryOutcome { records: records.len() as u64, ..Default::default() };
    for (txn, state) in journal.txns() {
        match state {
            JournalState::Active => {
                for undo in journal.abort(txn).into_iter().rev() {
                    apply_undo(store, undo, now);
                }
                outcome.rolled_back += 1;
            }
            JournalState::Prepared => outcome.in_doubt += 1,
        }
    }
    Ok(outcome)
}

/// Apply `records` to live state *without* the end-of-log presumed-abort
/// pass.
///
/// This is the record-application half of [`replay`], split out because a
/// replication backup feeds shipped records through it continuously: the
/// backup's log has no "end" while the primary is alive, so transactions
/// that are merely still open must not be rolled back. Only a genuine
/// restart ([`replay`]) may presume abort. Keeping both paths on this one
/// function is the point of log-shipping replication — replicated state
/// and crash-recovered state are produced by the same code.
pub(crate) fn apply_records(
    records: &[WalRecord],
    store: &ObjectStore,
    journal: &JournalStore<UndoOp>,
    now: u64,
) -> Result<()> {
    for rec in records {
        match rec {
            WalRecord::Create { txn, container, obj, now } => {
                store.create(*container, Some(*obj), *now)?;
                if let Some(t) = txn {
                    journal.stage(*t, UndoOp::RemoveObject(*container, *obj))?;
                }
            }
            WalRecord::Write { txn, container, obj, offset, data, now } => {
                let pre = store.write(*container, *obj, *offset, data, *now)?;
                if let Some(t) = txn {
                    journal.stage(*t, UndoOp::UndoWrite(*obj, pre))?;
                }
            }
            WalRecord::Remove { txn, container, obj } => {
                if let Some(t) = txn {
                    let data = store.read(*container, *obj, 0, u64::MAX)?;
                    journal.stage(*t, UndoOp::RestoreObject(*container, *obj, data))?;
                }
                store.remove(*container, *obj)?;
            }
            WalRecord::TxnPrepare { txn } => {
                journal.prepare(*txn);
            }
            WalRecord::TxnCommit { txn } => {
                // Effects were applied in order as we replayed; commit just
                // forgets the undo journal. The record always follows its
                // prepare (the live server logs prepare before voting), so
                // a failure here means the log itself is inconsistent.
                journal.commit(*txn).map_err(|e| {
                    Error::Internal(format!("wal replay: commit record for {txn} invalid: {e}"))
                })?;
            }
            WalRecord::TxnAbort { txn } => {
                let undos = journal.abort(*txn);
                for undo in undos.into_iter().rev() {
                    apply_undo(store, undo, now);
                }
            }
        }
    }
    Ok(())
}

/// Mirror of the live server's best-effort undo application.
fn apply_undo(store: &ObjectStore, undo: UndoOp, now: u64) {
    let _ = match undo {
        UndoOp::RemoveObject(container, oid) => store.remove(container, oid),
        UndoOp::UndoWrite(oid, pre) => store.undo_write(oid, &pre),
        UndoOp::RestoreObject(container, oid, data) => store
            .create(container, Some(oid), now)
            .and_then(|_| store.write(container, oid, 0, &data, now).map(|_| ())),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use bytes::Bytes;
    use lwfs_proto::{ContainerId, ObjId, TxnId};

    const C: ContainerId = ContainerId(1);

    fn fresh() -> (ObjectStore, JournalStore<UndoOp>) {
        (ObjectStore::new(StoreConfig::default()), JournalStore::new())
    }

    fn create(txn: Option<u64>, obj: u64) -> WalRecord {
        WalRecord::Create { txn: txn.map(TxnId), container: C, obj: ObjId(obj), now: 5 }
    }

    fn write(txn: Option<u64>, obj: u64, offset: u64, data: &[u8]) -> WalRecord {
        WalRecord::Write {
            txn: txn.map(TxnId),
            container: C,
            obj: ObjId(obj),
            offset,
            data: Bytes::copy_from_slice(data),
            now: 6,
        }
    }

    #[test]
    fn non_transactional_history_replays_exactly() {
        let (store, journal) = fresh();
        let recs = vec![
            create(None, 0),
            write(None, 0, 0, b"hello world"),
            write(None, 0, 6, b"there"),
            create(None, 1),
            write(None, 1, 0, b"second"),
            WalRecord::Remove { txn: None, container: C, obj: ObjId(1) },
        ];
        let out = replay(&recs, &store, &journal, 99).unwrap();
        assert_eq!(out, RecoveryOutcome { records: 6, rolled_back: 0, in_doubt: 0 });
        assert_eq!(store.read(C, ObjId(0), 0, 64).unwrap(), b"hello there");
        assert!(store.read(C, ObjId(1), 0, 1).is_err());
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn committed_txn_effects_survive() {
        let (store, journal) = fresh();
        let recs = vec![
            create(Some(7), 0),
            write(Some(7), 0, 0, b"committed"),
            WalRecord::TxnPrepare { txn: TxnId(7) },
            WalRecord::TxnCommit { txn: TxnId(7) },
        ];
        let out = replay(&recs, &store, &journal, 0).unwrap();
        assert_eq!(out.in_doubt, 0);
        assert_eq!(store.read(C, ObjId(0), 0, 16).unwrap(), b"committed");
        assert_eq!(journal.active_txns(), 0);
    }

    #[test]
    fn aborted_txn_is_rolled_back_via_reconstructed_undos() {
        let (store, journal) = fresh();
        let recs = vec![
            create(None, 0),
            write(None, 0, 0, b"base state"),
            write(Some(3), 0, 0, b"OVERWRITE"),
            create(Some(3), 9),
            WalRecord::TxnAbort { txn: TxnId(3) },
        ];
        replay(&recs, &store, &journal, 0).unwrap();
        assert_eq!(store.read(C, ObjId(0), 0, 16).unwrap(), b"base state");
        assert!(store.read(C, ObjId(9), 0, 1).is_err(), "staged create rolled back");
    }

    #[test]
    fn active_txn_at_end_of_log_is_presumed_aborted() {
        let (store, journal) = fresh();
        let recs = vec![
            create(None, 0),
            write(None, 0, 0, b"durable"),
            create(Some(5), 1),
            write(Some(5), 1, 0, b"staged only"),
        ];
        let out = replay(&recs, &store, &journal, 0).unwrap();
        assert_eq!(out.rolled_back, 1);
        assert_eq!(store.read(C, ObjId(0), 0, 16).unwrap(), b"durable");
        assert!(store.read(C, ObjId(1), 0, 1).is_err());
        assert_eq!(journal.active_txns(), 0);
    }

    #[test]
    fn prepared_txn_is_restored_in_doubt() {
        let (store, journal) = fresh();
        let recs = vec![
            create(Some(8), 0),
            write(Some(8), 0, 0, b"in doubt"),
            WalRecord::TxnPrepare { txn: TxnId(8) },
        ];
        let out = replay(&recs, &store, &journal, 0).unwrap();
        assert_eq!(out.in_doubt, 1);
        assert_eq!(journal.state(TxnId(8)), Some(JournalState::Prepared));
        assert_eq!(journal.staged_ops(TxnId(8)), 2);
        // The effects are applied (they become permanent on commit) …
        assert_eq!(store.read(C, ObjId(0), 0, 16).unwrap(), b"in doubt");
        // … and a later abort still has the undos to roll them back.
        for undo in journal.abort(TxnId(8)).into_iter().rev() {
            apply_undo(&store, undo, 0);
        }
        assert!(store.read(C, ObjId(0), 0, 1).is_err());
    }

    #[test]
    fn apply_records_keeps_open_txns_active_for_backups() {
        // The live-backup path must not presume abort: the primary's log
        // simply hasn't ended yet. A later shipped TxnCommit completes the
        // transaction exactly as a logged commit would.
        let (store, journal) = fresh();
        let recs = vec![create(Some(5), 1), write(Some(5), 1, 0, b"staged")];
        apply_records(&recs, &store, &journal, 0).unwrap();
        assert_eq!(journal.state(TxnId(5)), Some(JournalState::Active));
        assert_eq!(store.read(C, ObjId(1), 0, 16).unwrap(), b"staged");

        apply_records(
            &[WalRecord::TxnPrepare { txn: TxnId(5) }, WalRecord::TxnCommit { txn: TxnId(5) }],
            &store,
            &journal,
            0,
        )
        .unwrap();
        assert_eq!(journal.state(TxnId(5)), None);
        assert_eq!(store.read(C, ObjId(1), 0, 16).unwrap(), b"staged");
    }

    #[test]
    fn transactional_remove_restores_on_rollback() {
        let (store, journal) = fresh();
        let recs = vec![
            create(None, 0),
            write(None, 0, 0, b"precious"),
            WalRecord::Remove { txn: Some(TxnId(4)), container: C, obj: ObjId(0) },
        ];
        replay(&recs, &store, &journal, 42).unwrap();
        // Presumed abort restored the removed object.
        assert_eq!(store.read(C, ObjId(0), 0, 16).unwrap(), b"precious");
    }

    #[test]
    fn replay_keeps_id_allocator_ahead_of_history() {
        let (store, journal) = fresh();
        replay(&[create(None, 17)], &store, &journal, 0).unwrap();
        let next = store.create(C, None, 0).unwrap();
        assert!(next.0 > 17, "fresh ids must not collide with replayed ones");
    }
}
