//! The LWFS **storage service** (paper §3.2–§3.4, Figures 6 and 7).
//!
//! A storage server exports *objects* grouped into *containers* and
//! enforces — but never decides — access policy, by verifying capabilities
//! through the authorization service and caching the verdicts. Bulk data
//! movement is **server-directed**: clients send a small request naming a
//! pinned memory descriptor; the server *pulls* data from client memory for
//! writes and *pushes* data into client memory for reads, pacing transfers
//! against its own buffer pool so a burst of ten thousand requests cannot
//! overrun it.
//!
//! Components:
//!
//! * [`ObjectStore`] — the object layer: create/remove/read/write/attr/sync
//!   with per-container scoping and an optional file-backed sync path.
//! * [`PinnedBufferPool`] — the bounded pool of transfer buffers of
//!   Figure 6; an exhausted pool is what turns into `ServerBusy`
//!   rejections and client re-sends.
//! * [`RequestScheduler`] — elevator reordering of independent queued
//!   requests ("The server can also re-order independent requests to
//!   improve access to the storage device", §3.2).
//! * [`ConflictTracker`] / [`WorkQueue`] — the worker-pool dispatch layer:
//!   a bounded FIFO hand-off from the dispatcher to N workers, with the
//!   scheduler's dependency relation promoted into an in-flight tracker so
//!   independent requests overlap and dependent ones keep release order.
//! * [`StorageServer`] — the service: the RPC surface, the capability
//!   cache, transaction participation (undo journals + 2PC votes).

pub mod buffers;
pub mod dispatch;
pub mod filter;
pub mod recovery;
pub mod scheduler;
pub mod server;
pub mod store;

pub use buffers::PinnedBufferPool;
pub use dispatch::{AccessSummary, ConflictTracker, WorkQueue};
pub use filter::{apply as apply_filter, decode_stats};
pub use recovery::RecoveryOutcome;
pub use scheduler::RequestScheduler;
pub use server::{SignedCapConfig, StorageConfig, StorageServer, StorageStats};
pub use store::{ObjectStore, StoreConfig};
