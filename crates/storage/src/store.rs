//! The object layer of a storage server.
//!
//! Objects are flat byte arrays named by [`ObjId`], each belonging to
//! exactly one [`ContainerId`] — the unit of access control (§3.1.1). The
//! store "moves the block layout decisions and policy enforcement to the
//! storage device" (Figure 7-b): layout here is simply the object map, and
//! enforcement is done by the server above this layer.
//!
//! The map is **sharded** and every object carries its own lock: an id
//! lookup takes one short shard-level critical section, and the byte copy
//! of a read or write then runs under the per-object mutex only. With the
//! server's worker pool driving many requests at once, operations on
//! independent objects never contend — only same-object operations (which
//! the server's conflict tracker already serializes when they overlap)
//! ever share a lock. Id allocation is a single atomic counter.
//!
//! `sync` optionally spills object contents to a backing directory, giving
//! the functional plane a real `open/write/sync/close` cost profile (the
//! quantity timed in §4's experiments).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lwfs_proto::{ContainerId, Error, ObjAttr, ObjId, Result};
use parking_lot::Mutex;

/// Shards in the object map. A fixed power of two well above typical
/// worker counts, so two workers touching different objects rarely even
/// share a shard lock (and never hold one across a byte copy).
const SHARD_COUNT: usize = 16;

/// Store-level configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Largest object the server accepts, in bytes.
    pub max_object_size: u64,
    /// Optional directory where `sync` persists object contents.
    pub backing_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { max_object_size: 4 << 30, backing_dir: None }
    }
}

/// Mutable state of one object, guarded by its own lock.
#[derive(Debug)]
struct ObjState {
    data: Vec<u8>,
    create_time: u64,
    modify_time: u64,
    dirty: bool,
}

/// One stored object: the immutable container binding outside the lock
/// (checked without contending with data movement), the byte state inside.
#[derive(Debug)]
struct StoredObject {
    container: ContainerId,
    state: Mutex<ObjState>,
}

type ObjRef = Arc<StoredObject>;

/// An in-memory (optionally file-sync-backed) object store with a sharded
/// object map, per-object locking, and atomic id allocation.
pub struct ObjectStore {
    config: StoreConfig,
    shards: Vec<Mutex<HashMap<ObjId, ObjRef>>>,
    next_oid: AtomicU64,
}

impl ObjectStore {
    pub fn new(config: StoreConfig) -> Self {
        Self {
            config,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            next_oid: AtomicU64::new(0),
        }
    }

    fn shard(&self, oid: ObjId) -> &Mutex<HashMap<ObjId, ObjRef>> {
        &self.shards[(oid.0 as usize) % SHARD_COUNT]
    }

    /// Look up an object, cloning its handle out of the (briefly locked)
    /// shard so the caller never holds a shard lock across a byte copy.
    fn lookup(&self, oid: ObjId) -> Result<ObjRef> {
        self.shard(oid).lock().get(&oid).cloned().ok_or(Error::NoSuchObject(oid))
    }

    /// Like [`lookup`](Self::lookup), but also enforcing container scoping.
    fn lookup_scoped(&self, container: ContainerId, oid: ObjId) -> Result<ObjRef> {
        let obj = self.lookup(oid)?;
        if obj.container != container {
            return Err(Error::AccessDenied);
        }
        Ok(obj)
    }

    /// Create an object in `container`. A caller-chosen id (needed for
    /// deterministic restart layouts) collides with `ObjectExists` if
    /// taken; otherwise the store allocates the next id.
    pub fn create(&self, container: ContainerId, want: Option<ObjId>, now: u64) -> Result<ObjId> {
        let oid = match want {
            Some(oid) => {
                // Reserve past explicit ids before touching the shard, so a
                // racing automatic create can never be handed the same id.
                self.next_oid.fetch_max(oid.0.saturating_add(1), Ordering::Relaxed);
                oid
            }
            None => ObjId(self.next_oid.fetch_add(1, Ordering::Relaxed)),
        };
        let obj = Arc::new(StoredObject {
            container,
            state: Mutex::new(ObjState {
                data: Vec::new(),
                create_time: now,
                modify_time: now,
                dirty: false,
            }),
        });
        let mut shard = self.shard(oid).lock();
        if shard.contains_key(&oid) {
            return Err(Error::ObjectExists(oid));
        }
        shard.insert(oid, obj);
        Ok(oid)
    }

    /// Remove an object, enforcing container scoping. Any backing file a
    /// previous `sync` spilled is deleted too — a removed object's bytes
    /// must not linger on disk and resurrect after a replay or re-sync.
    pub fn remove(&self, container: ContainerId, oid: ObjId) -> Result<()> {
        let mut shard = self.shard(oid).lock();
        match shard.get(&oid) {
            None => Err(Error::NoSuchObject(oid)),
            Some(o) if o.container != container => Err(Error::AccessDenied),
            Some(_) => {
                shard.remove(&oid);
                if let Some(dir) = &self.config.backing_dir {
                    // Best-effort: the object may simply never have been
                    // synced, in which case there is no file to delete.
                    let _ = std::fs::remove_file(dir.join(format!("obj-{}.dat", oid.0)));
                }
                Ok(())
            }
        }
    }

    /// The container an object belongs to.
    pub fn container_of(&self, oid: ObjId) -> Result<ContainerId> {
        Ok(self.lookup(oid)?.container)
    }

    /// Write `data` at `offset`, extending (zero-filling any gap). Returns
    /// the *preimage* of the overwritten region and the previous length —
    /// exactly what an undo journal needs for transactional rollback.
    pub fn write(
        &self,
        container: ContainerId,
        oid: ObjId,
        offset: u64,
        data: &[u8],
        now: u64,
    ) -> Result<WritePreimage> {
        let end = offset.checked_add(data.len() as u64).ok_or(Error::ObjectTooLarge)?;
        if end > self.config.max_object_size {
            return Err(Error::ObjectTooLarge);
        }
        let obj = self.lookup_scoped(container, oid)?;
        let mut st = obj.state.lock();
        let old_len = st.data.len() as u64;
        let off = offset as usize;
        let end = end as usize;
        if st.data.len() < end {
            st.data.resize(end, 0);
        }
        let overlap_start = off.min(old_len as usize);
        let overlap_end = end.min(old_len as usize);
        let preimage = if overlap_start < overlap_end {
            st.data[overlap_start..overlap_end].to_vec()
        } else {
            Vec::new()
        };
        st.data[off..end].copy_from_slice(data);
        st.modify_time = now;
        st.dirty = true;
        Ok(WritePreimage { old_len, overlap_offset: overlap_start as u64, overlap: preimage })
    }

    /// Undo a write using its preimage: restore overwritten bytes and
    /// truncate back to the previous length.
    pub fn undo_write(&self, oid: ObjId, pre: &WritePreimage) -> Result<()> {
        let obj = self.lookup(oid)?;
        let mut st = obj.state.lock();
        let start = pre.overlap_offset as usize;
        let end = start + pre.overlap.len();
        if end <= st.data.len() {
            st.data[start..end].copy_from_slice(&pre.overlap);
        }
        st.data.truncate(pre.old_len as usize);
        st.dirty = true;
        Ok(())
    }

    /// Read up to `len` bytes at `offset` (short reads at end of object).
    pub fn read(
        &self,
        container: ContainerId,
        oid: ObjId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        let obj = self.lookup_scoped(container, oid)?;
        let st = obj.state.lock();
        let start = (offset as usize).min(st.data.len());
        let end = (offset.saturating_add(len) as usize).min(st.data.len());
        Ok(st.data[start..end].to_vec())
    }

    pub fn getattr(&self, container: ContainerId, oid: ObjId) -> Result<ObjAttr> {
        let obj = self.lookup_scoped(container, oid)?;
        let st = obj.state.lock();
        Ok(ObjAttr {
            size: st.data.len() as u64,
            create_time: st.create_time,
            modify_time: st.modify_time,
        })
    }

    /// Every object handle, sorted by id for deterministic iteration.
    fn all_objects(&self) -> Vec<(ObjId, ObjRef)> {
        let mut objs: Vec<(ObjId, ObjRef)> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().map(|(id, o)| (*id, Arc::clone(o))).collect::<Vec<_>>())
            .collect();
        objs.sort_by_key(|(id, _)| *id);
        objs
    }

    /// Flush one object (or all) to the backing directory, clearing dirty
    /// bits. Returns the number of objects flushed.
    ///
    /// The full sweep (`oid: None`) is **best-effort**: an object whose
    /// flush fails keeps its dirty bit (a later sync retries it) and the
    /// sweep continues, so one bad object cannot leave every later one
    /// dirty. Failures are aggregated into a single error reporting how
    /// many objects did flush.
    pub fn sync(&self, oid: Option<ObjId>) -> Result<u64> {
        let targets: Vec<(ObjId, ObjRef)> = match oid {
            Some(o) => vec![(o, self.lookup(o)?)],
            None => self.all_objects(),
        };
        let total = targets.len();
        let mut flushed = 0u64;
        let mut failures: Vec<(ObjId, Error)> = Vec::new();
        for (id, obj) in targets {
            let mut st = obj.state.lock();
            if !st.dirty {
                continue;
            }
            if let Err(e) = self.flush_object(id, &st.data) {
                failures.push((id, e));
                continue; // dirty bit stays set: retried by the next sync
            }
            st.dirty = false;
            flushed += 1;
        }
        match failures.as_slice() {
            [] => Ok(flushed),
            [(id, e), rest @ ..] => Err(Error::StorageIo(format!(
                "sync flushed {flushed}/{total} objects; {} failed (first: obj {} — {e}){}",
                failures.len(),
                id.0,
                if rest.is_empty() { "" } else { ", more elided" },
            ))),
        }
    }

    /// Write one object's bytes to its backing file (no-op without a
    /// backing directory).
    fn flush_object(&self, id: ObjId, data: &[u8]) -> Result<()> {
        let Some(dir) = &self.config.backing_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir).map_err(|e| Error::StorageIo(e.to_string()))?;
        let path = dir.join(format!("obj-{}.dat", id.0));
        let mut f = std::fs::File::create(&path).map_err(|e| Error::StorageIo(e.to_string()))?;
        f.write_all(data).map_err(|e| Error::StorageIo(e.to_string()))?;
        f.sync_all().map_err(|e| Error::StorageIo(e.to_string()))
    }

    /// Objects in a container, sorted for deterministic listings.
    pub fn list(&self, container: ContainerId) -> Vec<ObjId> {
        let mut ids: Vec<ObjId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .filter(|(_, o)| o.container == container)
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Total bytes stored (diagnostics).
    pub fn bytes_stored(&self) -> u64 {
        self.all_objects().iter().map(|(_, o)| o.state.lock().data.len() as u64).sum()
    }
}

/// Preimage captured by [`ObjectStore::write`] for transactional undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePreimage {
    pub old_len: u64,
    pub overlap_offset: u64,
    pub overlap: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ContainerId = ContainerId(1);
    const C2: ContainerId = ContainerId(2);

    fn store() -> ObjectStore {
        ObjectStore::new(StoreConfig::default())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let s = store();
        let oid = s.create(C1, None, 10).unwrap();
        s.write(C1, oid, 0, b"checkpoint state", 11).unwrap();
        assert_eq!(s.read(C1, oid, 0, 16).unwrap(), b"checkpoint state");
        let attr = s.getattr(C1, oid).unwrap();
        assert_eq!(attr.size, 16);
        assert_eq!(attr.create_time, 10);
        assert_eq!(attr.modify_time, 11);
    }

    #[test]
    fn ids_allocated_sequentially_and_explicitly() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let b = s.create(C1, None, 0).unwrap();
        assert_ne!(a, b);
        let chosen = s.create(C1, Some(ObjId(100)), 0).unwrap();
        assert_eq!(chosen, ObjId(100));
        assert_eq!(s.create(C1, Some(ObjId(100)), 0).unwrap_err(), Error::ObjectExists(ObjId(100)));
        // Allocator skips past explicit ids.
        let next = s.create(C1, None, 0).unwrap();
        assert!(next.0 > 100);
    }

    #[test]
    fn container_scoping_enforced() {
        // A capability for container 2 must not touch container 1's
        // objects even if it guesses the object id.
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"secret", 0).unwrap();
        assert_eq!(s.read(C2, oid, 0, 6).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.write(C2, oid, 0, b"x", 0).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.remove(C2, oid).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.getattr(C2, oid).unwrap_err(), Error::AccessDenied);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 4, b"xy", 0).unwrap();
        assert_eq!(s.read(C1, oid, 0, 6).unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn short_read_at_end() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"abc", 0).unwrap();
        assert_eq!(s.read(C1, oid, 2, 100).unwrap(), b"c");
        assert!(s.read(C1, oid, 10, 5).unwrap().is_empty());
    }

    #[test]
    fn size_limit_enforced() {
        let s = ObjectStore::new(StoreConfig { max_object_size: 8, backing_dir: None });
        let oid = s.create(C1, None, 0).unwrap();
        assert!(s.write(C1, oid, 0, &[0u8; 8], 0).is_ok());
        assert_eq!(s.write(C1, oid, 1, &[0u8; 8], 0).unwrap_err(), Error::ObjectTooLarge);
        assert_eq!(
            s.write(C1, oid, u64::MAX, b"x", 0).unwrap_err(),
            Error::ObjectTooLarge,
            "offset overflow must not wrap"
        );
    }

    #[test]
    fn write_preimage_enables_exact_undo() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"hello world", 0).unwrap();
        let pre = s.write(C1, oid, 6, b"there!!!", 0).unwrap();
        assert_eq!(s.read(C1, oid, 0, 100).unwrap(), b"hello there!!!");
        s.undo_write(oid, &pre).unwrap();
        assert_eq!(s.read(C1, oid, 0, 100).unwrap(), b"hello world");
    }

    #[test]
    fn undo_of_pure_extension_truncates() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"abc", 0).unwrap();
        let pre = s.write(C1, oid, 3, b"def", 0).unwrap();
        assert!(pre.overlap.is_empty());
        s.undo_write(oid, &pre).unwrap();
        assert_eq!(s.read(C1, oid, 0, 10).unwrap(), b"abc");
    }

    #[test]
    fn remove_then_ops_fail() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.remove(C1, oid).unwrap();
        assert_eq!(s.read(C1, oid, 0, 1).unwrap_err(), Error::NoSuchObject(oid));
        assert_eq!(s.remove(C1, oid).unwrap_err(), Error::NoSuchObject(oid));
    }

    #[test]
    fn list_filters_by_container_sorted() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let _b = s.create(C2, None, 0).unwrap();
        let c = s.create(C1, None, 0).unwrap();
        assert_eq!(s.list(C1), vec![a, c]);
        assert_eq!(s.list(ContainerId(99)), vec![]);
    }

    #[test]
    fn sync_clears_dirty_and_counts() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let b = s.create(C1, None, 0).unwrap();
        s.write(C1, a, 0, b"x", 0).unwrap();
        s.write(C1, b, 0, b"y", 0).unwrap();
        assert_eq!(s.sync(None).unwrap(), 2);
        assert_eq!(s.sync(None).unwrap(), 0, "clean objects are skipped");
        s.write(C1, a, 0, b"z", 0).unwrap();
        assert_eq!(s.sync(Some(a)).unwrap(), 1);
        assert!(s.sync(Some(ObjId(999))).is_err());
    }

    #[test]
    fn file_backed_sync_writes_files() {
        let dir = std::env::temp_dir().join(format!("lwfs-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ObjectStore::new(StoreConfig {
            max_object_size: 1 << 20,
            backing_dir: Some(dir.clone()),
        });
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"persisted bytes", 0).unwrap();
        s.sync(Some(oid)).unwrap();
        let read_back = std::fs::read(dir.join(format!("obj-{}.dat", oid.0))).unwrap();
        assert_eq!(read_back, b"persisted bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_spilled_backing_file() {
        // Regression: `remove` used to leave the spilled file behind, so a
        // removed object's bytes could resurrect from the backing dir.
        let dir = std::env::temp_dir().join(format!("lwfs-store-rm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ObjectStore::new(StoreConfig {
            max_object_size: 1 << 20,
            backing_dir: Some(dir.clone()),
        });
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"soon gone", 0).unwrap();
        s.sync(Some(oid)).unwrap();
        let path = dir.join(format!("obj-{}.dat", oid.0));
        assert!(path.exists());
        s.remove(C1, oid).unwrap();
        assert!(!path.exists(), "backing file must die with the object");
        // Removing a never-synced object must not trip over the missing file.
        let other = s.create(C1, None, 0).unwrap();
        s.remove(C1, other).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_sweep_is_best_effort_across_objects() {
        // Point the backing dir at a path whose parent is a regular file:
        // every flush fails, but the sweep must still visit every object,
        // keep all dirty bits, and report the aggregate.
        let blocker = std::env::temp_dir().join(format!("lwfs-store-blk-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let s = ObjectStore::new(StoreConfig {
            max_object_size: 1 << 20,
            backing_dir: Some(blocker.join("sub")),
        });
        let a = s.create(C1, None, 0).unwrap();
        let b = s.create(C1, None, 0).unwrap();
        s.write(C1, a, 0, b"x", 0).unwrap();
        s.write(C1, b, 0, b"y", 0).unwrap();
        let err = s.sync(None).unwrap_err();
        match &err {
            Error::StorageIo(msg) => {
                assert!(msg.contains("flushed 0/2"), "aggregate count missing: {msg}");
                assert!(msg.contains("2 failed"), "failure count missing: {msg}");
            }
            other => panic!("expected StorageIo, got {other:?}"),
        }
        // Dirty bits survived: a sync after repairing the path flushes both.
        std::fs::remove_file(&blocker).unwrap();
        assert_eq!(s.sync(None).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&blocker);
    }

    #[test]
    fn bytes_stored_tracks_totals() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        s.write(C1, a, 0, &[1u8; 100], 0).unwrap();
        let b = s.create(C2, None, 0).unwrap();
        s.write(C2, b, 0, &[2u8; 50], 0).unwrap();
        assert_eq!(s.bytes_stored(), 150);
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn concurrent_automatic_creates_allocate_unique_ids() {
        let s = Arc::new(store());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    (0..100).map(|_| s.create(C1, None, 0).unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<ObjId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400, "atomic allocation never duplicates");
        assert_eq!(s.object_count(), 400);
    }

    #[test]
    fn concurrent_disjoint_writes_land_exactly() {
        // Many threads hammering distinct objects: per-object locking must
        // produce the same bytes a serial run would.
        let s = Arc::new(store());
        let oids: Vec<ObjId> = (0..8).map(|_| s.create(C1, None, 0).unwrap()).collect();
        let handles: Vec<_> = oids
            .iter()
            .enumerate()
            .map(|(i, oid)| {
                let s = Arc::clone(&s);
                let oid = *oid;
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let payload = vec![(i as u8).wrapping_add(round as u8); 64];
                        s.write(C1, oid, round * 64, &payload, round).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, oid) in oids.iter().enumerate() {
            let data = s.read(C1, *oid, 0, u64::MAX).unwrap();
            assert_eq!(data.len(), 50 * 64);
            for round in 0..50usize {
                assert!(data[round * 64..(round + 1) * 64]
                    .iter()
                    .all(|b| *b == (i as u8).wrapping_add(round as u8)));
            }
        }
    }

    proptest::proptest! {
        /// Writes at arbitrary offsets followed by undo restore the exact
        /// prior contents.
        #[test]
        fn prop_write_undo_is_identity(
            initial in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            offset in 0u64..128,
            data in proptest::collection::vec(proptest::num::u8::ANY, 1..64),
        ) {
            let s = store();
            let oid = s.create(C1, None, 0).unwrap();
            if !initial.is_empty() {
                s.write(C1, oid, 0, &initial, 0).unwrap();
            }
            let before = s.read(C1, oid, 0, 1 << 20).unwrap();
            let pre = s.write(C1, oid, offset, &data, 0).unwrap();
            s.undo_write(oid, &pre).unwrap();
            let after = s.read(C1, oid, 0, 1 << 20).unwrap();
            proptest::prop_assert_eq!(before, after);
        }
    }
}
