//! The object layer of a storage server.
//!
//! Objects are flat byte arrays named by [`ObjId`], each belonging to
//! exactly one [`ContainerId`] — the unit of access control (§3.1.1). The
//! store "moves the block layout decisions and policy enforcement to the
//! storage device" (Figure 7-b): layout here is simply the object map, and
//! enforcement is done by the server above this layer.
//!
//! `sync` optionally spills object contents to a backing directory, giving
//! the functional plane a real `open/write/sync/close` cost profile (the
//! quantity timed in §4's experiments).

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

use lwfs_proto::{ContainerId, Error, ObjAttr, ObjId, Result};
use parking_lot::Mutex;

/// Store-level configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Largest object the server accepts, in bytes.
    pub max_object_size: u64,
    /// Optional directory where `sync` persists object contents.
    pub backing_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { max_object_size: 4 << 30, backing_dir: None }
    }
}

#[derive(Debug)]
struct StoredObject {
    container: ContainerId,
    data: Vec<u8>,
    create_time: u64,
    modify_time: u64,
    dirty: bool,
}

#[derive(Debug, Default)]
struct StoreState {
    objects: HashMap<ObjId, StoredObject>,
    next_oid: u64,
}

/// An in-memory (optionally file-sync-backed) object store.
pub struct ObjectStore {
    config: StoreConfig,
    state: Mutex<StoreState>,
}

impl ObjectStore {
    pub fn new(config: StoreConfig) -> Self {
        Self { config, state: Mutex::new(StoreState::default()) }
    }

    /// Create an object in `container`. A caller-chosen id (needed for
    /// deterministic restart layouts) collides with `ObjectExists` if
    /// taken; otherwise the store allocates the next id.
    pub fn create(&self, container: ContainerId, want: Option<ObjId>, now: u64) -> Result<ObjId> {
        let mut st = self.state.lock();
        let oid = match want {
            Some(oid) => {
                if st.objects.contains_key(&oid) {
                    return Err(Error::ObjectExists(oid));
                }
                st.next_oid = st.next_oid.max(oid.0 + 1);
                oid
            }
            None => {
                let oid = ObjId(st.next_oid);
                st.next_oid += 1;
                oid
            }
        };
        st.objects.insert(
            oid,
            StoredObject {
                container,
                data: Vec::new(),
                create_time: now,
                modify_time: now,
                dirty: false,
            },
        );
        Ok(oid)
    }

    /// Remove an object, enforcing container scoping.
    pub fn remove(&self, container: ContainerId, oid: ObjId) -> Result<()> {
        let mut st = self.state.lock();
        match st.objects.get(&oid) {
            None => Err(Error::NoSuchObject(oid)),
            Some(o) if o.container != container => Err(Error::AccessDenied),
            Some(_) => {
                st.objects.remove(&oid);
                Ok(())
            }
        }
    }

    /// The container an object belongs to.
    pub fn container_of(&self, oid: ObjId) -> Result<ContainerId> {
        let st = self.state.lock();
        st.objects.get(&oid).map(|o| o.container).ok_or(Error::NoSuchObject(oid))
    }

    /// Write `data` at `offset`, extending (zero-filling any gap). Returns
    /// the *preimage* of the overwritten region and the previous length —
    /// exactly what an undo journal needs for transactional rollback.
    pub fn write(
        &self,
        container: ContainerId,
        oid: ObjId,
        offset: u64,
        data: &[u8],
        now: u64,
    ) -> Result<WritePreimage> {
        let end = offset.checked_add(data.len() as u64).ok_or(Error::ObjectTooLarge)?;
        if end > self.config.max_object_size {
            return Err(Error::ObjectTooLarge);
        }
        let mut st = self.state.lock();
        let obj = st.objects.get_mut(&oid).ok_or(Error::NoSuchObject(oid))?;
        if obj.container != container {
            return Err(Error::AccessDenied);
        }
        let old_len = obj.data.len() as u64;
        let off = offset as usize;
        let end = end as usize;
        if obj.data.len() < end {
            obj.data.resize(end, 0);
        }
        let overlap_start = off.min(old_len as usize);
        let overlap_end = end.min(old_len as usize);
        let preimage = if overlap_start < overlap_end {
            obj.data[overlap_start..overlap_end].to_vec()
        } else {
            Vec::new()
        };
        obj.data[off..end].copy_from_slice(data);
        obj.modify_time = now;
        obj.dirty = true;
        Ok(WritePreimage { old_len, overlap_offset: overlap_start as u64, overlap: preimage })
    }

    /// Undo a write using its preimage: restore overwritten bytes and
    /// truncate back to the previous length.
    pub fn undo_write(&self, oid: ObjId, pre: &WritePreimage) -> Result<()> {
        let mut st = self.state.lock();
        let obj = st.objects.get_mut(&oid).ok_or(Error::NoSuchObject(oid))?;
        let start = pre.overlap_offset as usize;
        let end = start + pre.overlap.len();
        if end <= obj.data.len() {
            obj.data[start..end].copy_from_slice(&pre.overlap);
        }
        obj.data.truncate(pre.old_len as usize);
        obj.dirty = true;
        Ok(())
    }

    /// Read up to `len` bytes at `offset` (short reads at end of object).
    pub fn read(
        &self,
        container: ContainerId,
        oid: ObjId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        let st = self.state.lock();
        let obj = st.objects.get(&oid).ok_or(Error::NoSuchObject(oid))?;
        if obj.container != container {
            return Err(Error::AccessDenied);
        }
        let start = (offset as usize).min(obj.data.len());
        let end = (offset.saturating_add(len) as usize).min(obj.data.len());
        Ok(obj.data[start..end].to_vec())
    }

    pub fn getattr(&self, container: ContainerId, oid: ObjId) -> Result<ObjAttr> {
        let st = self.state.lock();
        let obj = st.objects.get(&oid).ok_or(Error::NoSuchObject(oid))?;
        if obj.container != container {
            return Err(Error::AccessDenied);
        }
        Ok(ObjAttr {
            size: obj.data.len() as u64,
            create_time: obj.create_time,
            modify_time: obj.modify_time,
        })
    }

    /// Flush one object (or all) to the backing directory, clearing dirty
    /// bits. Returns the number of objects flushed.
    pub fn sync(&self, oid: Option<ObjId>) -> Result<u64> {
        let mut st = self.state.lock();
        let mut flushed = 0;
        let ids: Vec<ObjId> = match oid {
            Some(o) => {
                if !st.objects.contains_key(&o) {
                    return Err(Error::NoSuchObject(o));
                }
                vec![o]
            }
            None => st.objects.keys().copied().collect(),
        };
        for id in ids {
            let obj = st.objects.get_mut(&id).expect("listed above");
            if !obj.dirty {
                continue;
            }
            if let Some(dir) = &self.config.backing_dir {
                std::fs::create_dir_all(dir).map_err(|e| Error::StorageIo(e.to_string()))?;
                let path = dir.join(format!("obj-{}.dat", id.0));
                let mut f =
                    std::fs::File::create(&path).map_err(|e| Error::StorageIo(e.to_string()))?;
                f.write_all(&obj.data).map_err(|e| Error::StorageIo(e.to_string()))?;
                f.sync_all().map_err(|e| Error::StorageIo(e.to_string()))?;
            }
            obj.dirty = false;
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Objects in a container, sorted for deterministic listings.
    pub fn list(&self, container: ContainerId) -> Vec<ObjId> {
        let st = self.state.lock();
        let mut ids: Vec<ObjId> = st
            .objects
            .iter()
            .filter(|(_, o)| o.container == container)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    pub fn object_count(&self) -> usize {
        self.state.lock().objects.len()
    }

    /// Total bytes stored (diagnostics).
    pub fn bytes_stored(&self) -> u64 {
        self.state.lock().objects.values().map(|o| o.data.len() as u64).sum()
    }
}

/// Preimage captured by [`ObjectStore::write`] for transactional undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePreimage {
    pub old_len: u64,
    pub overlap_offset: u64,
    pub overlap: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ContainerId = ContainerId(1);
    const C2: ContainerId = ContainerId(2);

    fn store() -> ObjectStore {
        ObjectStore::new(StoreConfig::default())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let s = store();
        let oid = s.create(C1, None, 10).unwrap();
        s.write(C1, oid, 0, b"checkpoint state", 11).unwrap();
        assert_eq!(s.read(C1, oid, 0, 16).unwrap(), b"checkpoint state");
        let attr = s.getattr(C1, oid).unwrap();
        assert_eq!(attr.size, 16);
        assert_eq!(attr.create_time, 10);
        assert_eq!(attr.modify_time, 11);
    }

    #[test]
    fn ids_allocated_sequentially_and_explicitly() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let b = s.create(C1, None, 0).unwrap();
        assert_ne!(a, b);
        let chosen = s.create(C1, Some(ObjId(100)), 0).unwrap();
        assert_eq!(chosen, ObjId(100));
        assert_eq!(s.create(C1, Some(ObjId(100)), 0).unwrap_err(), Error::ObjectExists(ObjId(100)));
        // Allocator skips past explicit ids.
        let next = s.create(C1, None, 0).unwrap();
        assert!(next.0 > 100);
    }

    #[test]
    fn container_scoping_enforced() {
        // A capability for container 2 must not touch container 1's
        // objects even if it guesses the object id.
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"secret", 0).unwrap();
        assert_eq!(s.read(C2, oid, 0, 6).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.write(C2, oid, 0, b"x", 0).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.remove(C2, oid).unwrap_err(), Error::AccessDenied);
        assert_eq!(s.getattr(C2, oid).unwrap_err(), Error::AccessDenied);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 4, b"xy", 0).unwrap();
        assert_eq!(s.read(C1, oid, 0, 6).unwrap(), vec![0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn short_read_at_end() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"abc", 0).unwrap();
        assert_eq!(s.read(C1, oid, 2, 100).unwrap(), b"c");
        assert!(s.read(C1, oid, 10, 5).unwrap().is_empty());
    }

    #[test]
    fn size_limit_enforced() {
        let s = ObjectStore::new(StoreConfig { max_object_size: 8, backing_dir: None });
        let oid = s.create(C1, None, 0).unwrap();
        assert!(s.write(C1, oid, 0, &[0u8; 8], 0).is_ok());
        assert_eq!(s.write(C1, oid, 1, &[0u8; 8], 0).unwrap_err(), Error::ObjectTooLarge);
        assert_eq!(
            s.write(C1, oid, u64::MAX, b"x", 0).unwrap_err(),
            Error::ObjectTooLarge,
            "offset overflow must not wrap"
        );
    }

    #[test]
    fn write_preimage_enables_exact_undo() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"hello world", 0).unwrap();
        let pre = s.write(C1, oid, 6, b"there!!!", 0).unwrap();
        assert_eq!(s.read(C1, oid, 0, 100).unwrap(), b"hello there!!!");
        s.undo_write(oid, &pre).unwrap();
        assert_eq!(s.read(C1, oid, 0, 100).unwrap(), b"hello world");
    }

    #[test]
    fn undo_of_pure_extension_truncates() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"abc", 0).unwrap();
        let pre = s.write(C1, oid, 3, b"def", 0).unwrap();
        assert!(pre.overlap.is_empty());
        s.undo_write(oid, &pre).unwrap();
        assert_eq!(s.read(C1, oid, 0, 10).unwrap(), b"abc");
    }

    #[test]
    fn remove_then_ops_fail() {
        let s = store();
        let oid = s.create(C1, None, 0).unwrap();
        s.remove(C1, oid).unwrap();
        assert_eq!(s.read(C1, oid, 0, 1).unwrap_err(), Error::NoSuchObject(oid));
        assert_eq!(s.remove(C1, oid).unwrap_err(), Error::NoSuchObject(oid));
    }

    #[test]
    fn list_filters_by_container_sorted() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let _b = s.create(C2, None, 0).unwrap();
        let c = s.create(C1, None, 0).unwrap();
        assert_eq!(s.list(C1), vec![a, c]);
        assert_eq!(s.list(ContainerId(99)), vec![]);
    }

    #[test]
    fn sync_clears_dirty_and_counts() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        let b = s.create(C1, None, 0).unwrap();
        s.write(C1, a, 0, b"x", 0).unwrap();
        s.write(C1, b, 0, b"y", 0).unwrap();
        assert_eq!(s.sync(None).unwrap(), 2);
        assert_eq!(s.sync(None).unwrap(), 0, "clean objects are skipped");
        s.write(C1, a, 0, b"z", 0).unwrap();
        assert_eq!(s.sync(Some(a)).unwrap(), 1);
        assert!(s.sync(Some(ObjId(999))).is_err());
    }

    #[test]
    fn file_backed_sync_writes_files() {
        let dir = std::env::temp_dir().join(format!("lwfs-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ObjectStore::new(StoreConfig {
            max_object_size: 1 << 20,
            backing_dir: Some(dir.clone()),
        });
        let oid = s.create(C1, None, 0).unwrap();
        s.write(C1, oid, 0, b"persisted bytes", 0).unwrap();
        s.sync(Some(oid)).unwrap();
        let read_back = std::fs::read(dir.join(format!("obj-{}.dat", oid.0))).unwrap();
        assert_eq!(read_back, b"persisted bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bytes_stored_tracks_totals() {
        let s = store();
        let a = s.create(C1, None, 0).unwrap();
        s.write(C1, a, 0, &[1u8; 100], 0).unwrap();
        let b = s.create(C2, None, 0).unwrap();
        s.write(C2, b, 0, &[2u8; 50], 0).unwrap();
        assert_eq!(s.bytes_stored(), 150);
        assert_eq!(s.object_count(), 2);
    }

    proptest::proptest! {
        /// Writes at arbitrary offsets followed by undo restore the exact
        /// prior contents.
        #[test]
        fn prop_write_undo_is_identity(
            initial in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
            offset in 0u64..128,
            data in proptest::collection::vec(proptest::num::u8::ANY, 1..64),
        ) {
            let s = store();
            let oid = s.create(C1, None, 0).unwrap();
            if !initial.is_empty() {
                s.write(C1, oid, 0, &initial, 0).unwrap();
            }
            let before = s.read(C1, oid, 0, 1 << 20).unwrap();
            let pre = s.write(C1, oid, offset, &data, 0).unwrap();
            s.undo_write(oid, &pre).unwrap();
            let after = s.read(C1, oid, 0, 1 << 20).unwrap();
            proptest::prop_assert_eq!(before, after);
        }
    }
}
