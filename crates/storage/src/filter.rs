//! Server-side filtering — the §6 "remote processing (e.g., remote
//! filtering)" extension, following the active-disk work the paper cites
//! (Acharya/Uysal/Saltz; Riedel/Faloutsos/Gibson/Nagle).
//!
//! The storage server applies the filter to the object bytes (interpreted
//! as little-endian `f32`) and pushes only the result to the client:
//! event detection over a terabyte of traces moves kilobytes, not the
//! terabyte. The security model is unchanged — filtering is a *read*;
//! a READ capability authorizes it.

use lwfs_proto::FilterSpec;

/// Apply `filter` to `data`, returning the result bytes and how many
/// input bytes were scanned.
///
/// Trailing bytes that do not complete an `f32` are ignored (objects
/// written by f32 producers are always aligned; foreign data degrades
/// gracefully).
pub fn apply(filter: &FilterSpec, data: &[u8]) -> (Vec<u8>, u64) {
    let lanes = data.len() / 4;
    let scanned = (lanes * 4) as u64;
    let values = data[..lanes * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")));

    let out: Vec<u8> = match filter {
        FilterSpec::Subsample { stride } => {
            let stride = (*stride).max(1) as usize;
            values.step_by(stride).flat_map(|v| v.to_le_bytes()).collect()
        }
        FilterSpec::Threshold { min_abs } => {
            values.filter(|v| v.abs() >= *min_abs).flat_map(|v| v.to_le_bytes()).collect()
        }
        FilterSpec::Stats => {
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            let mut sum = 0.0f64;
            let mut count = 0u64;
            for v in values {
                min = min.min(v);
                max = max.max(v);
                sum += f64::from(v);
                count += 1;
            }
            if count == 0 {
                min = 0.0;
                max = 0.0;
            }
            let mut out = Vec::with_capacity(16);
            out.extend_from_slice(&min.to_le_bytes());
            out.extend_from_slice(&max.to_le_bytes());
            out.extend_from_slice(&(sum as f32).to_le_bytes());
            out.extend_from_slice(&(count as f32).to_le_bytes());
            out
        }
    };
    (out, scanned)
}

/// Decode a `Stats` result block into `(min, max, sum, count)`.
pub fn decode_stats(block: &[u8]) -> Option<(f32, f32, f32, u64)> {
    if block.len() != 16 {
        return None;
    }
    let lane = |i: usize| f32::from_le_bytes(block[4 * i..4 * i + 4].try_into().expect("16B"));
    Some((lane(0), lane(1), lane(2), lane(3) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn to_f32s(bytes: &[u8]) -> Vec<f32> {
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    #[test]
    fn subsample_decimates() {
        let data = f32s(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (out, scanned) = apply(&FilterSpec::Subsample { stride: 3 }, &data);
        assert_eq!(to_f32s(&out), vec![0.0, 3.0, 6.0]);
        assert_eq!(scanned, 28);
    }

    #[test]
    fn subsample_stride_zero_treated_as_one() {
        let data = f32s(&[1.0, 2.0]);
        let (out, _) = apply(&FilterSpec::Subsample { stride: 0 }, &data);
        assert_eq!(to_f32s(&out), vec![1.0, 2.0]);
    }

    #[test]
    fn threshold_keeps_large_magnitudes() {
        let data = f32s(&[0.1, -5.0, 0.2, 7.5, -0.3]);
        let (out, _) = apply(&FilterSpec::Threshold { min_abs: 1.0 }, &data);
        assert_eq!(to_f32s(&out), vec![-5.0, 7.5]);
    }

    #[test]
    fn threshold_can_return_empty() {
        let data = f32s(&[0.1, 0.2]);
        let (out, scanned) = apply(&FilterSpec::Threshold { min_abs: 10.0 }, &data);
        assert!(out.is_empty());
        assert_eq!(scanned, 8);
    }

    #[test]
    fn stats_block() {
        let data = f32s(&[1.0, -2.0, 3.0, 4.0]);
        let (out, _) = apply(&FilterSpec::Stats, &data);
        let (min, max, sum, count) = decode_stats(&out).unwrap();
        assert_eq!(min, -2.0);
        assert_eq!(max, 4.0);
        assert_eq!(sum, 6.0);
        assert_eq!(count, 4);
    }

    #[test]
    fn stats_on_empty_input() {
        let (out, scanned) = apply(&FilterSpec::Stats, &[]);
        let (min, max, sum, count) = decode_stats(&out).unwrap();
        assert_eq!((min, max, sum, count), (0.0, 0.0, 0.0, 0));
        assert_eq!(scanned, 0);
    }

    #[test]
    fn trailing_partial_lane_ignored() {
        let mut data = f32s(&[9.0]);
        data.extend_from_slice(&[1, 2, 3]); // 3 stray bytes
        let (out, scanned) = apply(&FilterSpec::Subsample { stride: 1 }, &data);
        assert_eq!(to_f32s(&out), vec![9.0]);
        assert_eq!(scanned, 4);
    }

    #[test]
    fn decode_stats_rejects_bad_length() {
        assert!(decode_stats(&[0u8; 15]).is_none());
        assert!(decode_stats(&[0u8; 17]).is_none());
    }

    proptest::proptest! {
        #[test]
        fn prop_threshold_output_subset_of_input(vals in proptest::collection::vec(-100.0f32..100.0, 0..64), t in 0.0f32..50.0) {
            let data = f32s(&vals);
            let (out, _) = apply(&FilterSpec::Threshold { min_abs: t }, &data);
            let got = to_f32s(&out);
            let expected: Vec<f32> = vals.iter().copied().filter(|v| v.abs() >= t).collect();
            proptest::prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_subsample_len(vals in proptest::collection::vec(-1.0f32..1.0, 0..64), stride in 1u32..8) {
            let data = f32s(&vals);
            let (out, _) = apply(&FilterSpec::Subsample { stride }, &data);
            let expect = vals.len().div_ceil(stride as usize);
            proptest::prop_assert_eq!(out.len() / 4, expect);
        }
    }
}
