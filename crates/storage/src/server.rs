//! The storage server: RPC surface, server-directed data movement,
//! capability enforcement, and transaction participation.
//!
//! The server runs its own loop (rather than the generic service runner)
//! so it can drain bursts of queued requests and release them through the
//! elevator [`RequestScheduler`]. The loop is a **pipelined dispatcher**:
//! the main thread keeps receiving and batching while a pool of worker
//! threads runs the full authorize → pull/push → store → reply path, so
//! independent requests overlap. Dependent requests (same object,
//! overlapping ranges, ≥1 write — the scheduler's own relation) are held
//! back by the in-flight [`ConflictTracker`] and still execute in release
//! order. Each data request moves its bulk payload with one-sided
//! operations against the *client's* pinned memory descriptor, staged
//! through the server's bounded [`PinnedBufferPool`] — the complete
//! Figure 6 pipeline:
//!
//! ```text
//! client:     post MD, send small request ─▶ server queue
//! dispatcher: drain burst, elevator-order, ticket, hand to workers
//! worker i:   wait for conflicting earlier tickets (usually none)
//!             authorize (cap cache / verify-through)
//!             for each chunk: acquire pinned buffer, GET from client MD,
//!                             write to object store, release buffer
//!             reply WriteDone
//! ```
//!
//! With `workers = 1` the pipeline degenerates to exactly the serial
//! paper-faithful loop: one consumer draining a FIFO of elevator-ordered
//! tickets. The [`PinnedBufferPool`] stays the admission throttle — more
//! workers than buffers just means more `ServerBusy` rejections, and the
//! bounded job queue blocks the dispatcher so the transport's eager queue
//! (and ultimately the §3.2 client back-off loop) still provides
//! end-to-end flow control.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use lwfs_auth::Clock;
use lwfs_authz::CachedCapVerifier;
use lwfs_cap::{CapMode, LocalCapVerifier, PublicKey};
use lwfs_obs::{Counter, OpTrace, Registry};
use lwfs_portals::{
    retry, Endpoint, Event, Network, RetryPolicy, RpcClient, RpcConfig, REQUEST_MATCH,
};
use lwfs_proto::{
    Capability, ContainerId, Decode as _, Encode as _, Error, FilterSpec, MdHandle, ObjId, OpMask,
    ProcessId, Reply, ReplyBody, Request, RequestBody, Result, TraceContext, TxnId,
};
use lwfs_replica::{ReplicaConfig, ReplicaState};
use lwfs_txn::{JournalState, JournalStore};
use lwfs_wal::{AppendTiming, Wal, WalConfig, WalRecord};

use crate::buffers::PinnedBufferPool;
use crate::dispatch::{AccessSummary, ConflictTracker, WorkQueue};
use crate::scheduler::RequestScheduler;
use crate::store::{ObjectStore, StoreConfig, WritePreimage};

/// Storage-server configuration.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Bytes per one-sided transfer chunk (each chunk crosses a pinned
    /// buffer).
    pub chunk_size: usize,
    /// Number of pinned transfer buffers.
    pub pool_buffers: usize,
    /// Maximum requests drained into one elevator batch.
    pub batch_limit: usize,
    /// Ablation knob: bypass the capability cache and verify every
    /// operation through the authorization service. Quantifies what the
    /// §3.1.2 caching scheme buys (see the `ablation` harness).
    pub verify_every_op: bool,
    /// Worker threads running the authorize → transfer → store → reply
    /// path. `1` reproduces the serial paper-faithful loop exactly;
    /// the default matches the host's available parallelism.
    pub workers: usize,
    /// Object-store configuration.
    pub store: StoreConfig,
    /// Write-ahead logging. When set, every mutation is appended to the
    /// log *before* its reply is sent, and a server spawned over a
    /// non-empty log directory replays it — restoring objects and in-doubt
    /// prepared transactions — before serving the first request. `None`
    /// (the default) keeps the server purely in-memory.
    pub wal: Option<WalConfig>,
    /// RPC knobs for the server's *outbound* calls (verify-through to the
    /// authorization service, WAL shipping to backups). Cluster-level
    /// configuration threads through here instead of per-call-site
    /// constants.
    pub rpc: RpcConfig,
    /// Replication role, when this server is part of a replicated storage
    /// group. A primary ships every mutation's WAL records to its backups
    /// before acknowledging the client; a backup applies shipped records
    /// and rejects client mutations with [`Error::NotPrimary`]. `None`
    /// (the default) is a standalone server.
    pub replica: Option<ReplicaConfig>,
    /// Self-certifying capability enforcement (wire v5). `None` (the
    /// default) is the legacy verify-through-only server.
    pub signed: Option<SignedCapConfig>,
}

/// Configuration of local (signature-based) capability verification.
#[derive(Debug, Clone)]
pub struct SignedCapConfig {
    /// `Signed` accepts tokens and falls back to verify-through for
    /// unsigned requests; `Require` refuses unsigned data operations.
    /// (`Legacy` here is equivalent to leaving the whole config `None`.)
    pub mode: CapMode,
    /// The issuer's ed25519 public key — the *only* secret-free state a
    /// storage server needs to judge any capability in the cluster.
    pub public_key: [u8; 32],
    /// Group-scoped, holder-bound token this server presents on outbound
    /// `ReplShip`s (primaries of replicated groups only).
    pub ship_token: Option<Bytes>,
    /// Tolerance for tokens minted by a process whose clock runs slightly
    /// ahead of ours (widens `not_before` only, never expiry).
    pub clock_skew: Duration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            chunk_size: 256 * 1024,
            pool_buffers: 8,
            batch_limit: 64,
            verify_every_op: false,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            store: StoreConfig::default(),
            wal: None,
            rpc: RpcConfig::default(),
            replica: None,
            signed: None,
        }
    }
}

/// Operation counters (read concurrently by experiments).
///
/// Each field is a [`Counter`] registered under `storage.*` in the
/// fabric's metric registry, so these show up in snapshots alongside
/// the transport and authorization metrics while remaining directly
/// readable here (`Counter` keeps the `AtomicU64` surface).
///
/// Registry names carry no server id: when several storage servers share
/// one network, they share these counters, which therefore read as the
/// *fabric-level aggregate* (the registry view a monitoring scrape
/// wants). Experiments needing per-server attribution count on the
/// client side or run single-server clusters.
#[derive(Debug)]
pub struct StorageStats {
    pub creates: Arc<Counter>,
    pub removes: Arc<Counter>,
    pub writes: Arc<Counter>,
    pub reads: Arc<Counter>,
    pub filtered_reads: Arc<Counter>,
    /// Input bytes scanned by server-side filters.
    pub bytes_filtered: Arc<Counter>,
    pub syncs: Arc<Counter>,
    pub bytes_pulled: Arc<Counter>,
    pub bytes_pushed: Arc<Counter>,
    pub busy_rejects: Arc<Counter>,
    pub txn_commits: Arc<Counter>,
    pub txn_aborts: Arc<Counter>,
    pub batches: Arc<Counter>,
    /// Times a worker had to wait for an earlier conflicting in-flight
    /// request before executing (the serialization cost of dependence).
    pub conflict_defers: Arc<Counter>,
    /// Mutations whose WAL records a primary shipped to its backups.
    pub repl_ships: Arc<Counter>,
    /// Extra ship attempts beyond the first (lost or rejected ships).
    pub ship_retries: Arc<Counter>,
    /// Ships abandoned at the deadline: the backup was dropped from the
    /// group (availability over replication).
    pub ship_failures: Arc<Counter>,
    /// Retried mutations answered from the reply cache instead of being
    /// re-applied — the exactly-once machinery doing its job.
    pub dedup_hits: Arc<Counter>,
}

impl Default for StorageStats {
    fn default() -> Self {
        Self::with_registry(&Registry::new())
    }
}

impl StorageStats {
    /// Build the stats block with its counters registered under
    /// `storage.*` in `registry`.
    pub fn with_registry(registry: &Registry) -> Self {
        Self {
            creates: registry.counter("storage.creates"),
            removes: registry.counter("storage.removes"),
            writes: registry.counter("storage.writes"),
            reads: registry.counter("storage.reads"),
            filtered_reads: registry.counter("storage.filtered_reads"),
            bytes_filtered: registry.counter("storage.bytes_filtered"),
            syncs: registry.counter("storage.syncs"),
            bytes_pulled: registry.counter("storage.bytes_pulled"),
            bytes_pushed: registry.counter("storage.bytes_pushed"),
            busy_rejects: registry.counter("storage.busy_rejects"),
            txn_commits: registry.counter("storage.txn_commits"),
            txn_aborts: registry.counter("storage.txn_aborts"),
            batches: registry.counter("storage.batches"),
            conflict_defers: registry.counter("storage.conflict_defer"),
            repl_ships: registry.counter("storage.repl_ships"),
            ship_retries: registry.counter("storage.ship_retries"),
            ship_failures: registry.counter("storage.ship_failures"),
            dedup_hits: registry.counter("storage.dedup_hits"),
        }
    }

    pub fn data_ops(&self) -> u64 {
        self.creates.get() + self.removes.get() + self.writes.get() + self.reads.get()
    }
}

/// The `component.op` label a request is traced under.
fn op_label(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::CreateObj { .. } => "storage.create",
        RequestBody::RemoveObj { .. } => "storage.remove",
        RequestBody::Write { .. } => "storage.write",
        RequestBody::Read { .. } => "storage.read",
        RequestBody::ReadFiltered { .. } => "storage.read_filtered",
        RequestBody::GetAttr { .. } => "storage.getattr",
        RequestBody::Sync { .. } => "storage.sync",
        RequestBody::ListObjs { .. } => "storage.list",
        RequestBody::InvalidateCaps { .. } => "storage.invalidate_caps",
        RequestBody::TxnPrepare { .. } => "storage.txn_prepare",
        RequestBody::TxnCommit { .. } => "storage.txn_commit",
        RequestBody::TxnAbort { .. } => "storage.txn_abort",
        RequestBody::ReplShip { .. } => "storage.repl_ship",
        RequestBody::PushEpochs { .. } => "storage.push_epochs",
        _ => "storage.other",
    }
}

/// Attach the WAL append/fsync intervals just measured to the request's
/// causal trace (no-op when the request is untraced; the fsync span is
/// omitted when the sync policy deferred the flush).
fn wal_spans(trace: &mut Option<&mut OpTrace<'_>>, timing: AppendTiming) {
    if let Some(t) = trace.as_deref_mut() {
        if timing.append_ns > 0 {
            t.span_with_duration("wal", "append", timing.append_ns);
        }
        if timing.fsync_ns > 0 {
            t.span_with_duration("wal", "fsync", timing.fsync_ns);
        }
    }
}

/// Client-visible mutations subject to replication: fenced to the primary,
/// deduplicated by `(client, opnum)`, and shipped before ack. Reads are
/// served by any in-sync member; `Sync` and cache control touch no
/// replicated state.
fn replicated_mutation(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::CreateObj { .. }
            | RequestBody::RemoveObj { .. }
            | RequestBody::Write { .. }
            | RequestBody::TxnPrepare { .. }
            | RequestBody::TxnCommit { .. }
            | RequestBody::TxnAbort { .. }
    )
}

fn encode_reply_body(body: &ReplyBody) -> Bytes {
    let mut buf = BytesMut::new();
    body.encode(&mut buf);
    buf.freeze()
}

fn decode_reply_body(wire: &Bytes) -> Result<ReplyBody> {
    let mut buf = wire.clone();
    ReplyBody::decode(&mut buf)
}

/// One unit of work handed from the dispatcher to the worker pool: the
/// request, its conflict-ordering ticket, and its in-progress trace.
struct Job<'s> {
    ticket: u64,
    req: Request,
    trace: Option<OpTrace<'s>>,
}

/// Undo journal entries for transactional rollback (§3.4). Never logged:
/// the write-ahead log records forward effects only, and recovery
/// recomputes these from in-order replay (see [`crate::recovery`]).
pub(crate) enum UndoOp {
    /// Creation is undone by removal.
    RemoveObject(ContainerId, ObjId),
    /// A write is undone by restoring its preimage.
    UndoWrite(ObjId, WritePreimage),
    /// A removal is undone by restoring the full object.
    RestoreObject(ContainerId, ObjId, Vec<u8>),
}

/// Shared (inspectable) state of a running storage server.
pub struct StorageServer {
    site: ProcessId,

    config: StorageConfig,
    store: ObjectStore,
    pool: PinnedBufferPool,
    verifier: Option<CachedCapVerifier>,
    /// Local signature-based capability enforcement (wire v5), when the
    /// cluster runs a signed cap mode.
    signed: Option<SignedCaps>,
    clock: Arc<dyn Clock>,
    journal: JournalStore<UndoOp>,
    /// The write-ahead log, when durability is configured.
    wal: Option<Wal>,
    /// Replication role/epoch state, when part of a replicated group.
    replica: Option<ReplicaState>,
    stats: StorageStats,
    /// The fabric-wide metric registry (shared through the `Network`).
    obs: Arc<Registry>,
}

/// Runtime state for signed-capability enforcement.
struct SignedCaps {
    mode: CapMode,
    verifier: LocalCapVerifier,
    /// Token presented on outbound ships (empty = none configured).
    ship_token: Bytes,
}

/// Handle to a running storage server thread.
pub struct StorageHandle {
    id: ProcessId,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StorageHandle {
    pub fn id(&self) -> ProcessId {
        self.id
    }

    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StorageHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl StorageServer {
    /// Spawn a storage server at `id`.
    ///
    /// `verifier` is the verify-through capability cache bound to the
    /// authorization service; passing `None` trusts structurally valid
    /// capabilities (unit tests only — a real deployment always verifies).
    ///
    /// With [`StorageConfig::wal`] set, the server first **recovers**: it
    /// opens the log directory (repairing any torn tail), replays the
    /// record stream into its object store, rolls back transactions the
    /// crash caught before phase 1, and restores prepared ones in doubt.
    /// Only then does it register on the network — a client can never
    /// observe a half-recovered server.
    ///
    /// # Panics
    /// Panics if the log cannot be opened or replayed: serving requests
    /// from an empty store while a history exists on disk would silently
    /// discard committed data.
    pub fn spawn(
        net: &Network,
        id: ProcessId,
        config: StorageConfig,
        verifier: Option<CachedCapVerifier>,
        clock: Arc<dyn Clock>,
    ) -> (StorageHandle, Arc<StorageServer>) {
        let obs = Arc::clone(net.obs());
        let store = ObjectStore::new(config.store.clone());
        let journal = JournalStore::new();
        let wal = config.wal.as_ref().map(|wal_cfg| {
            let start = std::time::Instant::now();
            let wal = Wal::open(wal_cfg.clone(), &obs)
                .unwrap_or_else(|e| panic!("storage server {id}: wal open failed: {e}"));
            let log = lwfs_wal::read_log(wal.dir())
                .unwrap_or_else(|e| panic!("storage server {id}: wal scan failed: {e}"));
            let outcome = crate::recovery::replay(&log.records, &store, &journal, clock.now())
                .unwrap_or_else(|e| panic!("storage server {id}: wal replay failed: {e}"));
            obs.counter("wal.replay_records").add(outcome.records);
            obs.gauge("storage.recovery_ms").set(start.elapsed().as_millis() as i64);
            obs.gauge("storage.recovered_objects").set(store.object_count() as i64);
            obs.gauge("storage.in_doubt_txns").set(outcome.in_doubt as i64);
            if outcome.records > 0 {
                obs.events().record(
                    id.nid.0,
                    "wal.recovery",
                    format!(
                        "replayed {} records: {} objects restored, {} txns in doubt",
                        outcome.records,
                        store.object_count(),
                        outcome.in_doubt
                    ),
                );
            }
            wal
        });
        let replica = config.replica.clone().map(ReplicaState::new);
        if let Some(repl) = &replica {
            obs.gauge("storage.repl_epoch").set(repl.epoch() as i64);
            obs.gauge("storage.repl_lag").set(0);
        }
        let signed = config.signed.as_ref().and_then(|sc| {
            if !sc.mode.signed() {
                return None;
            }
            let public = PublicKey::from_bytes(&sc.public_key)
                .unwrap_or_else(|| panic!("storage server {id}: invalid issuer public key"));
            Some(SignedCaps {
                mode: sc.mode,
                verifier: LocalCapVerifier::with_registry(
                    public,
                    sc.clock_skew.as_nanos().min(u128::from(u64::MAX)) as u64,
                    &obs,
                ),
                ship_token: sc.ship_token.clone().unwrap_or_default(),
            })
        });
        let server = Arc::new(StorageServer {
            site: id,
            store,
            pool: PinnedBufferPool::with_gauge(
                config.pool_buffers,
                config.chunk_size,
                Some(obs.gauge("storage.pool_in_use")),
            ),
            verifier,
            signed,
            clock,
            journal,
            wal,
            replica,
            stats: StorageStats::with_registry(&obs),
            obs,
            config,
        });
        let ep = net.register(id);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let srv = Arc::clone(&server);
        let thread = std::thread::Builder::new()
            .name(format!("lwfs-storage-{id}"))
            .spawn(move || srv.run(ep, stop2))
            .expect("spawn storage server");
        (StorageHandle { id, stop, thread: Some(thread) }, server)
    }

    /// The server's own process address (its back-pointer identity at the
    /// authorization service).
    pub fn site(&self) -> ProcessId {
        self.site
    }

    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub fn cap_cache_stats(&self) -> Option<lwfs_authz::CapCacheStats> {
        self.verifier.as_ref().map(|v| v.stats())
    }

    pub fn pool(&self) -> &PinnedBufferPool {
        &self.pool
    }

    /// This participant's journal state for `txn` (`None` once committed,
    /// aborted, or never seen). Crash tests use it to watch a restarted
    /// server re-enter `Prepared`.
    pub fn journal_state(&self, txn: TxnId) -> Option<JournalState> {
        self.journal.state(txn)
    }

    /// Prepared transactions held **in doubt**, sorted by id — after a
    /// restart, the set a coordinator must resolve.
    pub fn in_doubt_txns(&self) -> Vec<TxnId> {
        self.journal
            .txns()
            .into_iter()
            .filter(|(_, s)| *s == JournalState::Prepared)
            .map(|(t, _)| t)
            .collect()
    }

    /// The write-ahead log directory, when durability is configured.
    pub fn wal_dir(&self) -> Option<&std::path::Path> {
        self.wal.as_ref().map(|w| w.dir())
    }

    /// Replication state, when this server is part of a replicated group.
    pub fn replica(&self) -> Option<&ReplicaState> {
        self.replica.as_ref()
    }

    /// Control-plane promotion: become the group's primary at `epoch`,
    /// shipping to `backups` from now on. No-op on a standalone server.
    /// Requests racing the promotion see either the old backup role (and
    /// are retried by the client) or the new primary role, never both.
    pub fn promote(&self, epoch: u64, backups: Vec<ProcessId>) {
        if let Some(repl) = &self.replica {
            let prev = repl.epoch();
            repl.promote(epoch, backups);
            self.obs.gauge("storage.repl_epoch").set(epoch as i64);
            self.obs.events().record(
                self.site.nid.0,
                "repl.epoch_bump",
                format!("group {}: epoch {prev} -> {epoch} (promoted to primary)", repl.group()),
            );
        }
    }

    /// Control-plane removal of a dead backup from this primary's ship
    /// set. Returns whether it was actually a ship target.
    pub fn drop_backup(&self, id: ProcessId) -> bool {
        self.replica.as_ref().is_some_and(|repl| repl.drop_backup(id))
    }

    /// Control-plane notification that `primary` leads this server's group
    /// from `epoch` on: accept ships only from it. Installed on surviving
    /// backups *before* the new map is published, so the new primary's
    /// first ship is never refused. No-op on a standalone server.
    pub fn set_primary(&self, epoch: u64, primary: ProcessId) {
        if let Some(repl) = &self.replica {
            repl.set_primary(epoch, primary);
        }
    }

    /// This server's highest applied (backup) or fully-acked (primary)
    /// ship sequence — what the control plane compares across survivors to
    /// elect the most caught-up member.
    pub fn applied_seq(&self) -> u64 {
        self.replica.as_ref().map_or(0, |repl| repl.applied_seq())
    }

    /// Append `rec` to the write-ahead log (no-op when none is
    /// configured). Called after the in-memory effect is applied and
    /// before the reply is sent: an operation is acknowledged only once
    /// its record is framed (and, per the sync policy, durable).
    ///
    /// When this server is a replication primary the record is also
    /// collected into the request's `recs` buffer so the completed
    /// mutation can be shipped to the backups — the same bytes the log
    /// carries — before the client is acked.
    fn log_append(&self, rec: WalRecord, recs: &mut Vec<WalRecord>) -> Result<AppendTiming> {
        let timing = match &self.wal {
            Some(w) => w.append(&rec)?,
            None => AppendTiming::default(),
        };
        if self.replica.is_some() {
            recs.push(rec);
        }
        Ok(timing)
    }

    /// Append a record shipped *to* this backup: log only, no re-ship
    /// buffer (backups ship to nobody).
    fn log_append_shipped(&self, rec: &WalRecord) -> Result<AppendTiming> {
        match &self.wal {
            Some(w) => w.append(rec),
            None => Ok(AppendTiming::default()),
        }
    }

    // ------------------------------------------------------------------
    // Main loop: pipelined dispatcher + worker pool
    // ------------------------------------------------------------------

    fn run(&self, ep: Endpoint, stop: Arc<AtomicBool>) {
        let workers = self.config.workers.max(1);
        // Bounded hand-off: when workers fall behind, the dispatcher blocks
        // here, the transport's eager queue fills, and clients see
        // `ServerBusy` — the §3.2 back-pressure chain, undisturbed.
        let queue: WorkQueue<Job<'_>> =
            WorkQueue::bounded(self.config.batch_limit.max(workers * 2));
        let tracker = ConflictTracker::new();
        std::thread::scope(|s| {
            for idx in 0..workers {
                let (ep, queue, tracker) = (&ep, &queue, &tracker);
                s.spawn(move || self.worker_loop(idx, ep, queue, tracker));
            }
            self.dispatch_loop(&ep, &queue, &tracker, &stop);
            // Stop: let the workers drain what was already dispatched.
            queue.close();
        });
    }

    /// The dispatcher: receive, batch, elevator-order, ticket, hand off.
    fn dispatch_loop<'s>(
        &'s self,
        ep: &Endpoint,
        queue: &WorkQueue<Job<'s>>,
        tracker: &ConflictTracker,
        stop: &AtomicBool,
    ) {
        let mut scheduler = RequestScheduler::new();
        // Per-request traces started at arrival, so `queue_wait` (and the
        // end-to-end total) covers the time spent queued behind the batch.
        let mut traces: HashMap<u64, OpTrace<'s>> = HashMap::new();
        let queue_depth = self.obs.gauge("storage.queue_depth");
        // Tickets are the elevator release order; the conflict tracker
        // serializes dependent tickets by it.
        let mut next_ticket: u64 = 0;
        let poll = Duration::from_millis(5);
        while !stop.load(Ordering::SeqCst) {
            // Block for the first request of a batch…
            let first = ep.recv_match(
                poll,
                |e| matches!(e, Event::Message { match_bits, .. } if *match_bits == REQUEST_MATCH),
            );
            let first = match first {
                Ok(ev) => ev,
                Err(Error::Timeout) => continue,
                Err(_) => break,
            };
            self.enqueue(ep, &mut scheduler, &mut traces, first);
            // …then drain whatever else already arrived (the burst), up to
            // the batch limit, and release in elevator order.
            while scheduler.len() < self.config.batch_limit {
                match ep.recv_match(Duration::ZERO, |e| {
                    matches!(e, Event::Message { match_bits, .. } if *match_bits == REQUEST_MATCH)
                }) {
                    Ok(ev) => self.enqueue(ep, &mut scheduler, &mut traces, ev),
                    Err(_) => break,
                }
            }
            // Additive (not `set`): every server in the network shares
            // this fabric-level gauge, so it reads as total queued.
            queue_depth.add(scheduler.len() as i64);
            self.stats.batches.inc();
            for req in scheduler.drain_elevator() {
                // Dispatched: the request has left the scheduler queue
                // (depth counts queued requests, not those in service).
                queue_depth.dec();
                let ticket = next_ticket;
                next_ticket += 1;
                let trace = traces.remove(&req.req_id);
                // Register *before* pushing, in ticket order, so a worker
                // popping this job sees every earlier in-flight conflict.
                tracker.register(ticket, AccessSummary::of(&req));
                if queue.push(Job { ticket, req, trace }).is_err() {
                    tracker.complete(ticket);
                    return; // queue closed under us: shutting down
                }
            }
        }
    }

    /// One worker: pop tickets in FIFO order, wait out conflicts with
    /// earlier in-flight tickets, then run the full request path.
    ///
    /// Deadlock-free by construction: jobs are pushed and popped in ticket
    /// order, so the smallest incomplete ticket is always already on a
    /// worker — and `wait_turn` only ever waits on smaller tickets.
    fn worker_loop<'s>(
        &'s self,
        idx: usize,
        ep: &Endpoint,
        queue: &WorkQueue<Job<'s>>,
        tracker: &ConflictTracker,
    ) {
        // Workers share the endpoint's opnum allocator so their
        // verify-through RPCs can interleave without reply collisions.
        let client = RpcClient::shared(ep).configured(&self.config.rpc);
        let dispatch = self.obs.histogram("storage.dispatch_ns");
        let worker_dispatch = self.obs.histogram(&format!("storage.worker{idx}.dispatch_ns"));
        let in_flight = self.obs.gauge("storage.in_flight");
        let srv_in_flight = self.obs.gauge(&format!("storage.srv{}.in_flight", self.site.nid.0));
        while let Some(mut job) = queue.pop() {
            if tracker.wait_turn(job.ticket) {
                self.stats.conflict_defers.inc();
            }
            in_flight.inc();
            srv_in_flight.inc();
            if let Some(t) = job.trace.as_mut() {
                let waited = t.stage("queue_wait");
                dispatch.record(waited);
                worker_dispatch.record(waited);
            }
            // Every child request this job issues (verify-through to the
            // authorization service, ships, drop reports) carries the
            // incoming trace with this request as the parent — the causal
            // chain is *propagated*, never re-derived.
            client.set_trace(TraceContext {
                trace_id: job.req.trace.trace_id,
                parent_req_id: job.req.req_id,
            });
            let body = self.handle(ep, &client, &job.req, job.trace.as_mut());
            let rep = Reply::new(job.req.opnum, body);
            let _ = ep.send(
                job.req.reply_to,
                lwfs_portals::reply_match(job.req.opnum.0),
                rep.to_bytes(),
            );
            if let Some(mut t) = job.trace.take() {
                t.stage("reply");
                t.finish();
            }
            // Complete only after the reply is on the wire: a dependent
            // request must not observe the store before our reply orders
            // ahead of it at the client.
            tracker.complete(job.ticket);
            srv_in_flight.dec();
            in_flight.dec();
        }
    }

    fn enqueue<'s>(
        &'s self,
        ep: &Endpoint,
        scheduler: &mut RequestScheduler,
        traces: &mut HashMap<u64, OpTrace<'s>>,
        ev: Event,
    ) {
        if let Some(data) = ev.message_data() {
            if let Ok(req) = Request::from_bytes(data.clone()) {
                // Telemetry scrapes are annotation traffic, answered
                // straight from the dispatcher: a control request would
                // conflict-serialize behind every in-flight mutation, so a
                // queued scrape stalls for exactly as long as the stalled
                // write it is trying to observe — the monitor would lose
                // its window cadence at the moment the cluster degrades.
                // Answering here also keeps the scrape out of the trace
                // and latency series it reads.
                if let RequestBody::GetTelemetry { events_from } = &req.body {
                    let body = ReplyBody::Telemetry(lwfs_portals::telemetry_snapshot(
                        &self.obs,
                        *events_from,
                    ));
                    let rep = Reply::new(req.opnum, body);
                    let _ = ep.send(
                        req.reply_to,
                        lwfs_portals::reply_match(req.opnum.0),
                        rep.to_bytes(),
                    );
                    return;
                }
                if matches!(req.body, RequestBody::GetFlightTraces) {
                    let body = ReplyBody::FlightTraces(lwfs_portals::flight_traces(&self.obs));
                    let rep = Reply::new(req.opnum, body);
                    let _ = ep.send(
                        req.reply_to,
                        lwfs_portals::reply_match(req.opnum.0),
                        rep.to_bytes(),
                    );
                    return;
                }
                traces.insert(
                    req.req_id,
                    self.obs
                        .trace(req.req_id, op_label(&req.body))
                        .on_node(self.site.nid.0)
                        .in_trace(req.trace.trace_id),
                );
                scheduler.push(req);
            }
        }
    }

    // ------------------------------------------------------------------
    // Authorization
    // ------------------------------------------------------------------

    fn authorize(
        &self,
        client: &RpcClient<'_>,
        token: &Bytes,
        cap: &Capability,
        need: OpMask,
        obj: u64,
    ) -> Result<()> {
        if let Some(signed) = &self.signed {
            if !token.is_empty() {
                // Self-certifying path: the local verdict is final — a
                // forged, revoked, or expired token is refused here, never
                // "rescued" by a verify-through round trip (that would put
                // the authorization service back on the data path exactly
                // when an attacker controls the traffic).
                return signed.verifier.check(
                    token,
                    need,
                    cap.container(),
                    obj,
                    self.clock.now(),
                    0,
                );
            }
            if signed.mode == CapMode::Require {
                // No token, none accepted: v4-era unsigned requests are
                // shut out once the operator requires signed caps.
                return Err(Error::AccessDenied);
            }
            // `Signed` mode without a token: legacy fallback below.
        }
        match &self.verifier {
            Some(v) => {
                if self.config.verify_every_op {
                    // Ablation mode: behave as if there were no cache —
                    // every operation pays the verify-through round trip.
                    v.cache().invalidate(&[cap.cache_key()]);
                }
                v.check(client, cap, need, self.clock.now())
            }
            None => {
                if cap.grants(need) {
                    Ok(())
                } else {
                    Err(Error::AccessDenied)
                }
            }
        }
    }

    /// The local token verifier, when signed-capability enforcement is on
    /// (benchmarks read its observed epochs and flush its verdict cache).
    pub fn cap_verifier(&self) -> Option<&LocalCapVerifier> {
        self.signed.as_ref().map(|s| &s.verifier)
    }

    // ------------------------------------------------------------------
    // Request dispatch
    // ------------------------------------------------------------------

    /// Full request path: replication fencing and dedup around
    /// [`execute`](Self::execute), then ship-before-ack when this server
    /// is a group primary.
    fn handle(
        &self,
        ep: &Endpoint,
        client: &RpcClient<'_>,
        req: &Request,
        mut trace: Option<&mut OpTrace<'_>>,
    ) -> ReplyBody {
        if let Some(repl) = &self.replica {
            if matches!(req.body, RequestBody::ReplShip { .. }) {
                return self.handle_repl_ship(repl, req, trace);
            }
            if replicated_mutation(&req.body) {
                if repl.is_backup() {
                    // Mutations go to the primary; the client refreshes its
                    // group map and re-sends.
                    return ReplyBody::Err(Error::NotPrimary);
                }
                // Epoch fencing, primary side. The client's epoch is
                // *compared*, never folded in — an `observe_epoch` here
                // would let one rogue request inflate our epoch and fence
                // out every honest client; epochs advance only through the
                // control plane and authenticated ships. A mutation stamped
                // below our epoch routed on a retired map: refuse it so the
                // client refreshes. Epoch 0 means "no epoch info"
                // (transaction coordinators, unreplicated callers) and
                // always passes.
                if req.epoch != 0 && req.epoch < repl.epoch() {
                    return ReplyBody::Err(Error::NotPrimary);
                }
                // A retry of a mutation we already acked (the client failed
                // over, or our ack was lost) is answered from the cache —
                // never re-applied.
                if let Some(cached) = repl.replies.get(req.reply_to, req.opnum) {
                    self.stats.dedup_hits.inc();
                    if let Ok(body) = decode_reply_body(&cached) {
                        return body;
                    }
                }
            } else if repl.is_backup() && req.epoch > repl.epoch() {
                // Read-path fencing on a backup: the client routes by a map
                // newer than any epoch our primary or the control plane has
                // shown us. We may be the member that map just dropped
                // (ships stopped reaching us), so refusing is the only safe
                // answer — the client's sweep moves on to an in-sync
                // member instead of reading stale data here.
                return ReplyBody::Err(Error::NotPrimary);
            }
        }

        let mut recs = Vec::new();
        let body = self.execute(ep, client, req, trace.as_deref_mut(), &mut recs);

        if let Some(repl) = &self.replica {
            if replicated_mutation(&req.body) {
                // Ship whatever was logged — even when the op ultimately
                // failed, the backups must mirror any partial effects the
                // log already carries.
                if !recs.is_empty() {
                    self.ship(ep, repl, req, &recs, &body, trace);
                }
                // Cache the reply for dedup. Transient errors are *not*
                // cached: they mean "nothing happened, try again", and a
                // cached ServerBusy would make the retry loop permanent.
                if !matches!(&body, ReplyBody::Err(e) if e.is_transient()) {
                    repl.replies.put(req.reply_to, req.opnum, encode_reply_body(&body));
                }
            }
        }
        body
    }

    /// Execute one request against local state, collecting the WAL records
    /// it produced into `recs` (for replication shipping).
    fn execute(
        &self,
        ep: &Endpoint,
        client: &RpcClient<'_>,
        req: &Request,
        mut trace: Option<&mut OpTrace<'_>>,
        recs: &mut Vec<WalRecord>,
    ) -> ReplyBody {
        match &req.body {
            RequestBody::CreateObj { txn, cap, obj } => self
                .do_create(client, &req.token, *txn, cap, *obj, trace, recs)
                .map_or_else(ReplyBody::Err, ReplyBody::ObjCreated),
            RequestBody::RemoveObj { txn, cap, obj } => {
                match self.do_remove(client, &req.token, *txn, cap, *obj, trace, recs) {
                    Ok(()) => ReplyBody::ObjRemoved,
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::Write { txn, cap, obj, offset, len, md } => {
                match self.do_write(
                    ep,
                    client,
                    &req.token,
                    *txn,
                    cap,
                    *obj,
                    *offset,
                    *len,
                    *md,
                    req.reply_to,
                    trace,
                    recs,
                ) {
                    Ok(n) => ReplyBody::WriteDone { len: n },
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::Read { cap, obj, offset, len, md } => {
                match self.do_read(
                    ep,
                    client,
                    &req.token,
                    cap,
                    *obj,
                    *offset,
                    *len,
                    *md,
                    req.reply_to,
                ) {
                    Ok(n) => ReplyBody::ReadDone { len: n },
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::ReadFiltered { cap, obj, offset, len, filter, md } => {
                match self.do_read_filtered(
                    ep,
                    client,
                    &req.token,
                    cap,
                    *obj,
                    *offset,
                    *len,
                    filter,
                    *md,
                    req.reply_to,
                ) {
                    Ok((n, scanned)) => ReplyBody::FilteredDone { len: n, scanned },
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::GetAttr { cap, obj } => {
                match self
                    .authorize(client, &req.token, cap, OpMask::GETATTR, obj.0)
                    .and_then(|()| self.store.getattr(cap.container(), *obj))
                {
                    Ok(attr) => ReplyBody::Attr(attr),
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::Sync { cap, obj } => {
                match self
                    .authorize(client, &req.token, cap, OpMask::WRITE, obj.map_or(0, |o| o.0))
                    .and_then(|()| self.store.sync(*obj))
                {
                    Ok(_) => {
                        self.stats.syncs.inc();
                        ReplyBody::Synced
                    }
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::ListObjs { cap } => {
                match self.authorize(client, &req.token, cap, OpMask::GETATTR, 0) {
                    Ok(()) => ReplyBody::Objs(self.store.list(cap.container())),
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::InvalidateCaps { authz_epoch: _, keys } => {
                let dropped = self.verifier.as_ref().map(|v| v.invalidate(keys)).unwrap_or(0);
                ReplyBody::CapsInvalidated { dropped }
            }
            RequestBody::PushEpochs { epochs } => {
                // Epochs merge monotonically (max wins), so this needs no
                // sender authentication — like `InvalidateCaps`, the push
                // can only ever *narrow* what the server accepts.
                if let Some(signed) = &self.signed {
                    for b in epochs {
                        signed.verifier.observe_epoch(b.container, b.epoch);
                    }
                }
                ReplyBody::EpochsPushed
            }
            RequestBody::TxnPrepare { txn } => {
                let vote = self.journal.prepare(*txn);
                if vote {
                    // The yes vote must be durable before it reaches the
                    // coordinator (forces an fsync under every sync policy);
                    // a vote we cannot persist is a vote we cannot honor
                    // after a crash, so it becomes a no.
                    match self.log_append(WalRecord::TxnPrepare { txn: *txn }, recs) {
                        Ok(timing) => wal_spans(&mut trace, timing),
                        Err(_) => {
                            for undo in self.journal.abort(*txn).into_iter().rev() {
                                let _ = self.apply_undo(undo);
                            }
                            return ReplyBody::TxnVote(false);
                        }
                    }
                }
                ReplyBody::TxnVote(vote)
            }
            RequestBody::TxnCommit { txn } => {
                // Log the decision before applying it: if the append fails
                // the journal stays Prepared (in doubt) and the coordinator
                // retries or resolves after restart.
                if self.journal.state(*txn) == Some(JournalState::Prepared) {
                    match self.log_append(WalRecord::TxnCommit { txn: *txn }, recs) {
                        Ok(timing) => wal_spans(&mut trace, timing),
                        Err(e) => return ReplyBody::Err(e),
                    }
                }
                match self.journal.commit(*txn) {
                    Ok(_undos) => {
                        // Commit = forget the undo log; effects already applied.
                        self.stats.txn_commits.inc();
                        ReplyBody::TxnCommitted
                    }
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::TxnAbort { txn } => {
                // Best-effort: a lost abort record costs nothing — replay
                // presumes abort for transactions with no decision record.
                if let Ok(timing) = self.log_append(WalRecord::TxnAbort { txn: *txn }, recs) {
                    wal_spans(&mut trace, timing);
                }
                let undos = self.journal.abort(*txn);
                for undo in undos.into_iter().rev() {
                    // Undo application is best-effort by construction: each
                    // entry restores state that existed when it was staged.
                    let _ = self.apply_undo(undo);
                }
                self.stats.txn_aborts.inc();
                ReplyBody::TxnAborted
            }
            RequestBody::Ping => ReplyBody::Pong,
            RequestBody::GetTelemetry { events_from } => {
                ReplyBody::Telemetry(lwfs_portals::telemetry_snapshot(&self.obs, *events_from))
            }
            RequestBody::GetFlightTraces => {
                ReplyBody::FlightTraces(lwfs_portals::flight_traces(&self.obs))
            }
            other => {
                ReplyBody::Err(Error::Malformed(format!("storage service cannot handle {other:?}")))
            }
        }
    }

    // ------------------------------------------------------------------
    // Replication: ship-before-ack and the backup apply path
    // ------------------------------------------------------------------

    /// Ship one completed mutation's WAL records to every backup and wait
    /// for their acks — *before* the caller sends the client reply, so an
    /// acknowledged mutation is always on every in-sync replica.
    ///
    /// A backup that cannot ack within the ship deadline is dropped from
    /// the group (availability over replication): the write completes on
    /// the surviving members and the primary reports the drop to the
    /// group directory ([`report_dropped_backup`](Self::report_dropped_backup))
    /// so the republished map stops routing reads to — and can never
    /// promote — the out-of-sync member.
    fn ship(
        &self,
        ep: &Endpoint,
        repl: &ReplicaState,
        req: &Request,
        recs: &[WalRecord],
        body: &ReplyBody,
        mut trace: Option<&mut OpTrace<'_>>,
    ) {
        let backups = repl.backups();
        if backups.is_empty() {
            return;
        }
        let seq = repl.alloc_seq();
        let lag = self.obs.gauge("storage.repl_lag");
        lag.set(repl.lag() as i64);
        // The frames are byte-identical to what our own log carries; the
        // backup re-verifies the same CRCs the disk format uses.
        let frames: Vec<Bytes> = recs.iter().map(lwfs_wal::frame_record).collect();
        let reply = encode_reply_body(body);
        let epoch = repl.epoch();
        let start = Instant::now();
        // The ship is a child of the mutation being replicated: the backup
        // traces its apply under the same trace id.
        let trace_ctx = TraceContext { trace_id: req.trace.trace_id, parent_req_id: req.req_id };
        // Per-attempt reply timeout well under the total deadline, so a
        // dropped ship is re-sent (the backup's cache dedups) instead of
        // eating the whole budget in one wait.
        let ship_client = RpcClient::shared(ep).configured(&RpcConfig {
            reply_timeout: (repl.ship_deadline / 4).max(Duration::from_millis(50)),
            ..self.config.rpc.clone()
        });
        ship_client.set_trace(trace_ctx);
        for backup in backups {
            let ship_body = RequestBody::ReplShip {
                group: repl.group(),
                epoch,
                seq,
                origin: req.reply_to,
                origin_opnum: req.opnum,
                records: frames.clone(),
                reply: reply.clone(),
            };
            let policy = RetryPolicy {
                base: Duration::from_micros(200),
                cap: Duration::from_millis(20),
                deadline: repl.ship_deadline,
            };
            let mut attempts: u64 = 0;
            let backup_start = Instant::now();
            let outcome = retry::with_backoff(
                &policy,
                // Unreachable is retryable here: a partition may heal, and
                // ship-before-ack means we must not ack the client until
                // the backup has the records or is formally dropped.
                |e| matches!(e, Error::Timeout | Error::ServerBusy | Error::Unreachable),
                || {
                    attempts += 1;
                    let token =
                        self.signed.as_ref().map(|s| s.ship_token.clone()).unwrap_or_default();
                    match ship_client.call_with_token(backup, ship_body.clone(), token)? {
                        ReplyBody::ReplAck { .. } => Ok(()),
                        other => Err(Error::Internal(format!("unexpected ship reply {other:?}"))),
                    }
                },
            );
            let ship_ns = backup_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            if let Some(t) = trace.as_deref_mut() {
                // One span per backup; the retry window gets its own span
                // so outlier traces show *where* the deadline went.
                t.span_with_duration("repl", "ship", ship_ns);
                if attempts > 1 {
                    t.span_with_duration("repl", "ship_retry", ship_ns);
                }
            }
            self.stats.repl_ships.inc();
            if attempts > 1 {
                self.stats.ship_retries.add(attempts - 1);
            }
            if outcome.is_err() {
                repl.drop_backup(backup);
                self.stats.ship_failures.inc();
                // Journal the eviction *before* reporting it: the event
                // order (evict → directory republish) is the causal story
                // an operator reads back after an availability incident.
                self.obs.events().record(
                    self.site.nid.0,
                    "repl.evict_backup",
                    format!(
                        "group {} epoch {epoch}: backup {backup} missed the ship deadline \
                         after {attempts} attempts",
                        repl.group()
                    ),
                );
                self.report_dropped_backup(ep, repl, backup, trace_ctx);
            }
        }
        repl.record_acked(seq);
        lag.set(repl.lag() as i64);
        self.obs.histogram("storage.ship_ns").record(start.elapsed().as_nanos() as u64);
    }

    /// Tell the group directory that `backup` missed the ship deadline and
    /// left this primary's ship set, so the map is republished without it:
    /// clients stop sweeping reads to the out-of-sync replica, and a later
    /// election can never promote it over members that hold the
    /// acknowledged writes it missed.
    ///
    /// The republished map's epoch comes back in the reply and is folded
    /// in here; the next ship carries it to the surviving backups, while
    /// the dropped member — which no longer receives ships — stays behind
    /// and starts fencing fresh-map reads (see `handle`).
    fn report_dropped_backup(
        &self,
        ep: &Endpoint,
        repl: &ReplicaState,
        backup: ProcessId,
        trace_ctx: TraceContext,
    ) {
        let Some(dir) = repl.directory else {
            return;
        };
        let body =
            RequestBody::ReportDroppedBackup { group: repl.group(), epoch: repl.epoch(), backup };
        let policy = RetryPolicy {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            deadline: repl.ship_deadline,
        };
        let client = RpcClient::shared(ep);
        // The drop report is a child of the mutation whose ship failed.
        client.set_trace(trace_ctx);
        let outcome = retry::with_backoff(
            &policy,
            |e| matches!(e, Error::Timeout | Error::ServerBusy | Error::Unreachable),
            || match client.call(dir, body.clone())? {
                ReplyBody::GroupMapReply(map) => Ok(map.epoch),
                other => Err(Error::Internal(format!("unexpected directory reply {other:?}"))),
            },
        );
        match outcome {
            Ok(epoch) => {
                repl.observe_epoch(epoch);
                self.obs.counter("storage.drop_reports").inc();
            }
            // `AccessDenied` means the published map no longer names us
            // primary — we were deposed mid-ship and the new leadership
            // owns membership now. Either way the local ship set already
            // shrank; the report is best-effort.
            Err(_) => {
                self.obs.counter("storage.drop_report_failures").inc();
            }
        }
    }

    /// Backup side of the ship: verify, log, apply through the crash
    /// recovery machinery, cache the primary's reply for dedup, ack.
    ///
    /// The ship request arrives stamped with the originating mutation's
    /// [`TraceContext`], so the `log`/`apply` stages recorded here land in
    /// the *client's* trace — the backup is one more node on its timeline.
    fn handle_repl_ship(
        &self,
        repl: &ReplicaState,
        req: &Request,
        mut trace: Option<&mut OpTrace<'_>>,
    ) -> ReplyBody {
        let RequestBody::ReplShip { group, epoch, seq, origin, origin_opnum, records, reply } =
            &req.body
        else {
            unreachable!("caller matched ReplShip");
        };
        if *group != repl.group() {
            return ReplyBody::Err(Error::Malformed(format!(
                "ship for group {group} at a member of group {}",
                repl.group()
            )));
        }
        // Fencing: a ship from a deposed primary (older epoch) is refused;
        // so is any ship once *we* are the primary.
        if *epoch < repl.epoch() || repl.is_primary() {
            return ReplyBody::Err(Error::NotPrimary);
        }
        // Sender authorization. Ships apply WAL records without capability
        // checks, so the one acceptable sender is the group's current
        // primary — as installed by the control plane at spawn or
        // promotion, never learned from the wire. A rogue endpoint that
        // read the topology off the public `GetGroupMap` is refused before
        // anything is logged, applied, or cached.
        if repl.known_primary() != Some(req.reply_to) {
            return ReplyBody::Err(Error::AccessDenied);
        }
        // Cryptographic sender authentication (wire v5): the ship must
        // carry a group-scoped token bound to the sending node. The
        // known-primary check above pins *which* process may ship; this
        // one proves the bytes actually come from a holder the issuer
        // authorized for the group, so a spoofed `reply_to` is not enough.
        if let Some(signed) = &self.signed {
            if !req.token.is_empty() {
                if let Err(e) = signed.verifier.check_group(
                    &req.token,
                    *group,
                    self.clock.now(),
                    req.reply_to.nid.0,
                ) {
                    return ReplyBody::Err(e);
                }
            } else if signed.mode == CapMode::Require {
                return ReplyBody::Err(Error::AccessDenied);
            }
        }
        repl.observe_epoch(*epoch);
        // A re-shipped batch (our earlier ack was lost) is acked from the
        // cache, never re-applied.
        if repl.replies.get(*origin, *origin_opnum).is_some() {
            self.stats.dedup_hits.inc();
            repl.record_acked(*seq);
            return ReplyBody::ReplAck { seq: *seq };
        }
        let mut recs = Vec::with_capacity(records.len());
        for frame in records {
            match lwfs_wal::unframe_record(frame) {
                Ok(rec) => recs.push(rec),
                Err(e) => return ReplyBody::Err(e),
            }
        }
        // Our own log first (the records must survive *our* crash before
        // the primary treats them as replicated), then the same in-order
        // application crash replay uses — minus its end-of-log
        // presumed-abort pass, because the primary's log has not ended.
        let mut timing = AppendTiming::default();
        for rec in &recs {
            match self.log_append_shipped(rec) {
                Ok(t) => {
                    timing.append_ns += t.append_ns;
                    timing.fsync_ns += t.fsync_ns;
                }
                Err(e) => return ReplyBody::Err(e),
            }
        }
        if let Some(t) = trace.as_mut() {
            t.stage("log");
        }
        wal_spans(&mut trace, timing);
        if let Err(e) =
            crate::recovery::apply_records(&recs, &self.store, &self.journal, self.clock.now())
        {
            return ReplyBody::Err(e);
        }
        if let Some(t) = trace.as_mut() {
            t.stage("apply");
        }
        repl.replies.put(*origin, *origin_opnum, reply.clone());
        repl.record_acked(*seq);
        ReplyBody::ReplAck { seq: *seq }
    }

    fn apply_undo(&self, undo: UndoOp) -> Result<()> {
        match undo {
            UndoOp::RemoveObject(container, oid) => self.store.remove(container, oid),
            UndoOp::UndoWrite(oid, pre) => self.store.undo_write(oid, &pre),
            UndoOp::RestoreObject(container, oid, data) => {
                let now = self.clock.now();
                self.store.create(container, Some(oid), now)?;
                self.store.write(container, oid, 0, &data, now)?;
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn do_create(
        &self,
        client: &RpcClient<'_>,
        token: &Bytes,
        txn: Option<TxnId>,
        cap: &Capability,
        want: Option<ObjId>,
        mut trace: Option<&mut OpTrace<'_>>,
        recs: &mut Vec<WalRecord>,
    ) -> Result<ObjId> {
        self.authorize(client, token, cap, OpMask::CREATE, want.map_or(0, |o| o.0))?;
        if let Some(t) = trace.as_deref_mut() {
            t.stage("authorize");
        }
        let now = self.clock.now();
        let oid = self.store.create(cap.container(), want, now)?;
        if let Some(txn) = txn {
            self.journal.stage(txn, UndoOp::RemoveObject(cap.container(), oid))?;
        }
        let timing = self.log_append(
            WalRecord::Create { txn, container: cap.container(), obj: oid, now },
            recs,
        )?;
        wal_spans(&mut trace, timing);
        self.stats.creates.inc();
        Ok(oid)
    }

    #[allow(clippy::too_many_arguments)]
    fn do_remove(
        &self,
        client: &RpcClient<'_>,
        token: &Bytes,
        txn: Option<TxnId>,
        cap: &Capability,
        oid: ObjId,
        mut trace: Option<&mut OpTrace<'_>>,
        recs: &mut Vec<WalRecord>,
    ) -> Result<()> {
        self.authorize(client, token, cap, OpMask::REMOVE, oid.0)?;
        if let Some(t) = trace.as_deref_mut() {
            t.stage("authorize");
        }
        if let Some(txn) = txn {
            let data = self.store.read(cap.container(), oid, 0, u64::MAX)?;
            self.journal.stage(txn, UndoOp::RestoreObject(cap.container(), oid, data))?;
        }
        self.store.remove(cap.container(), oid)?;
        let timing =
            self.log_append(WalRecord::Remove { txn, container: cap.container(), obj: oid }, recs)?;
        wal_spans(&mut trace, timing);
        self.stats.removes.inc();
        Ok(())
    }

    /// Server-directed write: pull `len` bytes from the client's MD in
    /// chunks through the pinned pool, writing each chunk to the store.
    ///
    /// The per-request `trace` (when present) is decomposed into the
    /// Figure 6 stages: `authorize`, then one `pull` + `store_write` span
    /// pair per chunk crossing the pinned pool.
    #[allow(clippy::too_many_arguments)]
    fn do_write(
        &self,
        ep: &Endpoint,
        client: &RpcClient<'_>,
        token: &Bytes,
        txn: Option<TxnId>,
        cap: &Capability,
        oid: ObjId,
        offset: u64,
        len: u64,
        md: MdHandle,
        requester: ProcessId,
        mut trace: Option<&mut OpTrace<'_>>,
        recs: &mut Vec<WalRecord>,
    ) -> Result<u64> {
        self.authorize(client, token, cap, OpMask::WRITE, oid.0)?;
        // Pre-flight the object so a bad id fails before moving data.
        let container = self.store.container_of(oid)?;
        if container != cap.container() {
            return Err(Error::AccessDenied);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.stage("authorize");
        }
        let now = self.clock.now();
        let mut moved: u64 = 0;
        while moved < len {
            let chunk = ((len - moved) as usize).min(self.config.chunk_size);
            let mut buf = match self.pool.try_acquire() {
                Some(b) => b,
                None => {
                    // Pool exhausted: reject; the client backs off and
                    // re-sends (flow control of §3.2).
                    self.stats.busy_rejects.inc();
                    return Err(Error::ServerBusy);
                }
            };
            // One-sided pull from the client's posted descriptor.
            let data = ep.get(requester, md.match_bits, moved, chunk)?;
            buf.as_mut_slice()[..chunk].copy_from_slice(&data);
            if let Some(t) = trace.as_deref_mut() {
                t.stage("pull");
            }
            let pre = self.store.write(
                cap.container(),
                oid,
                offset + moved,
                &buf.as_slice()[..chunk],
                now,
            )?;
            if let Some(txn) = txn {
                self.journal.stage(txn, UndoOp::UndoWrite(oid, pre))?;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.stage("store_write");
            }
            // One record per chunk, in pull order: replay reproduces the
            // exact same sequence of store writes.
            let timing = self.log_append(
                WalRecord::Write {
                    txn,
                    container: cap.container(),
                    obj: oid,
                    offset: offset + moved,
                    data: Bytes::copy_from_slice(&buf.as_slice()[..chunk]),
                    now,
                },
                recs,
            )?;
            if let Some(t) = trace.as_deref_mut() {
                t.stage("wal_append");
            }
            wal_spans(&mut trace, timing);
            self.stats.bytes_pulled.add(chunk as u64);
            moved += chunk as u64;
        }
        self.stats.writes.inc();
        Ok(moved)
    }

    /// Server-directed read: push object bytes into the client's MD.
    #[allow(clippy::too_many_arguments)]
    fn do_read(
        &self,
        ep: &Endpoint,
        client: &RpcClient<'_>,
        token: &Bytes,
        cap: &Capability,
        oid: ObjId,
        offset: u64,
        len: u64,
        md: MdHandle,
        requester: ProcessId,
    ) -> Result<u64> {
        self.authorize(client, token, cap, OpMask::READ, oid.0)?;
        let mut moved: u64 = 0;
        while moved < len {
            let chunk = ((len - moved) as usize).min(self.config.chunk_size);
            let mut buf = match self.pool.try_acquire() {
                Some(b) => b,
                None => {
                    self.stats.busy_rejects.inc();
                    return Err(Error::ServerBusy);
                }
            };
            let data = self.store.read(cap.container(), oid, offset + moved, chunk as u64)?;
            if data.is_empty() {
                break; // end of object: short read
            }
            buf.as_mut_slice()[..data.len()].copy_from_slice(&data);
            ep.put(requester, md.match_bits, moved, &buf.as_slice()[..data.len()])?;
            self.stats.bytes_pushed.add(data.len() as u64);
            moved += data.len() as u64;
            if data.len() < chunk {
                break;
            }
        }
        self.stats.reads.inc();
        Ok(moved)
    }

    /// Remote filtering (§6 extension): read the range locally, run the
    /// filter on the server, and push only the result. A READ capability
    /// authorizes it — filtering never reveals more than a read would.
    #[allow(clippy::too_many_arguments)]
    fn do_read_filtered(
        &self,
        ep: &Endpoint,
        client: &RpcClient<'_>,
        token: &Bytes,
        cap: &Capability,
        oid: ObjId,
        offset: u64,
        len: u64,
        filter: &FilterSpec,
        md: MdHandle,
        requester: ProcessId,
    ) -> Result<(u64, u64)> {
        self.authorize(client, token, cap, OpMask::READ, oid.0)?;
        let data = self.store.read(cap.container(), oid, offset, len)?;
        let (result, scanned) = crate::filter::apply(filter, &data);
        // Push the (typically tiny) result in chunks through the pool,
        // same as an ordinary read.
        let mut moved = 0usize;
        while moved < result.len() {
            let chunk = (result.len() - moved).min(self.config.chunk_size);
            let buf = self.pool.try_acquire();
            if buf.is_none() {
                self.stats.busy_rejects.inc();
                return Err(Error::ServerBusy);
            }
            ep.put(requester, md.match_bits, moved as u64, &result[moved..moved + chunk])?;
            moved += chunk;
        }
        self.stats.filtered_reads.inc();
        self.stats.bytes_filtered.add(scanned);
        self.stats.bytes_pushed.add(result.len() as u64);
        Ok((result.len() as u64, scanned))
    }
}
