//! Worker-pool dispatch for the storage server: the bounded job queue
//! that feeds requests from the dispatcher to the workers, and the
//! in-flight conflict tracker that lets *independent* requests run
//! concurrently while dependent ones still execute in release order.
//!
//! §3.2 builds the server around a queue of pending requests precisely so
//! the server can overlap many transfers. The [`crate::RequestScheduler`]
//! decides the *release order* of a batch; this module enforces that
//! order **only between dependent requests** once they are in flight on
//! several workers. Two requests are dependent exactly when the elevator
//! scheduler says so: same object, overlapping byte ranges, at least one
//! writes — control requests are conservatively dependent on everything.
//! The single definition lives in [`AccessSummary::conflicts`]; the
//! scheduler delegates to it so the two layers cannot drift.

use std::collections::VecDeque;

use lwfs_proto::{ObjId, Request, RequestBody};
use parking_lot::{Condvar, Mutex};

/// The byte range a data request touches: `(object, start, end, writes)`.
/// `end` saturates rather than wraps, so a hostile `offset + len` cannot
/// fake independence (the overflow fixed in `scheduler::range_of`).
pub type AccessRange = (ObjId, u64, u64, bool);

/// What the conflict tracker needs to know about a request: its access
/// range, or `None` for control requests (create/remove/sync/txn/…),
/// which act as full barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSummary(Option<AccessRange>);

impl AccessSummary {
    /// Summarize a request.
    pub fn of(req: &Request) -> Self {
        AccessSummary(match &req.body {
            RequestBody::Write { obj, offset, len, .. } => {
                Some((*obj, *offset, offset.saturating_add(*len), true))
            }
            RequestBody::Read { obj, offset, len, .. } => {
                Some((*obj, *offset, offset.saturating_add(*len), false))
            }
            _ => None,
        })
    }

    /// The underlying range (`None` for control requests).
    pub fn range(&self) -> Option<AccessRange> {
        self.0
    }

    /// May `self` and `other` *not* be reordered or overlapped?
    ///
    /// This is the dependency relation of §3.2: same object, overlapping
    /// ranges, at least one side writing. Control requests conflict with
    /// everything.
    pub fn conflicts(&self, other: &AccessSummary) -> bool {
        match (self.0, other.0) {
            (Some((oa, sa, ea, wa)), Some((ob, sb, eb, wb))) => {
                oa == ob && sa < eb && sb < ea && (wa || wb)
            }
            _ => true,
        }
    }
}

/// An in-flight (dispatched but not completed) request.
#[derive(Debug)]
struct InFlight {
    ticket: u64,
    summary: AccessSummary,
}

/// Tracks every dispatched-but-incomplete request so workers can overlap
/// independent requests while dependent ones wait their turn.
///
/// Protocol: the dispatcher calls [`register`](Self::register) in release
/// (ticket) order before handing the job to the worker pool; the worker
/// calls [`wait_turn`](Self::wait_turn) before executing and
/// [`complete`](Self::complete) after replying. Because jobs are popped
/// from a FIFO queue in ticket order, the smallest incomplete ticket is
/// always already on a worker and never waits — so the pool can never
/// deadlock, whatever the conflict graph.
#[derive(Debug, Default)]
pub struct ConflictTracker {
    inner: Mutex<Vec<InFlight>>,
    done: Condvar,
}

impl ConflictTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a dispatched request. Must be called in ticket order (the
    /// dispatcher's release order) so `wait_turn` sees every earlier
    /// request it might conflict with.
    pub fn register(&self, ticket: u64, summary: AccessSummary) {
        self.inner.lock().push(InFlight { ticket, summary });
    }

    /// Block until no earlier-ticket in-flight request conflicts with
    /// `ticket`. Returns `true` when the request actually had to wait —
    /// a conflict deferral, surfaced as `storage.conflict_defer`.
    pub fn wait_turn(&self, ticket: u64) -> bool {
        let mut inner = self.inner.lock();
        let me = inner
            .iter()
            .find(|f| f.ticket == ticket)
            .map(|f| f.summary)
            .expect("wait_turn on an unregistered ticket");
        let mut deferred = false;
        while inner.iter().any(|f| f.ticket < ticket && me.conflicts(&f.summary)) {
            deferred = true;
            self.done.wait(&mut inner);
        }
        deferred
    }

    /// Mark `ticket` complete and wake every waiter to rescan.
    pub fn complete(&self, ticket: u64) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.iter().position(|f| f.ticket == ticket) {
            inner.swap_remove(pos);
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Dispatched-but-incomplete requests (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().len()
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC job queue (mutex + condvar — the same selective-wakeup
/// shape as the endpoint event queue).
///
/// `push` blocks while the queue is full: the bound is what lets the
/// transport's bounded eager queue — and ultimately the client back-off
/// loop of §3.2 — provide end-to-end flow control even though the
/// dispatcher no longer services requests synchronously.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    changed: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// A queue admitting at most `capacity` queued jobs.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "work queue needs real capacity");
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            changed: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue a job, blocking while the queue is full. Returns the job
    /// when the queue has been closed instead.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock();
        while st.items.len() >= self.capacity && !st.closed {
            self.changed.wait(&mut st);
        }
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.changed.notify_all();
        Ok(())
    }

    /// Dequeue the next job in FIFO order, blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.changed.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.changed.wait(&mut st);
        }
    }

    /// Close the queue: `push` starts failing, `pop` drains the remainder
    /// and then returns `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.changed.notify_all();
    }

    /// Jobs currently queued (diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_proto::{
        Capability, CapabilityBody, ContainerId, Lifetime, MdHandle, OpMask, OpNum, PrincipalId,
        ProcessId, Signature,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn cap() -> Capability {
        Capability {
            body: CapabilityBody {
                container: ContainerId(1),
                ops: OpMask::ALL,
                principal: PrincipalId(1),
                issuer_epoch: 1,
                lifetime: Lifetime::UNBOUNDED,
                serial: 0,
            },
            sig: Signature([0; 16]),
        }
    }

    fn write_req(obj: u64, offset: u64, len: u64) -> Request {
        Request::new(
            OpNum(0),
            ProcessId::new(0, 0),
            RequestBody::Write {
                txn: None,
                cap: cap(),
                obj: ObjId(obj),
                offset,
                len,
                md: MdHandle { match_bits: 0 },
            },
        )
    }

    fn read_req(obj: u64, offset: u64, len: u64) -> Request {
        Request::new(
            OpNum(0),
            ProcessId::new(0, 0),
            RequestBody::Read {
                cap: cap(),
                obj: ObjId(obj),
                offset,
                len,
                md: MdHandle { match_bits: 0 },
            },
        )
    }

    #[test]
    fn summaries_mirror_dependency_relation() {
        let a = AccessSummary::of(&write_req(1, 0, 100));
        let b = AccessSummary::of(&write_req(1, 50, 100));
        let c = AccessSummary::of(&write_req(2, 0, 100));
        let r = AccessSummary::of(&read_req(1, 0, 100));
        let r2 = AccessSummary::of(&read_req(1, 0, 100));
        assert!(a.conflicts(&b), "overlapping writes conflict");
        assert!(!a.conflicts(&c), "distinct objects are independent");
        assert!(a.conflicts(&r), "write vs overlapping read conflicts");
        assert!(!r.conflicts(&r2), "two reads never conflict");
        let ctl = AccessSummary::of(&Request::new(
            OpNum(0),
            ProcessId::new(0, 0),
            RequestBody::Sync { cap: cap(), obj: None },
        ));
        assert!(ctl.conflicts(&a) && a.conflicts(&ctl), "control ops are barriers");
    }

    #[test]
    fn saturating_range_keeps_near_max_offsets_dependent() {
        // offset + len would wrap to a tiny end and report independence.
        let a = AccessSummary::of(&write_req(1, u64::MAX - 1, 16));
        let b = AccessSummary::of(&write_req(1, u64::MAX - 8, 16));
        assert!(a.conflicts(&b));
    }

    #[test]
    fn independent_tickets_never_wait() {
        let t = ConflictTracker::new();
        t.register(0, AccessSummary::of(&write_req(1, 0, 10)));
        t.register(1, AccessSummary::of(&write_req(2, 0, 10)));
        assert!(!t.wait_turn(1), "independent request proceeds immediately");
        assert!(!t.wait_turn(0));
        t.complete(0);
        t.complete(1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn dependent_ticket_waits_for_earlier_completion() {
        let t = Arc::new(ConflictTracker::new());
        t.register(0, AccessSummary::of(&write_req(1, 0, 100)));
        t.register(1, AccessSummary::of(&write_req(1, 50, 100)));
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || t2.wait_turn(1));
        // Give the waiter time to block on the conflict.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!waiter.is_finished(), "dependent request must wait");
        t.complete(0);
        assert!(waiter.join().unwrap(), "the wait is reported as a deferral");
        t.complete(1);
    }

    #[test]
    fn work_queue_is_fifo_and_drains_after_close() {
        let q: WorkQueue<u32> = WorkQueue::bounded(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err(), "push after close fails");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::bounded(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(1));
        assert!(pusher.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
    }

    proptest::proptest! {
        /// The in-flight conflict relation agrees with the scheduler's
        /// `dependent()` on arbitrary request pairs — the two layers share
        /// one definition, and this pins that they can never drift. Also
        /// checks symmetry and a brute-force range-overlap oracle.
        #[test]
        fn prop_conflicts_agrees_with_scheduler_dependent(
            a_kind in 0u32..3, a_obj in 0u64..3, a_off in 0u64..64, a_len in 0u64..32, a_hi in proptest::bool::ANY,
            b_kind in 0u32..3, b_obj in 0u64..3, b_off in 0u64..64, b_len in 0u64..32, b_hi in proptest::bool::ANY,
        ) {
            fn make(kind: u32, obj: u64, off: u64, len: u64, hi: bool) -> Request {
                // `hi` pushes the range against u64::MAX to cover the
                // saturating-end regime alongside ordinary offsets.
                let off = if hi { u64::MAX - off } else { off };
                match kind {
                    0 => write_req(obj, off, len),
                    1 => read_req(obj, off, len),
                    _ => Request::new(
                        OpNum(0),
                        ProcessId::new(0, 0),
                        RequestBody::Sync { cap: cap(), obj: None },
                    ),
                }
            }
            let a = make(a_kind, a_obj, a_off, a_len, a_hi);
            let b = make(b_kind, b_obj, b_off, b_len, b_hi);
            let tracker_view = AccessSummary::of(&a).conflicts(&AccessSummary::of(&b));
            proptest::prop_assert_eq!(tracker_view, crate::scheduler::dependent(&a, &b));
            proptest::prop_assert_eq!(
                tracker_view,
                AccessSummary::of(&b).conflicts(&AccessSummary::of(&a)),
                "conflict relation must be symmetric"
            );
            // Independent oracle for the data/data case.
            if a_kind < 2 && b_kind < 2 {
                let (sa, ea) = {
                    let o = if a_hi { u64::MAX - a_off } else { a_off };
                    (o, o.saturating_add(a_len))
                };
                let (sb, eb) = {
                    let o = if b_hi { u64::MAX - b_off } else { b_off };
                    (o, o.saturating_add(b_len))
                };
                let overlap = a_obj == b_obj && sa < eb && sb < ea;
                let writes = a_kind == 0 || b_kind == 0;
                proptest::prop_assert_eq!(tracker_view, overlap && writes);
            } else {
                proptest::prop_assert!(tracker_view, "control requests are barriers");
            }
        }
    }

    #[test]
    fn pool_of_consumers_processes_everything_in_conflict_order() {
        // 4 workers, interleaved dependent chains on two objects: every
        // object's writes must land in ticket order.
        let q: Arc<WorkQueue<(u64, u64)>> = Arc::new(WorkQueue::bounded(64));
        let tracker = Arc::new(ConflictTracker::new());
        let log: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seq = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let tracker = Arc::clone(&tracker);
                let log = Arc::clone(&log);
                let seq = Arc::clone(&seq);
                std::thread::spawn(move || {
                    while let Some((ticket, obj)) = q.pop() {
                        tracker.wait_turn(ticket);
                        // Jitter makes out-of-order execution likely if the
                        // tracker fails to serialize dependents.
                        std::thread::sleep(std::time::Duration::from_micros(
                            seq.fetch_add(1, Ordering::Relaxed) % 97,
                        ));
                        log.lock().push((obj, ticket));
                        tracker.complete(ticket);
                    }
                })
            })
            .collect();
        for ticket in 0..40u64 {
            let obj = ticket % 2;
            // All same-object writes overlap: ticket order is mandatory.
            tracker.register(ticket, AccessSummary::of(&write_req(obj, 0, 8)));
            q.push((ticket, obj)).unwrap();
        }
        q.close();
        for w in workers {
            w.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), 40);
        for obj in 0..2u64 {
            let per: Vec<u64> = log.iter().filter(|(o, _)| *o == obj).map(|(_, t)| *t).collect();
            assert!(per.windows(2).all(|w| w[0] < w[1]), "object {obj} out of order: {per:?}");
        }
    }
}
