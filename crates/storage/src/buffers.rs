//! The pinned transfer-buffer pool of Figure 6.
//!
//! A storage server stages one-sided transfers through a *fixed* set of
//! pinned buffers: that bound is what lets the server absorb a burst of
//! tens of thousands of requests without unbounded memory growth — requests
//! that cannot get a buffer wait in the queue or are rejected, and the
//! *server* decides when each transfer proceeds (server-directed I/O).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lwfs_obs::Gauge;
use parking_lot::Mutex;

/// A bounded pool of fixed-size transfer buffers.
pub struct PinnedBufferPool {
    buffer_size: usize,
    free: Mutex<Vec<Vec<u8>>>,
    total: usize,
    /// Times a caller found the pool empty (a flow-control event). A pure
    /// counter on the hot acquire path shared by every worker — atomic,
    /// not a lock.
    exhausted: AtomicU64,
    /// Optional occupancy gauge (buffers checked out), updated on every
    /// acquire and release. Updates are additive (inc/dec, never set) so
    /// several pools sharing one fabric-level gauge aggregate correctly.
    gauge: Option<Arc<Gauge>>,
}

impl PinnedBufferPool {
    /// Create a pool of `count` buffers of `buffer_size` bytes each.
    pub fn new(count: usize, buffer_size: usize) -> Self {
        Self::with_gauge(count, buffer_size, None)
    }

    /// Like [`new`](Self::new), but mirrors the in-use buffer count into
    /// `gauge` (typically `storage.pool_in_use` from the fabric registry).
    pub fn with_gauge(count: usize, buffer_size: usize, gauge: Option<Arc<Gauge>>) -> Self {
        assert!(count > 0 && buffer_size > 0, "pool must have real buffers");
        Self {
            buffer_size,
            free: Mutex::new((0..count).map(|_| vec![0u8; buffer_size]).collect()),
            total: count,
            exhausted: AtomicU64::new(0),
            gauge,
        }
    }

    pub fn buffer_size(&self) -> usize {
        self.buffer_size
    }

    pub fn capacity(&self) -> usize {
        self.total
    }

    pub fn available(&self) -> usize {
        self.free.lock().len()
    }

    /// Times acquisition failed because the pool was empty.
    pub fn exhaustion_count(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Try to take a buffer; `None` when the pool is exhausted.
    pub fn try_acquire(&self) -> Option<PooledBuffer<'_>> {
        let buf = self.free.lock().pop();
        match buf {
            Some(data) => {
                if let Some(g) = &self.gauge {
                    g.inc();
                }
                Some(PooledBuffer { pool: self, data: Some(data) })
            }
            None => {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// A buffer checked out of the pool; returned on drop.
pub struct PooledBuffer<'a> {
    pool: &'a PinnedBufferPool,
    data: Option<Vec<u8>>,
}

impl PooledBuffer<'_> {
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.data.as_mut().expect("buffer present until drop")
    }

    pub fn as_slice(&self) -> &[u8] {
        self.data.as_ref().expect("buffer present until drop")
    }
}

impl Drop for PooledBuffer<'_> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            self.pool.free.lock().push(data);
            if let Some(g) = &self.pool.gauge {
                g.dec();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let pool = PinnedBufferPool::new(2, 1024);
        assert_eq!(pool.available(), 2);
        let b1 = pool.try_acquire().unwrap();
        let b2 = pool.try_acquire().unwrap();
        assert_eq!(pool.available(), 0);
        assert!(pool.try_acquire().is_none());
        assert_eq!(pool.exhaustion_count(), 1);
        drop(b1);
        assert_eq!(pool.available(), 1);
        let b3 = pool.try_acquire().unwrap();
        drop(b2);
        drop(b3);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn buffers_have_requested_size() {
        let pool = PinnedBufferPool::new(1, 4096);
        let mut b = pool.try_acquire().unwrap();
        assert_eq!(b.as_slice().len(), 4096);
        b.as_mut_slice()[0] = 0xAB;
        assert_eq!(b.as_slice()[0], 0xAB);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = PinnedBufferPool::new(0, 1024);
    }

    #[test]
    fn gauge_tracks_occupancy() {
        let g = Arc::new(Gauge::new());
        let pool = PinnedBufferPool::with_gauge(2, 64, Some(Arc::clone(&g)));
        let b1 = pool.try_acquire().unwrap();
        assert_eq!(g.get(), 1);
        let b2 = pool.try_acquire().unwrap();
        assert_eq!(g.get(), 2);
        drop(b1);
        assert_eq!(g.get(), 1);
        drop(b2);
        assert_eq!(g.get(), 0);
    }
}
