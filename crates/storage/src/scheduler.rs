//! Elevator reordering of queued, independent requests.
//!
//! §3.2: "The server can also re-order independent requests to improve
//! access to the storage device" (citing Thakur & Choudhary). The scheduler batches whatever
//! requests are already waiting and releases them in `(object, offset)`
//! order — the classic elevator pass that turns interleaved strided writes
//! from many clients into near-sequential device access.
//!
//! Only *independent* requests may be reordered: two requests are dependent
//! when they touch the same object with overlapping ranges and at least one
//! writes. Dependent requests retain their arrival order.

use lwfs_proto::{ObjId, Request, RequestBody};

use crate::dispatch::AccessSummary;

/// A queued request with its arrival sequence.
#[derive(Debug)]
struct Queued {
    arrival: u64,
    req: Request,
}

/// Sort key: data requests by (object, offset); everything else pinned to
/// its arrival slot at the front (control ops never benefit from elevator
/// ordering and must not starve).
fn data_key(req: &Request) -> Option<(ObjId, u64)> {
    match &req.body {
        RequestBody::Write { obj, offset, .. } => Some((*obj, *offset)),
        RequestBody::Read { obj, offset, .. } => Some((*obj, *offset)),
        _ => None,
    }
}

/// The byte range a data request touches, `None` for control requests.
/// The end offset saturates: `offset + len` near `u64::MAX` must clamp,
/// not wrap to a tiny value that would fake independence.
pub fn range_of(req: &Request) -> Option<(ObjId, u64, u64, bool)> {
    AccessSummary::of(req).range()
}

/// Are `a` and `b` dependent (same object, overlapping ranges, at least
/// one write — control requests conservatively depend on everything)?
///
/// This is the one §3.2 dependency relation: the in-flight
/// [`ConflictTracker`](crate::dispatch::ConflictTracker) delegates to the
/// same [`AccessSummary::conflicts`], so elevator ordering and worker-pool
/// serialization can never disagree.
pub fn dependent(a: &Request, b: &Request) -> bool {
    AccessSummary::of(a).conflicts(&AccessSummary::of(b))
}

/// The request scheduler.
#[derive(Debug, Default)]
pub struct RequestScheduler {
    queue: Vec<Queued>,
    next_arrival: u64,
    /// How many requests were released out of arrival order.
    reordered: u64,
}

impl RequestScheduler {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, req: Request) {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.queue.push(Queued { arrival, req });
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Release every queued request in elevator order, respecting
    /// dependencies.
    pub fn drain_elevator(&mut self) -> Vec<Request> {
        let mut batch: Vec<Queued> = std::mem::take(&mut self.queue);
        let n = batch.len();
        if n <= 1 {
            return batch.into_iter().map(|q| q.req).collect();
        }

        // Stable sort by (has-data-key, object, offset, arrival). Control
        // requests sort first in arrival order; data requests follow in
        // elevator order.
        batch.sort_by(|a, b| match (data_key(&a.req), data_key(&b.req)) {
            (None, None) => a.arrival.cmp(&b.arrival),
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(ka), Some(kb)) => ka.cmp(&kb).then(a.arrival.cmp(&b.arrival)),
        });

        // Restore arrival order among *dependent* pairs (bubble the earlier
        // arrival forward). n is a drained batch, typically small.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..batch.len().saturating_sub(1) {
                if dependent(&batch[i].req, &batch[i + 1].req)
                    && batch[i].arrival > batch[i + 1].arrival
                {
                    batch.swap(i, i + 1);
                    changed = true;
                }
            }
        }

        let reordered = batch
            .iter()
            .enumerate()
            .filter(|(pos, q)| q.arrival != *pos as u64 + (self.next_arrival - n as u64))
            .count() as u64;
        self.reordered += reordered;
        batch.into_iter().map(|q| q.req).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwfs_proto::{
        Capability, CapabilityBody, ContainerId, Lifetime, MdHandle, OpMask, OpNum, PrincipalId,
        ProcessId, Signature,
    };

    fn cap() -> Capability {
        Capability {
            body: CapabilityBody {
                container: ContainerId(1),
                ops: OpMask::ALL,
                principal: PrincipalId(1),
                issuer_epoch: 1,
                lifetime: Lifetime::UNBOUNDED,
                serial: 0,
            },
            sig: Signature([0; 16]),
        }
    }

    fn write_req(obj: u64, offset: u64, len: u64) -> Request {
        Request::new(
            OpNum(0),
            ProcessId::new(0, 0),
            RequestBody::Write {
                txn: None,
                cap: cap(),
                obj: ObjId(obj),
                offset,
                len,
                md: MdHandle { match_bits: 0 },
            },
        )
    }

    fn offsets(reqs: &[Request]) -> Vec<(u64, u64)> {
        reqs.iter()
            .filter_map(|r| match &r.body {
                RequestBody::Write { obj, offset, .. } => Some((obj.0, *offset)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn interleaved_strides_become_sequential() {
        let mut s = RequestScheduler::new();
        // Two clients writing strided to two objects, interleaved.
        s.push(write_req(2, 100, 10));
        s.push(write_req(1, 50, 10));
        s.push(write_req(2, 0, 10));
        s.push(write_req(1, 0, 10));
        let out = s.drain_elevator();
        assert_eq!(offsets(&out), vec![(1, 0), (1, 50), (2, 0), (2, 100)]);
        assert!(s.reordered() > 0);
    }

    #[test]
    fn overlapping_writes_keep_arrival_order() {
        let mut s = RequestScheduler::new();
        s.push(write_req(1, 50, 100)); // arrives first, sorts later
        s.push(write_req(1, 0, 100)); // overlaps [50,100)
        let out = s.drain_elevator();
        // Dependent pair: first arrival must still execute first.
        assert_eq!(offsets(&out), vec![(1, 50), (1, 0)]);
    }

    #[test]
    fn control_requests_go_first_in_arrival_order() {
        let mut s = RequestScheduler::new();
        s.push(write_req(1, 100, 10));
        let sync = Request::new(
            OpNum(9),
            ProcessId::new(0, 0),
            RequestBody::Sync { cap: cap(), obj: None },
        );
        s.push(sync.clone());
        s.push(write_req(1, 0, 10));
        let out = s.drain_elevator();
        assert_eq!(out[0].opnum, OpNum(9), "control op released first");
    }

    #[test]
    fn empty_and_single_are_trivial() {
        let mut s = RequestScheduler::new();
        assert!(s.drain_elevator().is_empty());
        s.push(write_req(1, 0, 1));
        assert_eq!(s.drain_elevator().len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn near_max_offset_does_not_wrap_dependency_detection() {
        // Regression: `offset + len` used to wrap, so two writes straddling
        // u64::MAX looked independent and could be reordered.
        let near_end = write_req(1, u64::MAX - 1, 16);
        let overlapping = write_req(1, u64::MAX - 8, 16);
        assert!(dependent(&near_end, &overlapping), "saturated ranges must overlap");
        let (_, start, end, write) = range_of(&near_end).unwrap();
        assert_eq!(start, u64::MAX - 1);
        assert_eq!(end, u64::MAX, "end saturates instead of wrapping");
        assert!(write);

        // And the scheduler keeps their arrival order.
        let mut s = RequestScheduler::new();
        s.push(write_req(1, u64::MAX - 1, 16));
        s.push(write_req(1, u64::MAX - 8, 16));
        let out = s.drain_elevator();
        assert_eq!(offsets(&out), vec![(1, u64::MAX - 1), (1, u64::MAX - 8)]);
    }

    #[test]
    fn nonoverlapping_same_object_reorders_freely() {
        let mut s = RequestScheduler::new();
        s.push(write_req(1, 200, 10));
        s.push(write_req(1, 100, 10));
        s.push(write_req(1, 0, 10));
        let out = s.drain_elevator();
        assert_eq!(offsets(&out), vec![(1, 0), (1, 100), (1, 200)]);
    }
}
