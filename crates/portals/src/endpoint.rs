//! A process's handle on the network: memory descriptors, one-sided
//! operations, eager messages, and the event queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use lwfs_proto::{Error, ProcessId, Result};

use crate::buffer::MemDesc;
use crate::event::Event;
use crate::network::{EndpointState, NetworkInner};

/// Allocator for unique match bits within a namespace (see the `*_SPACE`
/// constants in the crate root). Backed by a network-wide counter so two
/// processes never collide even when posting descriptors on each other's
/// behalf.
pub struct MatchBitsAlloc<'a> {
    counter: &'a AtomicU64,
}

impl MatchBitsAlloc<'_> {
    /// Allocate fresh match bits inside `space` (a high-nibble namespace).
    pub fn alloc(&self, space: u64) -> u64 {
        let low = self.counter.fetch_add(1, Ordering::Relaxed);
        space | (low & 0x0FFF_FFFF_FFFF_FFFF)
    }
}

/// A registered process endpoint.
///
/// Endpoints are `Send + Sync`: several threads of one "process" may share
/// the endpoint, and selective receives ([`Endpoint::recv_match`]) from
/// different threads never steal each other's events — the queue is scanned
/// under a lock and waiters are woken on every delivery.
pub struct Endpoint {
    id: ProcessId,
    net: Arc<NetworkInner>,
    state: Arc<EndpointState>,
}

impl Endpoint {
    pub(crate) fn new(id: ProcessId, net: Arc<NetworkInner>, state: Arc<EndpointState>) -> Self {
        Self { id, net, state }
    }

    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The fabric-wide metric registry (see `lwfs-obs`); services reach
    /// it through the endpoint they already hold.
    pub fn obs(&self) -> &std::sync::Arc<lwfs_obs::Registry> {
        &self.net.obs
    }

    /// Match-bits allocator shared across the fabric.
    pub fn match_bits(&self) -> MatchBitsAlloc<'_> {
        MatchBitsAlloc { counter: &self.net.match_alloc }
    }

    /// This endpoint's shared operation-number allocator.
    ///
    /// Threads sharing one endpoint (e.g. a storage server's worker pool)
    /// each build an RPC client around this counter so that operation
    /// numbers are unique endpoint-wide and a reply can only ever match
    /// the call that issued it.
    pub fn opnum_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.state.opnums)
    }

    // ------------------------------------------------------------------
    // Memory descriptors
    // ------------------------------------------------------------------

    /// Post a memory descriptor under `match_bits`, exposing it to remote
    /// one-sided operations.
    pub fn post_md(&self, match_bits: u64, md: MemDesc) -> Result<()> {
        let mut mds = self.state.mds.lock();
        if mds.contains_key(&match_bits) {
            return Err(Error::Internal(format!(
                "match bits {match_bits:#x} already posted on {}",
                self.id
            )));
        }
        mds.insert(match_bits, md);
        Ok(())
    }

    /// Remove a posted descriptor, returning it if present.
    pub fn unlink_md(&self, match_bits: u64) -> Option<MemDesc> {
        self.state.mds.lock().remove(&match_bits)
    }

    /// Number of descriptors currently posted (diagnostics).
    pub fn posted_mds(&self) -> usize {
        self.state.mds.lock().len()
    }

    // ------------------------------------------------------------------
    // One-sided operations
    // ------------------------------------------------------------------

    /// Write `data` into the descriptor `target` posted under `match_bits`,
    /// starting at `offset`. Completes without the target thread running.
    ///
    /// A target the local registry does not hold is routed through the
    /// attached [`RemoteFabric`](crate::transport::RemoteFabric) (a
    /// blocking round trip); with no remote transport it is
    /// [`Error::Unreachable`], the historical in-process behavior.
    pub fn put(&self, target: ProcessId, match_bits: u64, offset: u64, data: &[u8]) -> Result<()> {
        self.net.check_reachable(self.id, target)?;
        if self.net.endpoints.read().contains_key(&target) {
            return self.net.local_put(self.id, target, match_bits, offset, data);
        }
        match self.net.remote() {
            Some(fabric) => fabric.put(self.id, target, match_bits, offset, data),
            None => Err(Error::Unreachable),
        }
    }

    /// Read `len` bytes at `offset` from the descriptor `target` posted
    /// under `match_bits`. Remote targets as in [`Endpoint::put`].
    pub fn get(
        &self,
        target: ProcessId,
        match_bits: u64,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        self.net.check_reachable(self.id, target)?;
        if self.net.endpoints.read().contains_key(&target) {
            return self.net.local_get(self.id, target, match_bits, offset, len);
        }
        match self.net.remote() {
            Some(fabric) => fabric.get(self.id, target, match_bits, offset, len),
            None => Err(Error::Unreachable),
        }
    }

    // ------------------------------------------------------------------
    // Eager messages
    // ------------------------------------------------------------------

    /// Send a small eager message to `target`'s event queue.
    ///
    /// Fails with [`Error::ServerBusy`] when the target queue is full —
    /// callers implementing the paper's flow-control loop back off and
    /// re-send (§3.2). On the socket transport the same error reports a
    /// full per-connection *write* queue; a full queue on the remote side
    /// drops the frame silently and the sender finds out via timeout.
    pub fn send(&self, target: ProcessId, match_bits: u64, data: Bytes) -> Result<()> {
        self.net.check_reachable(self.id, target)?;
        if self.net.roll_drop() {
            // Silently lost; the sender finds out via timeout.
            self.net.stats.record_drop();
            return Ok(());
        }
        if self.net.endpoints.read().contains_key(&target) {
            return self.net.local_send(self.id, target, match_bits, data);
        }
        match self.net.remote() {
            Some(fabric) => fabric.send(self.id, target, match_bits, data),
            None => Err(Error::Unreachable),
        }
    }

    // ------------------------------------------------------------------
    // Event queue
    // ------------------------------------------------------------------

    /// Receive the next event in arrival order.
    pub fn recv(&self, timeout: Duration) -> Result<Event> {
        self.recv_match(timeout, |_| true)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Event> {
        self.state.queue.lock().pop_front()
    }

    /// Receive the *earliest* queued event satisfying `pred`, leaving all
    /// other events in place. Safe to call concurrently from several
    /// threads sharing the endpoint: every delivery wakes all waiters and
    /// each rescans for its own events.
    pub fn recv_match(&self, timeout: Duration, pred: impl Fn(&Event) -> bool) -> Result<Event> {
        let deadline = Instant::now() + timeout;
        let mut q = self.state.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(&pred) {
                return Ok(q.remove(pos).expect("position just found"));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout);
            }
            if self.state.cond.wait_until(&mut q, deadline).timed_out() {
                // Final rescan in case the event raced the timeout.
                if let Some(pos) = q.iter().position(&pred) {
                    return Ok(q.remove(pos).expect("position just found"));
                }
                return Err(Error::Timeout);
            }
        }
    }

    /// Events currently waiting in the queue (diagnostics).
    pub fn stashed(&self) -> usize {
        self.state.queue.lock().len()
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MdOptions;
    use crate::network::{FaultPlan, Network, NetworkConfig};

    const TICK: Duration = Duration::from_millis(200);

    fn pair() -> (Network, Endpoint, Endpoint) {
        let net = Network::default();
        let a = net.register(ProcessId::new(0, 0));
        let b = net.register(ProcessId::new(1, 0));
        (net, a, b)
    }

    #[test]
    fn eager_message_delivery() {
        let (_net, a, b) = pair();
        a.send(b.id(), 42, Bytes::from_static(b"ping")).unwrap();
        let ev = b.recv(TICK).unwrap();
        assert_eq!(ev.match_bits(), 42);
        assert_eq!(ev.from(), a.id());
        assert_eq!(ev.message_data().unwrap().as_ref(), b"ping");
    }

    #[test]
    fn one_sided_put_without_target_running() {
        let (_net, a, b) = pair();
        b.post_md(7, MemDesc::zeroed(8, MdOptions::for_remote_put())).unwrap();
        // `b` never calls recv; the put still lands.
        a.put(b.id(), 7, 2, b"xy").unwrap();
        let md = b.unlink_md(7).unwrap();
        assert_eq!(&md.snapshot()[2..4], b"xy");
    }

    #[test]
    fn one_sided_get_reads_posted_buffer() {
        let (_net, a, b) = pair();
        let md = MemDesc::from_vec(b"checkpoint-data".to_vec(), MdOptions::for_remote_get());
        b.post_md(9, md).unwrap();
        let data = a.get(b.id(), 9, 11, 4).unwrap();
        assert_eq!(&data, b"data");
    }

    #[test]
    fn put_respects_md_permissions() {
        let (_net, a, b) = pair();
        b.post_md(7, MemDesc::zeroed(8, MdOptions::for_remote_get())).unwrap();
        assert_eq!(a.put(b.id(), 7, 0, b"no").unwrap_err(), Error::AccessDenied);
    }

    #[test]
    fn get_respects_md_permissions() {
        let (_net, a, b) = pair();
        b.post_md(7, MemDesc::zeroed(8, MdOptions::for_remote_put())).unwrap();
        assert_eq!(a.get(b.id(), 7, 0, 4).unwrap_err(), Error::AccessDenied);
    }

    #[test]
    fn missing_md_is_an_error() {
        let (_net, a, b) = pair();
        assert!(a.put(b.id(), 999, 0, b"x").is_err());
        assert!(a.get(b.id(), 999, 0, 1).is_err());
    }

    #[test]
    fn auto_unlink_after_n_ops() {
        let (_net, a, b) = pair();
        let opts = MdOptions { unlink_after: Some(1), ..MdOptions::for_remote_get() };
        b.post_md(5, MemDesc::from_vec(vec![1, 2, 3], opts)).unwrap();
        assert!(a.get(b.id(), 5, 0, 3).is_ok());
        assert!(a.get(b.id(), 5, 0, 3).is_err(), "md should have unlinked");
        assert_eq!(b.posted_mds(), 0);
    }

    #[test]
    fn duplicate_match_bits_rejected() {
        let (_net, a, _b) = pair();
        a.post_md(1, MemDesc::zeroed(1, MdOptions::default())).unwrap();
        assert!(a.post_md(1, MemDesc::zeroed(1, MdOptions::default())).is_err());
    }

    #[test]
    fn put_event_delivered_when_enabled() {
        let (_net, a, b) = pair();
        b.post_md(3, MemDesc::zeroed(4, MdOptions::read_write_events())).unwrap();
        a.put(b.id(), 3, 0, b"evnt").unwrap();
        match b.recv(TICK).unwrap() {
            Event::PutEnd { from, match_bits, offset, len } => {
                assert_eq!(from, a.id());
                assert_eq!(match_bits, 3);
                assert_eq!(offset, 0);
                assert_eq!(len, 4);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn no_event_when_disabled() {
        let (_net, a, b) = pair();
        b.post_md(3, MemDesc::zeroed(4, MdOptions::for_remote_put())).unwrap();
        a.put(b.id(), 3, 0, b"silt").unwrap();
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn bounded_queue_rejects_with_server_busy() {
        let net = Network::new(NetworkConfig { eager_queue_depth: 2, ..Default::default() });
        let a = net.register(ProcessId::new(0, 0));
        let b = net.register(ProcessId::new(1, 0));
        a.send(b.id(), 1, Bytes::new()).unwrap();
        a.send(b.id(), 1, Bytes::new()).unwrap();
        assert_eq!(a.send(b.id(), 1, Bytes::new()).unwrap_err(), Error::ServerBusy);
        // Draining frees space again.
        b.recv(TICK).unwrap();
        a.send(b.id(), 1, Bytes::new()).unwrap();
        assert_eq!(net.stats().messages_rejected.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn partition_makes_peers_unreachable() {
        let (net, a, b) = pair();
        let mut plan = FaultPlan::default();
        plan.partitioned.insert(b.id().nid);
        net.set_faults(plan);
        assert_eq!(a.send(b.id(), 1, Bytes::new()).unwrap_err(), Error::Unreachable);
        assert_eq!(a.put(b.id(), 1, 0, b"x").unwrap_err(), Error::Unreachable);
        net.heal();
        assert!(a.send(b.id(), 1, Bytes::new()).is_ok());
    }

    #[test]
    fn dropped_message_times_out_receiver() {
        let (net, a, b) = pair();
        net.set_faults(FaultPlan { drop_rate: 1.0, ..Default::default() });
        a.send(b.id(), 1, Bytes::from_static(b"lost")).unwrap();
        assert_eq!(b.recv(Duration::from_millis(50)).unwrap_err(), Error::Timeout);
        assert_eq!(net.stats().messages_dropped.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn recv_match_stashes_non_matching() {
        let (_net, a, b) = pair();
        a.send(b.id(), 1, Bytes::from_static(b"first")).unwrap();
        a.send(b.id(), 2, Bytes::from_static(b"second")).unwrap();
        let ev = b.recv_match(TICK, |e| e.match_bits() == 2).unwrap();
        assert_eq!(ev.message_data().unwrap().as_ref(), b"second");
        assert_eq!(b.stashed(), 1);
        // The stashed event is still retrievable.
        let ev = b.recv(TICK).unwrap();
        assert_eq!(ev.message_data().unwrap().as_ref(), b"first");
    }

    #[test]
    fn recv_match_times_out_cleanly() {
        let (_net, a, b) = pair();
        a.send(b.id(), 1, Bytes::new()).unwrap();
        let err = b.recv_match(Duration::from_millis(50), |e| e.match_bits() == 99).unwrap_err();
        assert_eq!(err, Error::Timeout);
        assert_eq!(b.stashed(), 1, "non-matching event must be preserved");
    }

    #[test]
    fn match_bits_allocator_is_unique_across_endpoints() {
        let (_net, a, b) = pair();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.match_bits().alloc(crate::BULK_SPACE)));
            assert!(seen.insert(b.match_bits().alloc(crate::BULK_SPACE)));
        }
    }

    #[test]
    fn stats_track_bytes() {
        let (net, a, b) = pair();
        b.post_md(1, MemDesc::zeroed(100, MdOptions::read_write_events())).unwrap();
        a.put(b.id(), 1, 0, &[0u8; 100]).unwrap();
        let got = a.get(b.id(), 1, 0, 50).unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(net.stats().bytes.load(std::sync::atomic::Ordering::Relaxed), 150);
        assert_eq!(net.stats().sent_by(a.id()), 2);
    }
}
