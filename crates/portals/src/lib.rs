//! An in-process messaging substrate modeled on the **Portals 3.0** API.
//!
//! The paper's data-movement layer (§3.2) is built on Portals: a zero-copy,
//! **one-sided**, connectionless messaging interface that lets a storage
//! server *pull* data from client memory for writes and *push* data into
//! client memory for reads, with OS bypass on the real hardware.
//!
//! We do not have a SeaStar or Myrinet NIC, so this crate reproduces the
//! *semantics* the LWFS protocols depend on, entirely in-process:
//!
//! * **No connections.** A process is addressed by `(nid, pid)` and nothing
//!   else; senders hold no per-peer state (paper §2.3, rule 2).
//! * **Pre-posted memory descriptors.** A process exposes memory by posting
//!   a [`MemDesc`] under 64-bit *match bits*. Remote `put`/`get` operations
//!   complete against the posted buffer without the target thread running —
//!   the in-process analogue of remote DMA.
//! * **Events.** Completed operations optionally deposit an [`Event`] in the
//!   target's event queue, which is how a server learns a request arrived.
//! * **Small eager messages.** [`Endpoint::send`] models a Portals put into
//!   a server-managed bounded receive queue, used for the request channel.
//!
//! On top of the raw interface sit two helpers used by every LWFS service:
//! a synchronous [`rpc`] layer (request → reply matching by operation
//! number) and [`collective`] operations (log-tree scatter/gather/barrier)
//! used to distribute capabilities without O(n) server traffic.
//!
//! Fault injection (message drop, partitions) is built in so the test suite
//! can exercise timeout and retry paths deterministically.

pub mod buffer;
pub mod collective;
pub mod endpoint;
pub mod event;
pub mod network;
pub mod retry;
pub mod rpc;
pub mod service;
pub mod stats;
pub mod telemetry;
pub mod transport;

pub use buffer::{MdOptions, MemDesc};
pub use endpoint::{Endpoint, MatchBitsAlloc};
pub use event::Event;
pub use network::{FaultPlan, Network, NetworkConfig};
pub use retry::RetryPolicy;
pub use rpc::{RpcClient, RpcConfig, RpcServer};
pub use service::{spawn_service, Service, ServiceHandle};
pub use stats::NetStats;
pub use telemetry::{flight_traces, telemetry_snapshot};
pub use transport::RemoteFabric;

use lwfs_proto::ProcessId;

/// Well-known match bits for a service's incoming request queue.
///
/// Every LWFS service posts its request queue here; clients need no
/// per-service discovery beyond the service's `ProcessId`.
pub const REQUEST_MATCH: u64 = 0x0000_0000_0000_0001;

/// Match-bits namespace for RPC replies. The low 48 bits carry the opnum.
pub const REPLY_SPACE: u64 = 0x1000_0000_0000_0000;

/// Match-bits namespace for bulk-data memory descriptors.
pub const BULK_SPACE: u64 = 0x2000_0000_0000_0000;

/// Match-bits namespace for collective operations.
pub const COLLECTIVE_SPACE: u64 = 0x3000_0000_0000_0000;

/// Compose reply match bits for an operation number.
pub fn reply_match(opnum: u64) -> u64 {
    REPLY_SPACE | (opnum & 0x0000_FFFF_FFFF_FFFF)
}

/// A convenient full-mesh address book for SPMD groups (the "application"
/// in Figure 3): rank <-> ProcessId.
#[derive(Debug, Clone)]
pub struct Group {
    members: Vec<ProcessId>,
}

impl Group {
    pub fn new(members: Vec<ProcessId>) -> Self {
        assert!(!members.is_empty(), "a group needs at least one member");
        Self { members }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    pub fn member(&self, rank: usize) -> ProcessId {
        self.members[rank]
    }

    pub fn rank_of(&self, id: ProcessId) -> Option<usize> {
        self.members.iter().position(|m| *m == id)
    }

    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_match_preserves_low_bits() {
        assert_eq!(reply_match(7) & 0xFFFF, 7);
        assert_ne!(reply_match(7), 7);
    }

    #[test]
    fn match_spaces_are_disjoint() {
        let spaces = [REQUEST_MATCH, REPLY_SPACE, BULK_SPACE, COLLECTIVE_SPACE];
        for (i, a) in spaces.iter().enumerate() {
            for b in &spaces[i + 1..] {
                assert_ne!(a & 0xF000_0000_0000_0000, b & 0xF000_0000_0000_0000);
            }
        }
    }

    #[test]
    fn group_ranks() {
        let g = Group::new(vec![ProcessId::new(1, 0), ProcessId::new(2, 0)]);
        assert_eq!(g.size(), 2);
        assert_eq!(g.rank_of(ProcessId::new(2, 0)), Some(1));
        assert_eq!(g.rank_of(ProcessId::new(9, 9)), None);
        assert_eq!(g.member(0), ProcessId::new(1, 0));
    }

    #[test]
    #[should_panic]
    fn empty_group_panics() {
        let _ = Group::new(vec![]);
    }
}
