//! Log-tree collective operations for SPMD application groups.
//!
//! The paper's capability-distribution protocol (Figure 4-a, step 3) has a
//! single rank fetch capabilities and then *scatter* them to the other
//! n − 1 ranks with a logarithmic tree — the system never performs an O(n)
//! operation (§2.3 rule 1); the O(n) work happens on the application's own
//! processors, in O(log n) rounds.
//!
//! Provided operations: [`broadcast`] (binomial tree), [`gather`] (reversed
//! binomial tree), and [`barrier`] (dissemination). Each invocation must use
//! a `tag` unique among concurrently outstanding collectives in the group.

use std::time::Duration;

use bytes::Bytes;
use lwfs_proto::{Decode, Encode, Error, ProcessId, Result};

use crate::endpoint::Endpoint;
use crate::event::Event;
use crate::{Group, COLLECTIVE_SPACE};

/// Default collective timeout: generous, because test machines are slow.
pub const COLLECTIVE_TIMEOUT: Duration = Duration::from_secs(10);

fn coll_match(tag: u64, round: u32) -> u64 {
    // tag in bits [16, 56), round in [0, 16).
    COLLECTIVE_SPACE | ((tag & 0xFF_FFFF_FFFF) << 16) | u64::from(round & 0xFFFF)
}

fn send_retry(ep: &Endpoint, to: ProcessId, match_bits: u64, data: Bytes) -> Result<()> {
    // Deadline-capped (a peer that never drains used to spin this loop
    // forever); the shape matches the historical 50 µs → 10 ms doubling.
    let policy = crate::retry::RetryPolicy::with_deadline(COLLECTIVE_TIMEOUT);
    crate::retry::send_with_backoff(ep, to, match_bits, data, &policy)
}

fn recv_from(ep: &Endpoint, from: ProcessId, match_bits: u64, timeout: Duration) -> Result<Bytes> {
    let ev = ep.recv_match(timeout, |e| {
        matches!(e, Event::Message { from: f, match_bits: m, .. } if *f == from && *m == match_bits)
    })?;
    Ok(ev.message_data().expect("message event").clone())
}

/// Binomial-tree broadcast of `data` from `root` to every rank.
///
/// Every rank calls this; non-root ranks pass `None` and receive the
/// broadcast value. Message rounds: ⌈log₂ n⌉; messages per rank: ≤ log₂ n.
pub fn broadcast(
    ep: &Endpoint,
    group: &Group,
    rank: usize,
    root: usize,
    tag: u64,
    data: Option<Bytes>,
) -> Result<Bytes> {
    let n = group.size();
    assert!(rank < n && root < n, "rank/root out of range");
    // Relabel so the root is relative rank 0 (MPICH binomial broadcast).
    let rel = (rank + n - root) % n;

    // Phase 1: non-root ranks receive from their parent. The parent of a
    // relative rank is obtained by clearing its lowest set bit; the round
    // tag is that bit's position, which both sides can compute locally.
    let mut mask = 1usize;
    let mut payload = if rel == 0 {
        data.ok_or_else(|| Error::Internal("root must supply broadcast data".into()))?
    } else {
        loop {
            if rel & mask != 0 {
                let parent = group.member((rel - mask + root) % n);
                break recv_from(
                    ep,
                    parent,
                    coll_match(tag, mask.trailing_zeros()),
                    COLLECTIVE_TIMEOUT,
                )?;
            }
            mask <<= 1;
        }
    };
    if rel == 0 {
        while mask < n {
            mask <<= 1;
        }
    }

    // Phase 2: forward to children at decreasing bit positions below the
    // bit we received on (or below n for the root).
    mask >>= 1;
    while mask > 0 {
        if rel + mask < n {
            let child = group.member((rel + mask + root) % n);
            send_retry(ep, child, coll_match(tag, mask.trailing_zeros()), payload.clone())?;
        }
        mask >>= 1;
    }
    Ok(std::mem::take(&mut payload))
}

/// Gather each rank's `data` to `root` along a reversed binomial tree.
///
/// Returns `Some(values)` (indexed by rank) at the root, `None` elsewhere.
pub fn gather(
    ep: &Endpoint,
    group: &Group,
    rank: usize,
    root: usize,
    tag: u64,
    data: Bytes,
) -> Result<Option<Vec<Bytes>>> {
    let n = group.size();
    assert!(rank < n && root < n, "rank/root out of range");
    let rel = (rank + n - root) % n;

    // Accumulate (relative_rank, bytes) pairs, starting with our own.
    // Reversed binomial tree: at round `mask`, ranks with the mask bit set
    // send their accumulated set to `rel - mask` and finish; ranks with the
    // bit clear receive from `rel + mask` if that child exists.
    let mut acc: Vec<(u32, Vec<u8>)> = vec![(rel as u32, data.to_vec())];
    let mut mask = 1usize;
    while mask < n {
        if rel & mask == 0 {
            if rel + mask < n {
                let child = group.member((rel + mask + root) % n);
                let raw = recv_from(
                    ep,
                    child,
                    coll_match(tag, mask.trailing_zeros()),
                    COLLECTIVE_TIMEOUT,
                )?;
                let mut chunk: Vec<(u32, Vec<u8>)> = Decode::from_bytes(raw)?;
                acc.append(&mut chunk);
            }
        } else {
            let parent = group.member((rel - mask + root) % n);
            send_retry(ep, parent, coll_match(tag, mask.trailing_zeros()), acc.to_bytes())?;
            return Ok(None);
        }
        mask <<= 1;
    }

    // Only relative rank 0 (the root) reaches here with the full set.
    let mut absolute: Vec<Option<Bytes>> = vec![None; n];
    for (relr, v) in acc {
        let abs = (relr as usize + root) % n;
        if absolute[abs].replace(Bytes::from(v)).is_some() {
            return Err(Error::Internal(format!("gather: duplicate contribution rank {abs}")));
        }
    }
    absolute
        .into_iter()
        .enumerate()
        .map(|(abs, slot)| {
            slot.ok_or_else(|| Error::Internal(format!("gather: missing rank {abs}")))
        })
        .collect::<Result<Vec<Bytes>>>()
        .map(Some)
}

/// Personalized all-to-all exchange: rank `i` sends `data[j]` to rank `j`
/// and receives one blob from every rank (its own entry is returned
/// untouched). The returned vector is indexed by source rank.
///
/// This is an *application-side* collective (two-phase I/O's shuffle step,
/// del Rosario et al., ref. 12, in the paper's references): each rank performs
/// O(n) sends of its own data — allowed, because the §2.3 rules constrain
/// *system-imposed* operations, not what the application does with its own
/// processors.
pub fn all_to_all(
    ep: &Endpoint,
    group: &Group,
    rank: usize,
    tag: u64,
    mut data: Vec<Bytes>,
) -> Result<Vec<Bytes>> {
    let n = group.size();
    assert_eq!(data.len(), n, "all_to_all needs one blob per destination rank");
    assert!(n <= 0xFFFF, "rank encoded in the 16-bit round field");

    // Send to peers in a rotated order (rank+1, rank+2, …) so that no
    // single destination absorbs everyone's first message at once.
    for k in 1..n {
        let dest = (rank + k) % n;
        send_retry(ep, group.member(dest), coll_match(tag, rank as u32), data[dest].clone())?;
    }
    let mine = std::mem::take(&mut data[rank]);
    let mut out: Vec<Option<Bytes>> = (0..n).map(|_| None).collect();
    out[rank] = Some(mine);
    for k in 1..n {
        let src = (rank + n - k) % n;
        let blob =
            recv_from(ep, group.member(src), coll_match(tag, src as u32), COLLECTIVE_TIMEOUT)?;
        out[src] = Some(blob);
    }
    Ok(out.into_iter().map(|b| b.expect("all sources received")).collect())
}

/// Dissemination barrier: ⌈log₂ n⌉ rounds, each rank sends one message and
/// receives one message per round.
pub fn barrier(ep: &Endpoint, group: &Group, rank: usize, tag: u64) -> Result<()> {
    let n = group.size();
    if n == 1 {
        return Ok(());
    }
    let rounds = usize::BITS - (n - 1).leading_zeros();
    for r in 0..rounds {
        let dist = 1usize << r;
        let to = group.member((rank + dist) % n);
        let from = group.member((rank + n - dist) % n);
        send_retry(ep, to, coll_match(tag, r), Bytes::new())?;
        recv_from(ep, from, coll_match(tag, r), COLLECTIVE_TIMEOUT)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use std::sync::Arc;

    fn spawn_group(n: usize) -> (Network, Vec<Endpoint>, Group) {
        let net = Network::default();
        let ids: Vec<ProcessId> = (0..n as u32).map(|i| ProcessId::new(i, 0)).collect();
        let eps: Vec<Endpoint> = ids.iter().map(|id| net.register(*id)).collect();
        let group = Group::new(ids);
        (net, eps, group)
    }

    fn run_all<F, T>(eps: Vec<Endpoint>, group: Group, f: F) -> Vec<T>
    where
        F: Fn(&Endpoint, &Group, usize) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        let f = Arc::new(f);
        let group = Arc::new(group);
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(rank, ep)| {
                let f = Arc::clone(&f);
                let group = Arc::clone(&group);
                std::thread::spawn(move || f(&ep, &group, rank))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        for n in [1usize, 2, 3, 4, 5, 8, 13, 16] {
            let (_net, eps, group) = spawn_group(n);
            let results = run_all(eps, group, move |ep, group, rank| {
                let data =
                    (rank == 0).then(|| Bytes::from_static(b"caps-from-authorization-server"));
                broadcast(ep, group, rank, 0, 1, data).unwrap()
            });
            for r in results {
                assert_eq!(r.as_ref(), b"caps-from-authorization-server", "n={n}");
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let n = 7;
        let (_net, eps, group) = spawn_group(n);
        let results = run_all(eps, group, move |ep, group, rank| {
            let data = (rank == 3).then(|| Bytes::from_static(b"root3"));
            broadcast(ep, group, rank, 3, 2, data).unwrap()
        });
        for r in results {
            assert_eq!(r.as_ref(), b"root3");
        }
    }

    #[test]
    fn broadcast_message_count_is_n_minus_1() {
        // Exactly n-1 messages total: the tree delivers once per non-root.
        let n = 16;
        let (net, eps, group) = spawn_group(n);
        net.stats().reset();
        run_all(eps, group, move |ep, group, rank| {
            let data = (rank == 0).then(|| Bytes::from_static(b"x"));
            broadcast(ep, group, rank, 0, 3, data).unwrap()
        });
        assert_eq!(net.stats().messages.load(std::sync::atomic::Ordering::Relaxed), (n - 1) as u64);
    }

    #[test]
    fn broadcast_no_rank_sends_more_than_log_n() {
        // The root must not perform O(n) sends (paper §2.3 rule 1).
        let n = 32;
        let (net, eps, group) = spawn_group(n);
        net.stats().reset();
        run_all(eps, group, move |ep, group, rank| {
            let data = (rank == 0).then(|| Bytes::from_static(b"x"));
            broadcast(ep, group, rank, 0, 4, data).unwrap()
        });
        let log_n = (usize::BITS - (n - 1).leading_zeros()) as u64;
        for rank in 0..n as u32 {
            let sent = net.stats().sent_by(ProcessId::new(rank, 0));
            assert!(sent <= log_n, "rank {rank} sent {sent} > log2(n)={log_n}");
        }
    }

    #[test]
    fn gather_collects_all_contributions() {
        for n in [1usize, 2, 3, 4, 6, 8, 11] {
            let (_net, eps, group) = spawn_group(n);
            let results = run_all(eps, group, move |ep, group, rank| {
                let data = Bytes::from(format!("rank-{rank}"));
                gather(ep, group, rank, 0, 5, data).unwrap()
            });
            let root_result = results.into_iter().find(|r| r.is_some()).unwrap().unwrap();
            assert_eq!(root_result.len(), n);
            for (rank, v) in root_result.iter().enumerate() {
                assert_eq!(v.as_ref(), format!("rank-{rank}").as_bytes(), "n={n}");
            }
        }
    }

    #[test]
    fn all_to_all_exchanges_personalized_blobs() {
        for n in [1usize, 2, 3, 5, 8] {
            let (_net, eps, group) = spawn_group(n);
            let results = run_all(eps, group, move |ep, group, rank| {
                let outgoing: Vec<Bytes> =
                    (0..n).map(|dest| Bytes::from(format!("{rank}->{dest}"))).collect();
                all_to_all(ep, group, rank, 40, outgoing).unwrap()
            });
            for (rank, incoming) in results.into_iter().enumerate() {
                assert_eq!(incoming.len(), n);
                for (src, blob) in incoming.iter().enumerate() {
                    assert_eq!(blob.as_ref(), format!("{src}->{rank}").as_bytes(), "n={n}");
                }
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 8;
        let (_net, eps, group) = spawn_group(n);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        run_all(eps, group, move |ep, group, rank| {
            c2.fetch_add(1, Ordering::SeqCst);
            barrier(ep, group, rank, 6).unwrap();
            // After the barrier, every rank must have incremented.
            assert_eq!(c2.load(Ordering::SeqCst), n);
        });
        assert_eq!(counter.load(Ordering::SeqCst), n);
    }

    #[test]
    fn barrier_single_rank_is_noop() {
        let (_net, eps, group) = spawn_group(1);
        let ep = &eps[0];
        barrier(ep, &group, 0, 7).unwrap();
    }

    #[test]
    fn collectives_with_different_tags_do_not_cross_talk() {
        let n = 4;
        let (_net, eps, group) = spawn_group(n);
        let results = run_all(eps, group, move |ep, group, rank| {
            // Two broadcasts back-to-back with different tags and values.
            let d1 = (rank == 0).then(|| Bytes::from_static(b"first"));
            let r1 = broadcast(ep, group, rank, 0, 100, d1).unwrap();
            let d2 = (rank == 0).then(|| Bytes::from_static(b"second"));
            let r2 = broadcast(ep, group, rank, 0, 101, d2).unwrap();
            (r1, r2)
        });
        for (r1, r2) in results {
            assert_eq!(r1.as_ref(), b"first");
            assert_eq!(r2.as_ref(), b"second");
        }
    }
}
