//! Wire side of the telemetry scrape: serialize a fabric's [`Registry`]
//! into the `GetTelemetry` reply shape.
//!
//! Every service that answers `GetTelemetry` (storage, directory, authz,
//! naming) calls [`telemetry_snapshot`] on its endpoint's registry, so
//! the reply format has exactly one producer. Histograms go out in sparse
//! bucket form — the mergeable representation the monitor's windowed
//! aggregation subtracts and merges exactly (see `lwfs_obs::window`).
//! Spans are deliberately excluded from the snapshot: they are bulky,
//! carry interned `&'static str` names that cannot be decoded from the
//! wire, and already have their own export path through the trace
//! collector. The *pinned* slow traces of the flight recorder travel on
//! their own op instead — [`flight_traces`] answers `GetFlightTraces`
//! with the node's current top-K, names re-encoded as owned strings.

use lwfs_obs::Registry;
use lwfs_proto::{FlightSpan, FlightTrace, TelemetryEvent, TelemetryHistogram, TelemetrySnapshot};

/// Serialize `reg` for a `GetTelemetry` reply: cumulative counters and
/// gauges, bucket-level histograms, and the event-journal tail with
/// `seq >= events_from` (the scraper's cursor, so a polling monitor
/// ships the journal incrementally).
pub fn telemetry_snapshot(reg: &Registry, events_from: u64) -> TelemetrySnapshot {
    let frame = reg.frame(0);
    TelemetrySnapshot {
        counters: frame.counters,
        gauges: frame.gauges,
        histograms: frame
            .histograms
            .into_iter()
            .map(|(name, iv)| {
                (
                    name,
                    TelemetryHistogram {
                        count: iv.count,
                        sum: iv.sum,
                        max: iv.max,
                        buckets: iv.buckets,
                    },
                )
            })
            .collect(),
        events: reg
            .events()
            .from_seq(events_from)
            .into_iter()
            .map(|e| TelemetryEvent {
                seq: e.seq,
                ts_ns: e.ts_ns,
                nid: e.nid,
                kind: e.kind.to_string(),
                detail: e.detail,
            })
            .collect(),
    }
}

/// Serialize `reg`'s flight-recorder pins for a `GetFlightTraces` reply.
/// Span timestamps stay on this node's span-log epoch; the scraper
/// applies its per-node offset at assembly. Bounded by the recorder's
/// configured top-K, so the reply stays scrape-sized.
pub fn flight_traces(reg: &Registry) -> Vec<FlightTrace> {
    reg.flight()
        .pinned()
        .into_iter()
        .map(|p| FlightTrace {
            trace_id: p.trace_id,
            total_ns: p.total_ns,
            spans: p
                .spans
                .into_iter()
                .map(|s| FlightSpan {
                    req_id: s.req_id,
                    nid: s.nid,
                    op: s.op.to_string(),
                    stage: s.stage.to_string(),
                    start_ns: s.start_ns,
                    dur_ns: s.dur_ns,
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_metrics_and_journal_tail() {
        let reg = Registry::new();
        reg.counter("storage.writes").add(9);
        reg.gauge("storage.repl_lag").set(4);
        reg.histogram("storage.write.total_ns").record(1234);
        reg.events().record(1100, "repl.evict_backup", "backup 1101");
        reg.events().record(1004, "directory.republish", "epoch 2");

        let snap = telemetry_snapshot(&reg, 0);
        assert!(snap.counters.contains(&("storage.writes".to_string(), 9)));
        assert!(snap.gauges.contains(&("storage.repl_lag".to_string(), 4)));
        let (_, h) = snap.histograms.iter().find(|(n, _)| n == "storage.write.total_ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1234);
        assert!(!h.buckets.is_empty());
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, "repl.evict_backup");

        // The cursor skips already-shipped journal entries.
        let tail = telemetry_snapshot(&reg, snap.events[0].seq + 1);
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.events[0].kind, "directory.republish");
        // Metrics are cumulative regardless of the cursor.
        assert_eq!(tail.counters, snap.counters);
    }

    #[test]
    fn flight_traces_serialize_the_pins_with_owned_names() {
        use lwfs_obs::{SpanRecord, TOTAL_STAGE};
        let reg = Registry::new();
        let log = reg.spans();
        log.record(SpanRecord {
            req_id: 7,
            trace_id: 42,
            nid: 1100,
            op: "repl",
            stage: "ship",
            start_ns: 10,
            dur_ns: 90,
        });
        log.record(SpanRecord {
            req_id: 7,
            trace_id: 42,
            nid: 1100,
            op: "storage.write",
            stage: TOTAL_STAGE,
            start_ns: 0,
            dur_ns: 100,
        });
        reg.flight().observe(log, 7, 42, 100);

        let out = flight_traces(&reg);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].trace_id, 42);
        assert_eq!(out[0].total_ns, 100);
        assert_eq!(out[0].spans.len(), 2);
        let ship = out[0].spans.iter().find(|s| s.stage == "ship").unwrap();
        assert_eq!(ship.op, "repl");
        assert_eq!(ship.start_ns, 10);
    }
}
