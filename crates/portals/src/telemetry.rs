//! Wire side of the telemetry scrape: serialize a fabric's [`Registry`]
//! into the `GetTelemetry` reply shape.
//!
//! Every service that answers `GetTelemetry` (storage, directory, authz,
//! naming) calls [`telemetry_snapshot`] on its endpoint's registry, so
//! the reply format has exactly one producer. Histograms go out in sparse
//! bucket form — the mergeable representation the monitor's windowed
//! aggregation subtracts and merges exactly (see `lwfs_obs::window`).
//! Spans are deliberately excluded: they are bulky, carry interned
//! `&'static str` names that cannot be decoded from the wire, and already
//! have their own export path through the trace collector.

use lwfs_obs::Registry;
use lwfs_proto::{TelemetryEvent, TelemetryHistogram, TelemetrySnapshot};

/// Serialize `reg` for a `GetTelemetry` reply: cumulative counters and
/// gauges, bucket-level histograms, and the event-journal tail with
/// `seq >= events_from` (the scraper's cursor, so a polling monitor
/// ships the journal incrementally).
pub fn telemetry_snapshot(reg: &Registry, events_from: u64) -> TelemetrySnapshot {
    let frame = reg.frame(0);
    TelemetrySnapshot {
        counters: frame.counters,
        gauges: frame.gauges,
        histograms: frame
            .histograms
            .into_iter()
            .map(|(name, iv)| {
                (
                    name,
                    TelemetryHistogram {
                        count: iv.count,
                        sum: iv.sum,
                        max: iv.max,
                        buckets: iv.buckets,
                    },
                )
            })
            .collect(),
        events: reg
            .events()
            .from_seq(events_from)
            .into_iter()
            .map(|e| TelemetryEvent {
                seq: e.seq,
                ts_ns: e.ts_ns,
                nid: e.nid,
                kind: e.kind.to_string(),
                detail: e.detail,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_metrics_and_journal_tail() {
        let reg = Registry::new();
        reg.counter("storage.writes").add(9);
        reg.gauge("storage.repl_lag").set(4);
        reg.histogram("storage.write.total_ns").record(1234);
        reg.events().record(1100, "repl.evict_backup", "backup 1101");
        reg.events().record(1004, "directory.republish", "epoch 2");

        let snap = telemetry_snapshot(&reg, 0);
        assert!(snap.counters.contains(&("storage.writes".to_string(), 9)));
        assert!(snap.gauges.contains(&("storage.repl_lag".to_string(), 4)));
        let (_, h) = snap.histograms.iter().find(|(n, _)| n == "storage.write.total_ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1234);
        assert!(!h.buckets.is_empty());
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, "repl.evict_backup");

        // The cursor skips already-shipped journal entries.
        let tail = telemetry_snapshot(&reg, snap.events[0].seq + 1);
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.events[0].kind, "directory.republish");
        // Metrics are cumulative regardless of the cursor.
        assert_eq!(tail.counters, snap.counters);
    }
}
