//! The network fabric: endpoint registry, delivery, and fault injection.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use bytes::Bytes;
use lwfs_obs::Registry;
use parking_lot::{Condvar, Mutex, RwLock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use lwfs_proto::{Error, NodeId, ProcessId, Result};

use crate::buffer::MemDesc;
use crate::endpoint::Endpoint;
use crate::event::Event;
use crate::stats::NetStats;
use crate::transport::RemoteFabric;

/// Configuration for a network instance.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Depth of each endpoint's eager-message queue. A full queue rejects
    /// the sender with [`Error::ServerBusy`] — the transport-level analogue
    /// of an I/O node's buffers filling under a request burst (§3.2).
    pub eager_queue_depth: usize,
    /// Seed for the fault-injection RNG; deterministic across runs.
    pub fault_seed: u64,
    /// Ring and flight-recorder sizing for the fabric's shared
    /// [`Registry`] — raised for long soak runs under a polling monitor
    /// so the span/event rings don't silently wrap mid-run.
    pub obs: lwfs_obs::ObsConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            eager_queue_depth: 64 * 1024,
            fault_seed: 0x5EED,
            obs: lwfs_obs::ObsConfig::default(),
        }
    }
}

/// Injectable failures, applied on the initiator side of each operation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an eager message is silently lost.
    pub drop_rate: f64,
    /// Nodes cut off from the fabric; any operation touching them fails
    /// with [`Error::Unreachable`].
    pub partitioned: HashSet<NodeId>,
    /// Individual processes that have "crashed".
    pub dead: HashSet<ProcessId>,
}

impl FaultPlan {
    fn blocks(&self, a: ProcessId, b: ProcessId) -> bool {
        self.partitioned.contains(&a.nid)
            || self.partitioned.contains(&b.nid)
            || self.dead.contains(&a)
            || self.dead.contains(&b)
    }
}

/// Per-endpoint delivery state: a bounded event queue protected by a mutex
/// and condition variable. A condvar (rather than a channel) is what makes
/// *selective* receive safe when several threads share one endpoint: every
/// enqueue wakes all waiters, and each waiter rescans the queue for the
/// events it cares about.
pub(crate) struct EndpointState {
    pub queue: Mutex<VecDeque<Event>>,
    pub cond: Condvar,
    pub capacity: usize,
    pub mds: Mutex<HashMap<u64, MemDesc>>,
    /// Endpoint-wide operation-number allocator. Every RPC client built
    /// over this endpoint with [`crate::RpcClient::shared`] draws from it,
    /// so concurrent calls from several threads of one process can never
    /// collide on an opnum (and therefore never cross-match replies).
    pub opnums: Arc<AtomicU64>,
}

impl EndpointState {
    /// Enqueue an event; returns `false` when the queue is full.
    ///
    /// `on_accept` runs under the queue lock *before* the event becomes
    /// visible — senders use it to record statistics so that a receiver
    /// can never observe a message whose accounting has not landed yet.
    pub fn deliver(&self, ev: Event, on_accept: impl FnOnce()) -> bool {
        let mut q = self.queue.lock();
        if q.len() >= self.capacity {
            return false;
        }
        on_accept();
        q.push_back(ev);
        drop(q);
        self.cond.notify_all();
        true
    }
}

pub(crate) struct NetworkInner {
    pub config: NetworkConfig,
    pub endpoints: RwLock<HashMap<ProcessId, Arc<EndpointState>>>,
    /// Shared metric registry; every service on this fabric registers
    /// its `component.op.stat` metrics here (see `lwfs-obs`).
    pub obs: Arc<Registry>,
    /// Behind an `Arc` so [`Network::sibling`] fabrics (one per simulated
    /// node, linked by a socket transport in one test process) share one
    /// counter plane the way the historical single network did.
    pub stats: Arc<NetStats>,
    pub faults: Arc<RwLock<FaultPlan>>,
    pub rng: Mutex<ChaCha8Rng>,
    pub match_alloc: Arc<AtomicU64>,
    /// Transport for processes the local registry does not know. `None`
    /// (the default) keeps the historical in-process behavior: unknown
    /// targets are simply [`Error::Unreachable`].
    pub remote: RwLock<Option<Arc<dyn RemoteFabric>>>,
}

impl NetworkInner {
    pub fn lookup(&self, id: ProcessId) -> Result<Arc<EndpointState>> {
        self.endpoints.read().get(&id).cloned().ok_or(Error::Unreachable)
    }

    pub fn remote(&self) -> Option<Arc<dyn RemoteFabric>> {
        self.remote.read().clone()
    }

    /// Returns `true` if a probabilistic drop fires.
    pub fn roll_drop(&self) -> bool {
        let rate = self.faults.read().drop_rate;
        if rate <= 0.0 {
            return false;
        }
        self.rng.lock().gen_bool(rate.min(1.0))
    }

    pub fn check_reachable(&self, from: ProcessId, to: ProcessId) -> Result<()> {
        if self.faults.read().blocks(from, to) {
            Err(Error::Unreachable)
        } else {
            Ok(())
        }
    }

    /// Execute a one-sided write against a *local* descriptor. Shared by
    /// [`Endpoint::put`] and the inbound half of a remote fabric, so both
    /// transports enforce identical MD semantics (permissions, auto-unlink,
    /// completion events, byte accounting).
    pub fn local_put(
        &self,
        from: ProcessId,
        target: ProcessId,
        match_bits: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let state = self.lookup(target)?;
        let md = state
            .mds
            .lock()
            .get(&match_bits)
            .ok_or_else(|| Error::Malformed(format!("no md at {match_bits:#x} on {target}")))?
            .clone();
        if !md.options().allow_put {
            return Err(Error::AccessDenied);
        }
        md.remote_write(offset, data)?;
        if md.consume_op() {
            state.mds.lock().remove(&match_bits);
        }
        self.stats.record_put(from, data.len());
        if md.options().deliver_events {
            // Best effort: a full event queue loses the notification, which
            // is exactly what a real NIC event queue overflow does.
            let _ =
                state.deliver(Event::PutEnd { from, match_bits, offset, len: data.len() }, || {});
        }
        Ok(())
    }

    /// Execute a one-sided read against a *local* descriptor (see
    /// [`NetworkInner::local_put`]).
    pub fn local_get(
        &self,
        from: ProcessId,
        target: ProcessId,
        match_bits: u64,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let state = self.lookup(target)?;
        let md = state
            .mds
            .lock()
            .get(&match_bits)
            .ok_or_else(|| Error::Malformed(format!("no md at {match_bits:#x} on {target}")))?
            .clone();
        if !md.options().allow_get {
            return Err(Error::AccessDenied);
        }
        let data = md.remote_read(offset, len)?;
        if md.consume_op() {
            state.mds.lock().remove(&match_bits);
        }
        self.stats.record_get(from, data.len());
        if md.options().deliver_events {
            let _ =
                state.deliver(Event::GetEnd { from, match_bits, offset, len: data.len() }, || {});
        }
        Ok(data)
    }

    /// Deliver an eager message to a *local* endpoint's bounded queue.
    /// Shared by [`Endpoint::send`] and the inbound half of a remote
    /// fabric. A full queue is [`Error::ServerBusy`]; on the wire that
    /// verdict cannot reach the sender synchronously, so the fabric drops
    /// the frame and the sender discovers the loss via its reply timeout.
    pub fn local_send(
        &self,
        from: ProcessId,
        target: ProcessId,
        match_bits: u64,
        data: Bytes,
    ) -> Result<()> {
        let state = self.lookup(target)?;
        let len = data.len();
        // Statistics are recorded inside `deliver`, before the message is
        // visible to the receiver, so counters are always consistent with
        // what any observer has seen.
        if state.deliver(Event::Message { from, match_bits, data }, || {
            self.stats.record_send(from, len)
        }) {
            Ok(())
        } else {
            self.stats.record_reject();
            Err(Error::ServerBusy)
        }
    }
}

/// An in-process network fabric.
///
/// Create one per simulated machine, then [`register`](Network::register)
/// an [`Endpoint`] for every process (service or application rank).
#[derive(Clone)]
pub struct Network {
    pub(crate) inner: Arc<NetworkInner>,
}

impl Network {
    pub fn new(config: NetworkConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.fault_seed);
        let obs = Arc::new(Registry::with_config(&config.obs));
        let stats = Arc::new(NetStats::with_registry(&obs));
        Self {
            inner: Arc::new(NetworkInner {
                config,
                endpoints: RwLock::new(HashMap::new()),
                obs,
                stats,
                faults: Arc::new(RwLock::new(FaultPlan::default())),
                rng: Mutex::new(rng),
                match_alloc: Arc::new(AtomicU64::new(1)),
                remote: RwLock::new(None),
            }),
        }
    }

    /// A new fabric for *another node of the same cluster*: its own
    /// endpoint registry (processes on that node) but the observability
    /// plane — metric registry, transport counters, fault plan, match-bit
    /// allocator — shared with `self`.
    ///
    /// This is how a one-process test cluster runs one `Network` per
    /// simulated machine, linked by a socket fabric, while the harness
    /// keeps the God's-eye view a single shared network historically gave
    /// it: one `set_faults` partitions every node, one registry snapshot
    /// sees every service.
    pub fn sibling(&self) -> Network {
        let config = self.inner.config.clone();
        let rng = ChaCha8Rng::seed_from_u64(config.fault_seed);
        Self {
            inner: Arc::new(NetworkInner {
                config,
                endpoints: RwLock::new(HashMap::new()),
                obs: Arc::clone(&self.inner.obs),
                stats: Arc::clone(&self.inner.stats),
                faults: Arc::clone(&self.inner.faults),
                rng: Mutex::new(rng),
                match_alloc: Arc::clone(&self.inner.match_alloc),
                remote: RwLock::new(None),
            }),
        }
    }

    /// Attach the transport used for processes this registry does not
    /// hold. Operations addressed to unknown targets are routed through
    /// it instead of failing with [`Error::Unreachable`].
    pub fn set_remote(&self, fabric: Arc<dyn RemoteFabric>) {
        *self.inner.remote.write() = Some(fabric);
    }

    /// Detach the remote transport (used on teardown so the fabric's
    /// threads are not kept alive by the network's reference).
    pub fn clear_remote(&self) {
        *self.inner.remote.write() = None;
    }

    /// Whether `id` is registered on *this* network instance.
    pub fn has_local(&self, id: ProcessId) -> bool {
        self.inner.endpoints.read().contains_key(&id)
    }

    /// Register a process and obtain its endpoint.
    ///
    /// # Panics
    /// Panics if `id` is already registered — duplicate process ids are a
    /// harness bug, not a runtime condition.
    pub fn register(&self, id: ProcessId) -> Endpoint {
        let state = Arc::new(EndpointState {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            capacity: self.inner.config.eager_queue_depth,
            mds: Mutex::new(HashMap::new()),
            opnums: Arc::new(AtomicU64::new(1)),
        });
        let prev = self.inner.endpoints.write().insert(id, Arc::clone(&state));
        assert!(prev.is_none(), "duplicate endpoint registration for {id}");
        Endpoint::new(id, Arc::clone(&self.inner), state)
    }

    /// Remove a process from the fabric (its queued events are dropped).
    pub fn unregister(&self, id: ProcessId) {
        self.inner.endpoints.write().remove(&id);
    }

    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// The metric registry shared by every service on this fabric.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.inner.obs
    }

    /// Replace the active fault plan.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.inner.faults.write() = plan;
    }

    /// Convenience: clear all injected faults.
    pub fn heal(&self) {
        self.set_faults(FaultPlan::default());
    }

    /// The active fault plan (shared with sibling fabrics).
    pub fn faults(&self) -> FaultPlan {
        self.inner.faults.read().clone()
    }

    // ------------------------------------------------------------------
    // Inbound entry points for a remote fabric
    // ------------------------------------------------------------------
    //
    // Traffic arriving over a [`RemoteFabric`] re-enters the local
    // delivery path here. Reachability is re-checked on the receiving
    // side: the initiator checked its own plan before the frame left, so
    // under one broadcast plan a partition is symmetric — frames already
    // in flight when the partition lands are discarded at the boundary,
    // exactly as the in-process fabric refuses them at the send site.

    /// Deliver an eager message that arrived over the remote transport.
    pub fn deliver_send(
        &self,
        from: ProcessId,
        to: ProcessId,
        match_bits: u64,
        data: Bytes,
    ) -> Result<()> {
        self.inner.check_reachable(from, to)?;
        self.inner.local_send(from, to, match_bits, data)
    }

    /// Execute a one-sided write that arrived over the remote transport.
    pub fn deliver_put(
        &self,
        from: ProcessId,
        to: ProcessId,
        match_bits: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.inner.check_reachable(from, to)?;
        self.inner.local_put(from, to, match_bits, offset, data)
    }

    /// Execute a one-sided read that arrived over the remote transport.
    pub fn deliver_get(
        &self,
        from: ProcessId,
        to: ProcessId,
        match_bits: u64,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        self.inner.check_reachable(from, to)?;
        self.inner.local_get(from, to, match_bits, offset, len)
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.inner.endpoints.read().len()
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new(NetworkConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let net = Network::default();
        let _a = net.register(ProcessId::new(0, 0));
        let _b = net.register(ProcessId::new(1, 0));
        assert_eq!(net.endpoint_count(), 2);
        net.unregister(ProcessId::new(0, 0));
        assert_eq!(net.endpoint_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_registration_panics() {
        let net = Network::default();
        let _a = net.register(ProcessId::new(0, 0));
        let _b = net.register(ProcessId::new(0, 0));
    }

    #[test]
    fn fault_plan_blocks_partitioned_nodes() {
        let mut plan = FaultPlan::default();
        plan.partitioned.insert(NodeId(3));
        assert!(plan.blocks(ProcessId::new(3, 0), ProcessId::new(1, 0)));
        assert!(plan.blocks(ProcessId::new(1, 0), ProcessId::new(3, 9)));
        assert!(!plan.blocks(ProcessId::new(1, 0), ProcessId::new(2, 0)));
    }

    #[test]
    fn fault_plan_blocks_dead_processes() {
        let mut plan = FaultPlan::default();
        plan.dead.insert(ProcessId::new(5, 1));
        assert!(plan.blocks(ProcessId::new(5, 1), ProcessId::new(0, 0)));
        assert!(!plan.blocks(ProcessId::new(5, 0), ProcessId::new(0, 0)));
    }

    #[test]
    fn drop_roll_deterministic_per_seed() {
        let a = Network::new(NetworkConfig { fault_seed: 7, ..Default::default() });
        let b = Network::new(NetworkConfig { fault_seed: 7, ..Default::default() });
        a.set_faults(FaultPlan { drop_rate: 0.5, ..Default::default() });
        b.set_faults(FaultPlan { drop_rate: 0.5, ..Default::default() });
        let rolls_a: Vec<bool> = (0..64).map(|_| a.inner.roll_drop()).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.inner.roll_drop()).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|x| *x));
        assert!(rolls_a.iter().any(|x| !*x));
    }

    #[test]
    fn zero_drop_rate_never_drops() {
        let net = Network::default();
        for _ in 0..100 {
            assert!(!net.inner.roll_drop());
        }
    }
}
