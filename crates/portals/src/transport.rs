//! The seam between the in-process fabric and a real wire.
//!
//! A [`Network`](crate::Network) resolves every operation against its own
//! endpoint registry first — that is the in-process transport, and it is
//! the default. When a [`RemoteFabric`] is attached, operations addressed
//! to a process the registry does not know are handed to it instead of
//! failing with `Unreachable`. `lwfs-fabric` implements this trait over
//! TCP sockets; the portals semantics (one-sided MD access, eager sends
//! into a bounded queue, `ServerBusy` backpressure) are preserved on both
//! sides of the seam, so every protocol built on [`Endpoint`] runs
//! unchanged over either transport.
//!
//! The contract mirrors the local operations exactly:
//!
//! * [`send`](RemoteFabric::send) is fire-and-forget. Local backpressure
//!   (the connection's bounded write queue) surfaces synchronously as
//!   [`Error::ServerBusy`]; a full queue on the *remote* side loses the
//!   message silently, exactly like a NIC event-queue overflow, and the
//!   sender finds out via its reply timeout.
//! * [`put`](RemoteFabric::put) / [`get`](RemoteFabric::get) are blocking
//!   round trips: the remote side executes the one-sided access against
//!   its posted descriptor and returns the outcome (or the transfer), and
//!   a lost peer turns into [`Error::Timeout`].
//!
//! [`Endpoint`]: crate::Endpoint
//! [`Error::ServerBusy`]: lwfs_proto::Error::ServerBusy
//! [`Error::Timeout`]: lwfs_proto::Error::Timeout

use bytes::Bytes;
use lwfs_proto::{ProcessId, Result};

/// A transport for operations that leave the local endpoint registry.
///
/// Implementations are attached with
/// [`Network::set_remote`](crate::Network::set_remote); incoming traffic
/// re-enters the fabric through
/// [`Network::deliver_send`](crate::Network::deliver_send) /
/// [`deliver_put`](crate::Network::deliver_put) /
/// [`deliver_get`](crate::Network::deliver_get).
pub trait RemoteFabric: Send + Sync {
    /// Fire an eager message at a process on another node.
    fn send(&self, from: ProcessId, to: ProcessId, match_bits: u64, data: Bytes) -> Result<()>;

    /// One-sided write into a descriptor posted on a remote node.
    fn put(
        &self,
        from: ProcessId,
        to: ProcessId,
        match_bits: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<()>;

    /// One-sided read from a descriptor posted on a remote node.
    fn get(
        &self,
        from: ProcessId,
        to: ProcessId,
        match_bits: u64,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>>;
}
