//! Events deposited in a process's event queue by completed operations.

use bytes::Bytes;
use lwfs_proto::ProcessId;

/// A completion event.
///
/// Mirrors the Portals event kinds the LWFS protocols consume. `Message`
/// carries the payload inline (eager delivery into a server-managed queue);
/// `PutEnd`/`GetEnd` only announce that a one-sided transfer touched a
/// posted memory descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An eager message arrived on the given match bits.
    Message { from: ProcessId, match_bits: u64, data: Bytes },
    /// A remote process wrote into a posted descriptor.
    PutEnd { from: ProcessId, match_bits: u64, offset: u64, len: usize },
    /// A remote process read from a posted descriptor.
    GetEnd { from: ProcessId, match_bits: u64, offset: u64, len: usize },
}

impl Event {
    pub fn match_bits(&self) -> u64 {
        match self {
            Event::Message { match_bits, .. }
            | Event::PutEnd { match_bits, .. }
            | Event::GetEnd { match_bits, .. } => *match_bits,
        }
    }

    pub fn from(&self) -> ProcessId {
        match self {
            Event::Message { from, .. }
            | Event::PutEnd { from, .. }
            | Event::GetEnd { from, .. } => *from,
        }
    }

    /// Payload bytes for `Message` events; `None` otherwise.
    pub fn message_data(&self) -> Option<&Bytes> {
        match self {
            Event::Message { data, .. } => Some(data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Event::Message {
            from: ProcessId::new(1, 2),
            match_bits: 99,
            data: Bytes::from_static(b"hi"),
        };
        assert_eq!(e.match_bits(), 99);
        assert_eq!(e.from(), ProcessId::new(1, 2));
        assert_eq!(e.message_data().unwrap().as_ref(), b"hi");

        let p = Event::PutEnd { from: ProcessId::new(3, 0), match_bits: 1, offset: 0, len: 4 };
        assert!(p.message_data().is_none());
        assert_eq!(p.match_bits(), 1);
    }
}
