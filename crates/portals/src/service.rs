//! Threaded service runner.
//!
//! Every LWFS component (authentication, authorization, storage, naming)
//! is a process that loops on its request queue. This module factors that
//! loop: implement [`Service::handle`] and call [`spawn_service`]; the
//! handler also receives the endpoint so it can perform one-sided bulk
//! transfers (the storage server's pull/push) while processing a request.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lwfs_proto::{Decode as _, Encode as _, Error, ProcessId, Reply, ReplyBody, Request};

use crate::endpoint::Endpoint;
use crate::event::Event;
use crate::network::Network;
use crate::{reply_match, REQUEST_MATCH};

/// A request handler run by [`spawn_service`].
pub trait Service: Send + 'static {
    /// Handle one request, returning the reply body.
    ///
    /// The endpoint is available for one-sided operations against the
    /// client (server-directed data movement).
    fn handle(&mut self, ep: &Endpoint, req: &Request) -> ReplyBody;

    /// Called between requests when the queue is idle; services use this
    /// for background work (e.g. expiring cache entries). Default: nothing.
    fn idle(&mut self, _ep: &Endpoint) {}

    /// Called once before the service stops serving (drain hooks).
    fn on_shutdown(&mut self, _ep: &Endpoint) {}
}

/// Handle to a running service thread.
pub struct ServiceHandle {
    id: ProcessId,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Request shutdown and join the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Register `id` on the network and run `svc` on a dedicated thread.
pub fn spawn_service(net: &Network, id: ProcessId, mut svc: impl Service) -> ServiceHandle {
    let ep = net.register(id);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("lwfs-svc-{id}"))
        .spawn(move || {
            let poll = Duration::from_millis(5);
            while !stop2.load(Ordering::SeqCst) {
                let ev = ep.recv_match(poll, |e| {
                    matches!(e, Event::Message { match_bits, .. } if *match_bits == REQUEST_MATCH)
                });
                match ev {
                    Ok(ev) => {
                        let data = ev.message_data().expect("message event").clone();
                        match Request::from_bytes(data) {
                            Ok(req) => {
                                let body = svc.handle(&ep, &req);
                                let rep = Reply::new(req.opnum, body);
                                // A vanished client is not the server's
                                // problem; drop the reply.
                                let _ =
                                    ep.send(req.reply_to, reply_match(req.opnum.0), rep.to_bytes());
                            }
                            Err(e) => {
                                // Malformed request with no decodable reply
                                // address: nothing to do but count it.
                                let _ = e;
                            }
                        }
                    }
                    Err(Error::Timeout) => svc.idle(&ep),
                    Err(_) => break,
                }
            }
            svc.on_shutdown(&ep);
        })
        .expect("spawn service thread");
    ServiceHandle { id, stop, thread: Some(thread) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::RpcClient;
    use lwfs_proto::RequestBody;

    struct Echo {
        count: u64,
    }

    impl Service for Echo {
        fn handle(&mut self, _ep: &Endpoint, req: &Request) -> ReplyBody {
            self.count += 1;
            match req.body {
                RequestBody::Ping => ReplyBody::Pong,
                _ => ReplyBody::Err(Error::Internal("echo only pings".into())),
            }
        }
    }

    #[test]
    fn spawned_service_answers() {
        let net = Network::default();
        let handle = spawn_service(&net, ProcessId::new(10, 0), Echo { count: 0 });
        let client_ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&client_ep);
        for _ in 0..5 {
            assert_eq!(client.call(handle.id(), RequestBody::Ping).unwrap(), ReplyBody::Pong);
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_stops_service() {
        let net = Network::default();
        let handle = spawn_service(&net, ProcessId::new(10, 0), Echo { count: 0 });
        let id = handle.id();
        handle.shutdown();
        // Service thread no longer drains: request sits, client times out.
        let client_ep = net.register(ProcessId::new(0, 0));
        let mut client = RpcClient::new(&client_ep);
        client.reply_timeout = Duration::from_millis(50);
        assert_eq!(client.call(id, RequestBody::Ping).unwrap_err(), Error::Timeout);
    }

    #[test]
    fn drop_joins_thread() {
        let net = Network::default();
        {
            let _handle = spawn_service(&net, ProcessId::new(11, 0), Echo { count: 0 });
        }
        // Dropping the handle must not leak the thread (join happened).
        // Re-registering the same id would panic if the endpoint had not
        // been released... endpoints stay registered; just assert no hang.
        assert_eq!(net.endpoint_count(), 1);
    }
}
