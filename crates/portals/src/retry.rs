//! Shared exponential-backoff retry with a total-deadline cap.
//!
//! Several layers need the same loop — collectives re-sending into a full
//! eager queue, the replication primary shipping WAL records to a backup,
//! a failed-over client re-sending to a promoted primary. Before this
//! module each grew its own private copy, and the collective one could
//! spin forever on a peer that never drains. The deadline turns "retry
//! transient errors" into a bounded operation: when it expires the caller
//! gets the distinct [`Error::RetriesExhausted`], which is deliberately
//! *not* transient — retrying it would loop forever.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lwfs_proto::{Error, ProcessId, Result};

use crate::endpoint::Endpoint;

/// Backoff shape shared by every retry loop in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First sleep after a transient failure (doubled each attempt).
    pub base: Duration,
    /// Ceiling for the doubling.
    pub cap: Duration,
    /// Total budget: once elapsed, the loop gives up with
    /// [`Error::RetriesExhausted`].
    pub deadline: Duration,
}

impl RetryPolicy {
    /// The historical collective-send shape (50 µs doubling to 10 ms)
    /// under the given total deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self { base: Duration::from_micros(50), cap: Duration::from_millis(10), deadline }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::with_deadline(Duration::from_secs(10))
    }
}

/// Run `op` until it succeeds, fails non-transiently, or the policy's
/// deadline expires. `retryable` decides which errors are worth another
/// attempt; anything else is surfaced immediately.
pub fn with_backoff<T>(
    policy: &RetryPolicy,
    retryable: impl Fn(&Error) -> bool,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let start = Instant::now();
    let mut backoff = policy.base;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) => {
                if start.elapsed() >= policy.deadline {
                    return Err(Error::RetriesExhausted);
                }
                std::thread::sleep(backoff.min(policy.deadline.saturating_sub(start.elapsed())));
                backoff = (backoff * 2).min(policy.cap);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Eager-send `data`, backing off while the receiver's queue is full.
///
/// `ServerBusy` is the only retried error: an unreachable or dead peer
/// fails fast, exactly like a bare [`Endpoint::send`].
pub fn send_with_backoff(
    ep: &Endpoint,
    to: ProcessId,
    match_bits: u64,
    data: Bytes,
    policy: &RetryPolicy,
) -> Result<()> {
    with_backoff(
        policy,
        |e| matches!(e, Error::ServerBusy),
        || ep.send(to, match_bits, data.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast(deadline: Duration) -> RetryPolicy {
        RetryPolicy { base: Duration::from_micros(10), cap: Duration::from_micros(100), deadline }
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let attempts = AtomicU32::new(0);
        let out = with_backoff(&fast(Duration::from_secs(5)), Error::is_transient, || {
            if attempts.fetch_add(1, Ordering::Relaxed) < 3 {
                Err(Error::ServerBusy)
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(attempts.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_converts_transients_into_retries_exhausted() {
        let t0 = Instant::now();
        let out: Result<()> =
            with_backoff(&fast(Duration::from_millis(20)), Error::is_transient, || {
                Err(Error::ServerBusy)
            });
        assert_eq!(out.unwrap_err(), Error::RetriesExhausted);
        // The loop must not sleep meaningfully past the deadline.
        assert!(t0.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let attempts = AtomicU32::new(0);
        let out: Result<()> =
            with_backoff(&fast(Duration::from_secs(5)), Error::is_transient, || {
                attempts.fetch_add(1, Ordering::Relaxed);
                Err(Error::AccessDenied)
            });
        assert_eq!(out.unwrap_err(), Error::AccessDenied);
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn send_fails_fast_on_unreachable_peer() {
        let net = Network::default();
        let ep = net.register(ProcessId::new(0, 0));
        let out = send_with_backoff(
            &ep,
            ProcessId::new(99, 0),
            1,
            Bytes::from_static(b"x"),
            &RetryPolicy::default(),
        );
        assert_eq!(out.unwrap_err(), Error::Unreachable);
    }
}
