//! Memory descriptors: the unit of one-sided access.
//!
//! A [`MemDesc`] is the in-process analogue of a pinned, registered buffer.
//! Once posted under match bits, remote processes can `put` into it or
//! `get` from it **without the owning thread scheduling** — exactly the
//! property server-directed I/O relies on (the server pulls from thousands
//! of client buffers at its own pace, Figure 6).

use std::sync::Arc;

use parking_lot::Mutex;

use lwfs_proto::{Error, Result};

/// Access options for a posted memory descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdOptions {
    /// Remote processes may `put` (write) into this buffer.
    pub allow_put: bool,
    /// Remote processes may `get` (read) from this buffer.
    pub allow_get: bool,
    /// Deliver an event to the owner when a remote operation completes.
    /// Bulk-data descriptors usually disable this: the RPC reply already
    /// tells the client the transfer finished.
    pub deliver_events: bool,
    /// Automatically unlink after this many remote operations
    /// (`None` = persistent). A one-shot reply buffer uses `Some(1)`.
    pub unlink_after: Option<u32>,
}

impl MdOptions {
    /// A buffer a server will *pull* from (client write path).
    pub const fn for_remote_get() -> Self {
        Self { allow_put: false, allow_get: true, deliver_events: false, unlink_after: None }
    }

    /// A buffer a server will *push* into (client read path).
    pub const fn for_remote_put() -> Self {
        Self { allow_put: true, allow_get: false, deliver_events: false, unlink_after: None }
    }

    /// Both directions, with events — used by tests and by journal mirrors.
    pub const fn read_write_events() -> Self {
        Self { allow_put: true, allow_get: true, deliver_events: true, unlink_after: None }
    }
}

impl Default for MdOptions {
    fn default() -> Self {
        Self::read_write_events()
    }
}

/// Shared state of a posted buffer.
#[derive(Debug)]
pub(crate) struct MdInner {
    pub data: Mutex<Vec<u8>>,
    pub options: MdOptions,
    /// Remaining remote operations before auto-unlink (`u32::MAX` if
    /// persistent). Guarded by the owning table's lock during decrement.
    pub remaining_ops: Mutex<u32>,
}

/// A memory descriptor handle. Cloning shares the same underlying buffer.
#[derive(Debug, Clone)]
pub struct MemDesc {
    pub(crate) inner: Arc<MdInner>,
}

impl MemDesc {
    /// Create a descriptor over a fresh zeroed buffer of `len` bytes.
    pub fn zeroed(len: usize, options: MdOptions) -> Self {
        Self::from_vec(vec![0u8; len], options)
    }

    /// Create a descriptor taking ownership of `data`.
    pub fn from_vec(data: Vec<u8>, options: MdOptions) -> Self {
        let remaining = options.unlink_after.unwrap_or(u32::MAX);
        Self {
            inner: Arc::new(MdInner {
                data: Mutex::new(data),
                options,
                remaining_ops: Mutex::new(remaining),
            }),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.data.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn options(&self) -> MdOptions {
        self.inner.options
    }

    /// Copy the buffer contents out (owner-side read).
    pub fn snapshot(&self) -> Vec<u8> {
        self.inner.data.lock().clone()
    }

    /// Owner-side overwrite of the full buffer.
    pub fn fill_from(&self, src: &[u8]) {
        let mut guard = self.inner.data.lock();
        let n = guard.len().min(src.len());
        guard[..n].copy_from_slice(&src[..n]);
    }

    /// Remote read of `[offset, offset+len)`. Enforced against
    /// [`MdOptions::allow_get`] by the endpoint, bounds-checked here.
    pub(crate) fn remote_read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let guard = self.inner.data.lock();
        let start =
            usize::try_from(offset).map_err(|_| Error::Malformed("md offset overflow".into()))?;
        let end =
            start.checked_add(len).ok_or_else(|| Error::Malformed("md length overflow".into()))?;
        if end > guard.len() {
            return Err(Error::Malformed(format!(
                "remote get [{start}, {end}) exceeds md of {} bytes",
                guard.len()
            )));
        }
        Ok(guard[start..end].to_vec())
    }

    /// Remote write of `data` at `offset`.
    pub(crate) fn remote_write(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut guard = self.inner.data.lock();
        let start =
            usize::try_from(offset).map_err(|_| Error::Malformed("md offset overflow".into()))?;
        let end = start
            .checked_add(data.len())
            .ok_or_else(|| Error::Malformed("md length overflow".into()))?;
        if end > guard.len() {
            return Err(Error::Malformed(format!(
                "remote put [{start}, {end}) exceeds md of {} bytes",
                guard.len()
            )));
        }
        guard[start..end].copy_from_slice(data);
        Ok(())
    }

    /// Record one remote operation; returns `true` if the descriptor should
    /// now be unlinked.
    pub(crate) fn consume_op(&self) -> bool {
        let mut rem = self.inner.remaining_ops.lock();
        if *rem == u32::MAX {
            return false;
        }
        *rem = rem.saturating_sub(1);
        *rem == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_requested_len() {
        let md = MemDesc::zeroed(128, MdOptions::default());
        assert_eq!(md.len(), 128);
        assert!(md.snapshot().iter().all(|b| *b == 0));
    }

    #[test]
    fn remote_write_then_read_roundtrips() {
        let md = MemDesc::zeroed(16, MdOptions::default());
        md.remote_write(4, b"abcd").unwrap();
        let got = md.remote_read(4, 4).unwrap();
        assert_eq!(&got, b"abcd");
    }

    #[test]
    fn remote_read_out_of_bounds_rejected() {
        let md = MemDesc::zeroed(8, MdOptions::default());
        assert!(md.remote_read(4, 8).is_err());
        assert!(md.remote_read(u64::MAX, 1).is_err());
    }

    #[test]
    fn remote_write_out_of_bounds_rejected() {
        let md = MemDesc::zeroed(8, MdOptions::default());
        assert!(md.remote_write(7, b"ab").is_err());
        // Boundary write is fine.
        assert!(md.remote_write(6, b"ab").is_ok());
    }

    #[test]
    fn one_shot_consumes() {
        let md = MemDesc::zeroed(8, MdOptions { unlink_after: Some(2), ..MdOptions::default() });
        assert!(!md.consume_op());
        assert!(md.consume_op());
    }

    #[test]
    fn persistent_never_unlinks() {
        let md = MemDesc::zeroed(8, MdOptions::default());
        for _ in 0..100 {
            assert!(!md.consume_op());
        }
    }

    #[test]
    fn fill_from_truncates_to_buffer() {
        let md = MemDesc::zeroed(4, MdOptions::default());
        md.fill_from(b"abcdefgh");
        assert_eq!(md.snapshot(), b"abcd");
    }

    #[test]
    fn clone_shares_storage() {
        let a = MemDesc::zeroed(4, MdOptions::default());
        let b = a.clone();
        a.remote_write(0, b"wxyz").unwrap();
        assert_eq!(b.snapshot(), b"wxyz");
    }
}
