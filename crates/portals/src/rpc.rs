//! Synchronous request/reply on top of the one-sided substrate.
//!
//! An RPC here is exactly the paper's "small request" (Figure 6, step 1):
//! the client eagerly sends an encoded [`Request`] to the server's
//! well-known request queue and waits for a [`Reply`] matched by operation
//! number. Bulk data never flows through this path.
//!
//! The client implements the flow-control loop of §3.2: a server whose
//! queue is full rejects the request ([`Error::ServerBusy`]) and the client
//! backs off and re-sends. The number of re-sends is surfaced in
//! [`RpcClient::resends`] so experiments can report the overhead the paper
//! attributes to rejected bursts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lwfs_proto::{
    Decode, Encode, Error, OpNum, ProcessId, Reply, ReplyBody, Request, RequestBody, Result,
    TraceContext,
};

use crate::endpoint::Endpoint;
use crate::event::Event;
use crate::{reply_match, REQUEST_MATCH};

/// Tunables for the client side of an RPC, settable in one place (e.g.
/// from `ClusterConfig`) instead of hard-coded per call site. Fault tests
/// and the failover path shrink `reply_timeout` so a dead primary is
/// detected in milliseconds rather than the five-second default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcConfig {
    /// How long to wait for a reply before giving up.
    pub reply_timeout: Duration,
    /// Maximum ServerBusy re-sends before surfacing the error.
    pub max_resends: u32,
    /// Base backoff between re-sends (doubled each attempt).
    pub backoff: Duration,
}

impl Default for RpcConfig {
    fn default() -> Self {
        Self {
            reply_timeout: Duration::from_secs(5),
            max_resends: 64,
            backoff: Duration::from_micros(50),
        }
    }
}

/// Client-side RPC state for one endpoint.
pub struct RpcClient<'a> {
    ep: &'a Endpoint,
    next_opnum: Arc<AtomicU64>,
    resends: AtomicU64,
    /// Ambient causal context stamped into every outgoing request (v4
    /// tracing). Two atomics rather than a `Mutex<TraceContext>` so the
    /// client stays usable from `&self` across worker threads; the pair is
    /// not read atomically, which is fine — a worker sets it once before a
    /// burst of child calls and the ids only ever travel together.
    trace_id: AtomicU64,
    parent_req_id: AtomicU64,
    /// How long to wait for a reply before giving up.
    pub reply_timeout: Duration,
    /// Maximum ServerBusy re-sends before surfacing the error.
    pub max_resends: u32,
    /// Base backoff between re-sends (doubled each attempt).
    pub backoff: Duration,
}

impl<'a> RpcClient<'a> {
    pub fn new(ep: &'a Endpoint) -> Self {
        Self::with_counter(ep, Arc::new(AtomicU64::new(1)))
    }

    /// Build a client drawing opnums from the endpoint's shared allocator.
    ///
    /// This is the constructor for threads that share one endpoint —
    /// every `shared` client over the same endpoint allocates from one
    /// counter, so concurrent calls from a worker pool can never collide
    /// on an opnum and replies always match the issuing call. (Two plain
    /// [`new`](Self::new) clients over one endpoint both start at opnum 1
    /// and *would* cross-match.)
    pub fn shared(ep: &'a Endpoint) -> Self {
        Self::with_counter(ep, ep.opnum_counter())
    }

    /// Build a client around an externally owned opnum counter.
    ///
    /// A long-lived client object that constructs short-lived `RpcClient`s
    /// over the same endpoint shares one counter so that operation numbers
    /// never repeat — a stale reply from a timed-out call can then never
    /// match a later call.
    pub fn with_counter(ep: &'a Endpoint, counter: Arc<AtomicU64>) -> Self {
        let cfg = RpcConfig::default();
        Self {
            ep,
            next_opnum: counter,
            resends: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            parent_req_id: AtomicU64::new(0),
            reply_timeout: cfg.reply_timeout,
            max_resends: cfg.max_resends,
            backoff: cfg.backoff,
        }
    }

    /// Set the ambient [`TraceContext`] propagated into every subsequent
    /// [`call`](Self::call). A server handling a traced request installs
    /// `{trace_id: req.trace.trace_id, parent_req_id: req.req_id}` here
    /// before issuing child requests (ReplShip, verify-through, drop
    /// reports), so the whole fan-out shares one trace. A zero `trace_id`
    /// clears the context (requests revert to self-rooted traces).
    pub fn set_trace(&self, ctx: TraceContext) {
        self.trace_id.store(ctx.trace_id, Ordering::Relaxed);
        self.parent_req_id.store(ctx.parent_req_id, Ordering::Relaxed);
    }

    /// The ambient trace context child calls currently inherit.
    pub fn trace(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id.load(Ordering::Relaxed),
            parent_req_id: self.parent_req_id.load(Ordering::Relaxed),
        }
    }

    /// Apply an [`RpcConfig`] (builder style), overriding the defaults.
    pub fn configured(mut self, cfg: &RpcConfig) -> Self {
        self.reply_timeout = cfg.reply_timeout;
        self.max_resends = cfg.max_resends;
        self.backoff = cfg.backoff;
        self
    }

    pub fn endpoint(&self) -> &Endpoint {
        self.ep
    }

    /// Total ServerBusy re-sends performed by this client.
    pub fn resends(&self) -> u64 {
        self.resends.load(Ordering::Relaxed)
    }

    /// Issue `body` to `server` and wait for the matched reply body.
    ///
    /// Error replies from the server are surfaced as `Err`; transport-level
    /// `ServerBusy` (full request queue) triggers the back-off/re-send loop.
    pub fn call(&self, server: ProcessId, body: RequestBody) -> Result<ReplyBody> {
        self.call_with_token(server, body, bytes::Bytes::new())
    }

    /// [`call`](Self::call) with a self-certifying capability token in the
    /// request envelope (wire v5). An empty token encodes as absent, so
    /// this is exactly `call` for legacy traffic.
    pub fn call_with_token(
        &self,
        server: ProcessId,
        body: RequestBody,
        token: bytes::Bytes,
    ) -> Result<ReplyBody> {
        let opnum = OpNum(self.next_opnum.fetch_add(1, Ordering::Relaxed));
        let req =
            Request::new(opnum, self.ep.id(), body).with_trace(self.trace()).with_token(token);
        let wire = req.to_bytes();

        let mut backoff = self.backoff;
        let mut attempts = 0u32;
        loop {
            match self.ep.send(server, REQUEST_MATCH, wire.clone()) {
                Ok(()) => break,
                Err(Error::ServerBusy) if attempts < self.max_resends => {
                    attempts += 1;
                    self.resends.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }

        let want = reply_match(opnum.0);
        let ev = self.ep.recv_match(
            self.reply_timeout,
            |e| matches!(e, Event::Message { match_bits, .. } if *match_bits == want),
        )?;
        let data = ev
            .message_data()
            .ok_or_else(|| Error::Internal("reply event without payload".into()))?
            .clone();
        let reply = Reply::from_bytes(data)?;
        debug_assert_eq!(reply.opnum, opnum);
        reply.into_result()
    }

    /// Like [`call`](Self::call) but also retrying when the *server logic*
    /// answers `ServerBusy` (its bounded request queue was full after
    /// transport acceptance). Used by clients of the storage service.
    pub fn call_retrying(&self, server: ProcessId, body: RequestBody) -> Result<ReplyBody> {
        self.call_retrying_with_token(server, body, bytes::Bytes::new())
    }

    /// [`call_retrying`](Self::call_retrying) with an envelope token.
    pub fn call_retrying_with_token(
        &self,
        server: ProcessId,
        body: RequestBody,
        token: bytes::Bytes,
    ) -> Result<ReplyBody> {
        let mut backoff = self.backoff;
        let mut attempts = 0u32;
        loop {
            match self.call_with_token(server, body.clone(), token.clone()) {
                Err(Error::ServerBusy) if attempts < self.max_resends => {
                    attempts += 1;
                    self.resends.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(20));
                }
                other => return other,
            }
        }
    }
}

/// Server-side RPC helper: decode requests, send matched replies.
pub struct RpcServer<'a> {
    ep: &'a Endpoint,
}

impl<'a> RpcServer<'a> {
    pub fn new(ep: &'a Endpoint) -> Self {
        Self { ep }
    }

    pub fn endpoint(&self) -> &Endpoint {
        self.ep
    }

    /// Wait for the next incoming request.
    pub fn next_request(&self, timeout: Duration) -> Result<Request> {
        let ev = self.ep.recv_match(
            timeout,
            |e| matches!(e, Event::Message { match_bits, .. } if *match_bits == REQUEST_MATCH),
        )?;
        let data = ev
            .message_data()
            .ok_or_else(|| Error::Internal("request event without payload".into()))?
            .clone();
        Request::from_bytes(data)
    }

    /// Send a reply for `req`.
    pub fn reply(&self, req: &Request, body: ReplyBody) -> Result<()> {
        let rep = Reply::new(req.opnum, body);
        self.ep.send(req.reply_to, reply_match(req.opnum.0), rep.to_bytes())
    }

    /// Run a handler loop until it returns `false` from `keep_going`.
    ///
    /// Convenience for tests and simple services; production-grade services
    /// in this workspace run their own loops to interleave one-sided bulk
    /// transfers with request processing.
    pub fn serve_while(
        &self,
        poll: Duration,
        keep_going: impl Fn() -> bool,
        mut handler: impl FnMut(&Request) -> ReplyBody,
    ) {
        while keep_going() {
            match self.next_request(poll) {
                Ok(req) => {
                    let body = handler(&req);
                    // A dead client is not the server's problem.
                    let _ = self.reply(&req, body);
                }
                Err(Error::Timeout) => continue,
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn basic_rpc_roundtrip() {
        let net = Network::default();
        let client_ep = net.register(ProcessId::new(0, 0));
        let server_ep = net.register(ProcessId::new(1, 0));
        let server_id = server_ep.id();

        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let srv = RpcServer::new(&server_ep);
            srv.serve_while(
                Duration::from_millis(10),
                || !stop2.load(Ordering::Relaxed),
                |req| match req.body {
                    RequestBody::Ping => ReplyBody::Pong,
                    _ => ReplyBody::Err(Error::Internal("unexpected".into())),
                },
            );
        });

        let client = RpcClient::new(&client_ep);
        for _ in 0..10 {
            assert_eq!(client.call(server_id, RequestBody::Ping).unwrap(), ReplyBody::Pong);
        }
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn error_reply_surfaces_as_err() {
        let net = Network::default();
        let client_ep = net.register(ProcessId::new(0, 0));
        let server_ep = net.register(ProcessId::new(1, 0));
        let server_id = server_ep.id();

        let handle = std::thread::spawn(move || {
            let srv = RpcServer::new(&server_ep);
            let req = srv.next_request(Duration::from_secs(1)).unwrap();
            srv.reply(&req, ReplyBody::Err(Error::AccessDenied)).unwrap();
        });

        let client = RpcClient::new(&client_ep);
        assert_eq!(client.call(server_id, RequestBody::Ping).unwrap_err(), Error::AccessDenied);
        handle.join().unwrap();
    }

    #[test]
    fn rpc_to_unregistered_process_fails_fast() {
        let net = Network::default();
        let client_ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&client_ep);
        assert_eq!(
            client.call(ProcessId::new(99, 0), RequestBody::Ping).unwrap_err(),
            Error::Unreachable
        );
    }

    #[test]
    fn reply_timeout_when_server_silent() {
        let net = Network::default();
        let client_ep = net.register(ProcessId::new(0, 0));
        let server_ep = net.register(ProcessId::new(1, 0));
        let client = RpcClient::new(&client_ep);
        // Server never drains; queue accepts the request, reply never comes.
        let mut c = client;
        c.reply_timeout = Duration::from_millis(50);
        assert_eq!(c.call(server_ep.id(), RequestBody::Ping).unwrap_err(), Error::Timeout);
    }

    #[test]
    fn busy_transport_triggers_resend_loop() {
        // Queue depth 1: the first unconsumed message blocks the second.
        let net = Network::new(NetworkConfig { eager_queue_depth: 1, ..Default::default() });
        let client_ep = net.register(ProcessId::new(0, 0));
        let server_ep = net.register(ProcessId::new(1, 0));
        let server_id = server_ep.id();

        let handle = std::thread::spawn(move || {
            let srv = RpcServer::new(&server_ep);
            // Drain slowly so the client sees at least one rejection.
            for _ in 0..2 {
                std::thread::sleep(Duration::from_millis(30));
                let req = srv.next_request(Duration::from_secs(2)).unwrap();
                srv.reply(&req, ReplyBody::Pong).unwrap();
            }
        });

        let client_ep2 = net.register(ProcessId::new(2, 0));
        let c2 = RpcClient::new(&client_ep2);
        // Fill the queue with one request, then race a second one in.
        let t = std::thread::spawn(move || {
            let c1 = RpcClient::new(&client_ep);
            c1.call(server_id, RequestBody::Ping)
        });
        std::thread::sleep(Duration::from_millis(5));
        let r2 = c2.call(server_id, RequestBody::Ping);
        assert_eq!(r2.unwrap(), ReplyBody::Pong);
        assert!(t.join().unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn rpc_config_overrides_all_knobs() {
        let net = Network::default();
        let ep = net.register(ProcessId::new(0, 0));
        let cfg = RpcConfig {
            reply_timeout: Duration::from_millis(123),
            max_resends: 7,
            backoff: Duration::from_micros(9),
        };
        let c = RpcClient::new(&ep).configured(&cfg);
        assert_eq!(c.reply_timeout, cfg.reply_timeout);
        assert_eq!(c.max_resends, 7);
        assert_eq!(c.backoff, Duration::from_micros(9));
        // Defaults stay at the historical values.
        let d = RpcConfig::default();
        assert_eq!(d.reply_timeout, Duration::from_secs(5));
        assert_eq!(d.max_resends, 64);
    }

    #[test]
    fn shared_clients_draw_from_one_opnum_allocator() {
        // Worker threads each build their own `RpcClient::shared` over the
        // server endpoint; the per-endpoint counter guarantees their
        // concurrent calls can never collide on an opnum (two `new`
        // clients both start at 1 and would cross-match replies).
        let net = Network::default();
        let ep = net.register(ProcessId::new(0, 0));
        let c1 = RpcClient::shared(&ep);
        let c2 = RpcClient::shared(&ep);
        let drawn: Vec<u64> = (0..6)
            .map(|i| {
                let c = if i % 2 == 0 { &c1 } else { &c2 };
                c.next_opnum.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let mut unique = drawn.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), drawn.len(), "interleaved draws never repeat: {drawn:?}");
        // A plain client keeps its private counter.
        let private = RpcClient::new(&ep);
        assert_eq!(private.next_opnum.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ambient_trace_context_rides_every_call() {
        let net = Network::default();
        let client_ep = net.register(ProcessId::new(0, 0));
        let server_ep = net.register(ProcessId::new(1, 0));
        let server_id = server_ep.id();

        let handle = std::thread::spawn(move || {
            let srv = RpcServer::new(&server_ep);
            let mut seen = Vec::new();
            for _ in 0..3 {
                let req = srv.next_request(Duration::from_secs(2)).unwrap();
                seen.push((req.req_id, req.trace));
                srv.reply(&req, ReplyBody::Pong).unwrap();
            }
            seen
        });

        let client = RpcClient::new(&client_ep);
        // Untraced: the request self-roots at its own req_id.
        client.call(server_id, RequestBody::Ping).unwrap();
        // Traced: the ambient context overrides the self-root.
        let ctx = TraceContext { trace_id: 0xABCD, parent_req_id: 7 };
        client.set_trace(ctx);
        client.call(server_id, RequestBody::Ping).unwrap();
        // Cleared: back to self-rooted.
        client.set_trace(TraceContext::default());
        client.call(server_id, RequestBody::Ping).unwrap();

        let seen = handle.join().unwrap();
        assert_eq!(seen[0].1, TraceContext { trace_id: seen[0].0, parent_req_id: 0 });
        assert_eq!(seen[1].1, ctx);
        assert_eq!(seen[2].1, TraceContext { trace_id: seen[2].0, parent_req_id: 0 });
    }

    #[test]
    fn interleaved_replies_match_correct_calls() {
        // Server answers requests out of order; opnum matching must pair
        // each reply with its call.
        let net = Network::default();
        let client_ep = Arc::new(net.register(ProcessId::new(0, 0)));
        let server_ep = net.register(ProcessId::new(1, 0));
        let server_id = server_ep.id();

        let handle = std::thread::spawn(move || {
            let srv = RpcServer::new(&server_ep);
            let r1 = srv.next_request(Duration::from_secs(2)).unwrap();
            let r2 = srv.next_request(Duration::from_secs(2)).unwrap();
            // Reply in reverse order.
            srv.reply(&r2, ReplyBody::WriteDone { len: 2 }).unwrap();
            srv.reply(&r1, ReplyBody::WriteDone { len: 1 }).unwrap();
        });

        // Two calls from the same endpoint, issued from two threads.
        let ep2 = Arc::clone(&client_ep);
        let t1 = std::thread::spawn(move || {
            let c = RpcClient::new(&ep2);
            c.call(server_id, RequestBody::Ping)
        });
        std::thread::sleep(Duration::from_millis(10));
        // Second call: new client struct but same endpoint; opnums must not
        // collide because they are allocated per client. Use distinct start.
        let c2 = RpcClient::new(&client_ep);
        c2.next_opnum.store(100, Ordering::Relaxed);
        let r2 = c2.call(server_id, RequestBody::Ping).unwrap();
        let r1 = t1.join().unwrap().unwrap();
        assert_eq!(r1, ReplyBody::WriteDone { len: 1 });
        assert_eq!(r2, ReplyBody::WriteDone { len: 2 });
        handle.join().unwrap();
    }
}
