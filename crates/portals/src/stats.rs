//! Transport-level statistics.
//!
//! The paper's scalability rules (§2.3) are stated in terms of *message
//! counts*: no system-imposed O(n) operations, O(m) inter-server traffic
//! rare. The test suite enforces those rules by reading these counters, so
//! they are maintained unconditionally — a few relaxed atomics and a
//! lock-free per-sender table, negligible next to a channel send.
//!
//! Counters live in the network's `lwfs_obs::Registry` under
//! `portals.*`, so they appear in metric snapshots alongside the other
//! services while remaining directly readable here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lwfs_obs::{Counter, Registry};
use lwfs_proto::ProcessId;
use parking_lot::Mutex;

/// Counters for one network instance. Shared by all endpoints.
#[derive(Debug)]
pub struct NetStats {
    /// Eager messages successfully delivered.
    pub messages: Arc<Counter>,
    /// Eager messages rejected because the target queue was full.
    pub messages_rejected: Arc<Counter>,
    /// Eager messages lost to injected faults.
    pub messages_dropped: Arc<Counter>,
    /// One-sided put operations.
    pub puts: Arc<Counter>,
    /// One-sided get operations.
    pub gets: Arc<Counter>,
    /// Total payload bytes moved by messages, puts, and gets.
    pub bytes: Arc<Counter>,
    /// Per-sender operation counts (messages + puts + gets initiated).
    sent_by: SenderTable,
}

impl Default for NetStats {
    fn default() -> Self {
        Self::with_registry(&Registry::new())
    }
}

impl NetStats {
    /// Build the stats block with its counters registered under
    /// `portals.*` in `registry`.
    pub fn with_registry(registry: &Registry) -> Self {
        Self {
            messages: registry.counter("portals.messages"),
            messages_rejected: registry.counter("portals.messages_rejected"),
            messages_dropped: registry.counter("portals.messages_dropped"),
            puts: registry.counter("portals.puts"),
            gets: registry.counter("portals.gets"),
            bytes: registry.counter("portals.bytes"),
            sent_by: SenderTable::new(),
        }
    }

    pub fn record_send(&self, from: ProcessId, bytes: usize) {
        self.messages.inc();
        self.bytes.add(bytes as u64);
        self.sent_by.record(from);
    }

    pub fn record_reject(&self) {
        self.messages_rejected.inc();
    }

    pub fn record_drop(&self) {
        self.messages_dropped.inc();
    }

    pub fn record_put(&self, from: ProcessId, bytes: usize) {
        self.puts.inc();
        self.bytes.add(bytes as u64);
        self.sent_by.record(from);
    }

    pub fn record_get(&self, from: ProcessId, bytes: usize) {
        self.gets.inc();
        self.bytes.add(bytes as u64);
        self.sent_by.record(from);
    }

    /// Operations initiated by `id` (messages, puts, gets).
    pub fn sent_by(&self, id: ProcessId) -> u64 {
        self.sent_by.get(id)
    }

    /// Total operations initiated across all processes.
    pub fn total_ops(&self) -> u64 {
        self.messages.get() + self.puts.get() + self.gets.get()
    }

    /// Snapshot the per-sender table (for test assertions and reports).
    pub fn sent_by_snapshot(&self) -> HashMap<ProcessId, u64> {
        self.sent_by.snapshot()
    }

    /// Zero every counter. Tests call this between phases so that rule
    /// checks measure exactly one protocol step.
    pub fn reset(&self) {
        self.messages.reset();
        self.messages_rejected.reset();
        self.messages_dropped.reset();
        self.puts.reset();
        self.gets.reset();
        self.bytes.reset();
        self.sent_by.reset();
    }
}

/// Lock-free fixed-capacity per-sender counter table.
///
/// The hot path (`record`) is a hash probe over pre-sized slots with one
/// `fetch_add` — no lock, no allocation — replacing the former
/// `Mutex<HashMap<ProcessId, u64>>` that serialized every send on the
/// transport. Clusters here are at most a few hundred processes; in the
/// unlikely event the fixed table fills, further senders fall back to a
/// mutexed overflow map, preserving exact counting semantics.
#[derive(Debug)]
struct SenderTable {
    slots: Box<[Slot; SLOTS]>,
    overflow: Mutex<HashMap<ProcessId, u64>>,
}

const SLOTS: usize = 256;

/// Slot publication states for `Slot::tag`.
const EMPTY: u64 = 0;
const CLAIMED: u64 = 1;
const PUBLISHED: u64 = 2;

#[derive(Debug)]
struct Slot {
    tag: AtomicU64,
    key: AtomicU64,
    count: AtomicU64,
}

fn pack(id: ProcessId) -> u64 {
    (id.nid.0 as u64) << 32 | id.pid.0 as u64
}

fn unpack(key: u64) -> ProcessId {
    ProcessId::new((key >> 32) as u32, key as u32)
}

fn slot_of(key: u64) -> usize {
    // splitmix64 finalizer: spreads sequential nids across the table.
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % SLOTS
}

impl SenderTable {
    fn new() -> Self {
        Self {
            slots: Box::new(std::array::from_fn(|_| Slot {
                tag: AtomicU64::new(EMPTY),
                key: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })),
            overflow: Mutex::new(HashMap::new()),
        }
    }

    fn record(&self, from: ProcessId) {
        let key = pack(from);
        let start = slot_of(key);
        for probe in 0..SLOTS {
            let slot = &self.slots[(start + probe) % SLOTS];
            match slot.tag.load(Ordering::Acquire) {
                PUBLISHED => {
                    if slot.key.load(Ordering::Relaxed) == key {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Occupied by another sender — keep probing.
                }
                EMPTY => {
                    if slot
                        .tag
                        .compare_exchange(EMPTY, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        slot.key.store(key, Ordering::Relaxed);
                        slot.tag.store(PUBLISHED, Ordering::Release);
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    // Lost the race; retry this slot (now CLAIMED or
                    // PUBLISHED by the winner).
                    let winner = loop {
                        let t = slot.tag.load(Ordering::Acquire);
                        if t != CLAIMED {
                            break t;
                        }
                        std::hint::spin_loop();
                    };
                    if winner == PUBLISHED && slot.key.load(Ordering::Relaxed) == key {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                _ => {
                    // CLAIMED: writer is mid-publish. Wait for the key,
                    // then treat like PUBLISHED.
                    while slot.tag.load(Ordering::Acquire) == CLAIMED {
                        std::hint::spin_loop();
                    }
                    if slot.key.load(Ordering::Relaxed) == key {
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }
        // Table full of other senders: exact counts continue in the
        // overflow map.
        *self.overflow.lock().entry(from).or_insert(0) += 1;
    }

    fn get(&self, id: ProcessId) -> u64 {
        let key = pack(id);
        let start = slot_of(key);
        for probe in 0..SLOTS {
            let slot = &self.slots[(start + probe) % SLOTS];
            match slot.tag.load(Ordering::Acquire) {
                EMPTY => break,
                PUBLISHED if slot.key.load(Ordering::Relaxed) == key => {
                    return slot.count.load(Ordering::Relaxed);
                }
                _ => {}
            }
        }
        self.overflow.lock().get(&id).copied().unwrap_or(0)
    }

    fn snapshot(&self) -> HashMap<ProcessId, u64> {
        let mut out: HashMap<ProcessId, u64> = self
            .slots
            .iter()
            .filter(|s| s.tag.load(Ordering::Acquire) == PUBLISHED)
            .filter_map(|s| {
                let n = s.count.load(Ordering::Relaxed);
                (n > 0).then(|| (unpack(s.key.load(Ordering::Relaxed)), n))
            })
            .collect();
        for (id, n) in self.overflow.lock().iter() {
            if *n > 0 {
                *out.entry(*id).or_insert(0) += n;
            }
        }
        out
    }

    /// Zero all counts. Slots stay assigned to their senders (harmless:
    /// a zero-count slot is invisible to `snapshot` and reads as 0).
    fn reset(&self) {
        for slot in self.slots.iter() {
            if slot.tag.load(Ordering::Acquire) == PUBLISHED {
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        self.overflow.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::default();
        let p = ProcessId::new(1, 0);
        s.record_send(p, 10);
        s.record_put(p, 20);
        s.record_get(p, 30);
        s.record_reject();
        s.record_drop();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.bytes.load(Ordering::Relaxed), 60);
        assert_eq!(s.sent_by(p), 3);
        assert_eq!(s.sent_by(ProcessId::new(2, 0)), 0);
        s.reset();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.sent_by(p), 0);
    }

    #[test]
    fn counters_feed_shared_registry() {
        let registry = Registry::new();
        let s = NetStats::with_registry(&registry);
        s.record_send(ProcessId::new(3, 0), 100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("portals.messages"), Some(1));
        assert_eq!(snap.counter("portals.bytes"), Some(100));
    }

    #[test]
    fn sender_table_many_senders_snapshot() {
        let s = NetStats::default();
        // More senders than table slots: overflow must keep exact counts.
        for nid in 0..400u32 {
            let p = ProcessId::new(nid, 0);
            for _ in 0..=nid % 5 {
                s.record_send(p, 1);
            }
        }
        let snap = s.sent_by_snapshot();
        assert_eq!(snap.len(), 400);
        for nid in 0..400u32 {
            let p = ProcessId::new(nid, 0);
            assert_eq!(s.sent_by(p), (nid % 5 + 1) as u64, "nid {nid}");
            assert_eq!(snap[&p], (nid % 5 + 1) as u64);
        }
        s.reset();
        assert!(s.sent_by_snapshot().is_empty());
        assert_eq!(s.sent_by(ProcessId::new(17, 0)), 0);
    }

    #[test]
    fn sender_table_concurrent_recording_is_exact() {
        let s = std::sync::Arc::new(NetStats::default());
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        // Every thread hits shared and private senders.
                        s.record_send(ProcessId::new(i % 19, 0), 0);
                        s.record_send(ProcessId::new(1000 + t, 0), 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = s.sent_by_snapshot().values().sum();
        assert_eq!(total, 8 * 2000);
        for t in 0..8u32 {
            assert_eq!(s.sent_by(ProcessId::new(1000 + t, 0)), 1000);
        }
    }
}
