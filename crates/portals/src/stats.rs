//! Transport-level statistics.
//!
//! The paper's scalability rules (§2.3) are stated in terms of *message
//! counts*: no system-imposed O(n) operations, O(m) inter-server traffic
//! rare. The test suite enforces those rules by reading these counters, so
//! they are maintained unconditionally (they are a few relaxed atomics and a
//! small map — negligible next to a channel send).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use lwfs_proto::ProcessId;
use parking_lot::Mutex;

/// Counters for one network instance. Shared by all endpoints.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Eager messages successfully delivered.
    pub messages: AtomicU64,
    /// Eager messages rejected because the target queue was full.
    pub messages_rejected: AtomicU64,
    /// Eager messages lost to injected faults.
    pub messages_dropped: AtomicU64,
    /// One-sided put operations.
    pub puts: AtomicU64,
    /// One-sided get operations.
    pub gets: AtomicU64,
    /// Total payload bytes moved by messages, puts, and gets.
    pub bytes: AtomicU64,
    /// Per-sender message counts (messages + puts + gets initiated).
    sent_by: Mutex<HashMap<ProcessId, u64>>,
}

impl NetStats {
    pub fn record_send(&self, from: ProcessId, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        *self.sent_by.lock().entry(from).or_insert(0) += 1;
    }

    pub fn record_reject(&self) {
        self.messages_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_drop(&self) {
        self.messages_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_put(&self, from: ProcessId, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        *self.sent_by.lock().entry(from).or_insert(0) += 1;
    }

    pub fn record_get(&self, from: ProcessId, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        *self.sent_by.lock().entry(from).or_insert(0) += 1;
    }

    /// Operations initiated by `id` (messages, puts, gets).
    pub fn sent_by(&self, id: ProcessId) -> u64 {
        self.sent_by.lock().get(&id).copied().unwrap_or(0)
    }

    /// Total operations initiated across all processes.
    pub fn total_ops(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
            + self.puts.load(Ordering::Relaxed)
            + self.gets.load(Ordering::Relaxed)
    }

    /// Snapshot the per-sender table (for test assertions and reports).
    pub fn sent_by_snapshot(&self) -> HashMap<ProcessId, u64> {
        self.sent_by.lock().clone()
    }

    /// Zero every counter. Tests call this between phases so that rule
    /// checks measure exactly one protocol step.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.messages_rejected.store(0, Ordering::Relaxed);
        self.messages_dropped.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.sent_by.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::default();
        let p = ProcessId::new(1, 0);
        s.record_send(p, 10);
        s.record_put(p, 20);
        s.record_get(p, 30);
        s.record_reject();
        s.record_drop();
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.bytes.load(Ordering::Relaxed), 60);
        assert_eq!(s.sent_by(p), 3);
        assert_eq!(s.sent_by(ProcessId::new(2, 0)), 0);
        s.reset();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.sent_by(p), 0);
    }
}
