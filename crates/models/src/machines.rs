//! Calibrated machine descriptions.
//!
//! Table 1 (compute/I/O node counts for the DOE MPPs), Table 2 (Red Storm
//! communication and I/O performance), and the development cluster the §4
//! experiments actually ran on.

/// A machine the models can run against.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    pub name: &'static str,
    /// Compute nodes available for application processes.
    pub compute_nodes: usize,
    /// I/O (storage-server) nodes.
    pub io_nodes: usize,
    /// Per-compute-node network injection bandwidth, MB/s (decimal).
    pub client_nic_mbps: f64,
    /// Per-I/O-node network bandwidth, MB/s.
    pub server_nic_mbps: f64,
    /// Per-I/O-node storage (RAID) bandwidth, MB/s.
    pub server_disk_mbps: f64,
    /// One-way small-message latency, nanoseconds.
    pub latency_ns: u64,
}

impl Machine {
    /// Compute:I/O node ratio (the right-hand column of Table 1).
    pub fn ratio(&self) -> f64 {
        self.compute_nodes as f64 / self.io_nodes as f64
    }

    /// Aggregate storage bandwidth across all I/O nodes, MB/s.
    pub fn aggregate_disk_mbps(&self) -> f64 {
        self.io_nodes as f64 * self.server_disk_mbps
    }

    /// The Sandia I/O development cluster of §4: "40 2-way SMP 2.0 GHz
    /// Opteron nodes with a Myrinet interconnect. We used 1 node for the
    /// metadata/authorization server, 8 as storage servers, and the
    /// remaining 31 … for compute nodes." Each storage node hosted two
    /// OSTs/LWFS servers on an LSI fibre-channel RAID, so up to 16
    /// storage servers. Calibration: Myrinet ≈ 230 MB/s per node;
    /// per-server RAID path ≈ 95 MB/s (Figure 9 plateaus near
    /// 1.4–1.5 GB/s with 16 servers).
    pub fn dev_cluster() -> Machine {
        Machine {
            name: "sandia-io-dev-cluster",
            compute_nodes: 31,
            io_nodes: 16, // maximum storage servers (2 per storage node)
            client_nic_mbps: 230.0,
            server_nic_mbps: 230.0,
            server_disk_mbps: 95.0,
            latency_ns: 10_000, // ~10 µs Myrinet/GM small-message latency
        }
    }

    /// Red Storm, from Table 2: 6.0 GB/s bi-directional link bandwidth,
    /// 400 MB/s I/O-node bandwidth to RAID, 2.0 µs one-hop MPI latency.
    pub fn red_storm() -> Machine {
        Machine {
            name: "red-storm",
            compute_nodes: 10_368,
            io_nodes: 256,
            client_nic_mbps: 6_000.0,
            server_nic_mbps: 6_000.0,
            server_disk_mbps: 400.0,
            latency_ns: 2_000,
        }
    }

    /// BlueGene/L (Table 1 row; bandwidths approximate for its tree
    /// network and GPFS I/O nodes).
    pub fn bluegene_l() -> Machine {
        Machine {
            name: "bluegene-l",
            compute_nodes: 65_536,
            io_nodes: 1_024,
            client_nic_mbps: 350.0,
            server_nic_mbps: 350.0,
            server_disk_mbps: 200.0,
            latency_ns: 3_000,
        }
    }

    /// SNL Intel Paragon (Table 1, 1990s).
    pub fn paragon() -> Machine {
        Machine {
            name: "snl-intel-paragon",
            compute_nodes: 1_840,
            io_nodes: 32,
            client_nic_mbps: 175.0,
            server_nic_mbps: 175.0,
            server_disk_mbps: 10.0,
            latency_ns: 25_000,
        }
    }

    /// ASCI Red (Table 1, 1990s).
    pub fn asci_red() -> Machine {
        Machine {
            name: "asci-red",
            compute_nodes: 4_510,
            io_nodes: 73,
            client_nic_mbps: 310.0,
            server_nic_mbps: 310.0,
            server_disk_mbps: 30.0,
            latency_ns: 15_000,
        }
    }

    /// The §4 extrapolation target: "a theoretical petaflop system with
    /// 100,000 compute nodes and 2000 I/O nodes".
    pub fn petaflop() -> Machine {
        Machine {
            name: "petaflop-extrapolation",
            compute_nodes: 100_000,
            io_nodes: 2_000,
            client_nic_mbps: 6_000.0,
            server_nic_mbps: 6_000.0,
            server_disk_mbps: 400.0,
            latency_ns: 2_000,
        }
    }

    /// The Table 1 rows, in paper order.
    pub fn table1() -> Vec<Machine> {
        vec![Machine::paragon(), Machine::asci_red(), Machine::red_storm(), Machine::bluegene_l()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratios_match_paper() {
        // Paper Table 1: 58:1, 62:1, 41:1, 64:1.
        let expected = [58.0, 62.0, 41.0, 64.0];
        for (m, want) in Machine::table1().iter().zip(expected) {
            assert!(
                (m.ratio() - want).abs() < 1.0,
                "{}: ratio {:.1} vs paper {want}",
                m.name,
                m.ratio()
            );
        }
    }

    #[test]
    fn red_storm_matches_table2() {
        let rs = Machine::red_storm();
        assert_eq!(rs.latency_ns, 2_000); // 2.0 µs MPI latency
        assert_eq!(rs.client_nic_mbps, 6_000.0); // 6.0 GB/s link
        assert_eq!(rs.server_disk_mbps, 400.0); // 400 MB/s to RAID
    }

    #[test]
    fn dev_cluster_matches_section4_setup() {
        let dc = Machine::dev_cluster();
        assert_eq!(dc.compute_nodes, 31);
        assert_eq!(dc.io_nodes, 16);
        // 16 servers plateau in Figure 9 is ~1.4–1.5 GB/s.
        let agg = dc.aggregate_disk_mbps();
        assert!((1400.0..=1600.0).contains(&agg), "aggregate {agg}");
    }

    #[test]
    fn petaflop_matches_section4_extrapolation() {
        let p = Machine::petaflop();
        assert_eq!(p.compute_nodes, 100_000);
        assert_eq!(p.io_nodes, 2_000);
        assert!((p.ratio() - 50.0).abs() < 1e-9);
    }
}
