//! The §4 closing extrapolation: "if we make conservative approximations
//! to scale the results from our development cluster to a theoretical
//! petaflop system with 100,000 compute nodes and 2000 I/O nodes, creating
//! the files will require multiple minutes to complete — roughly 10% of
//! the total time for the checkpoint operation."
//!
//! We regenerate the estimate from the model: the create storm runs
//! through the [`CreateSim`] queueing model (one MDS for the traditional
//! PFS, 2000 distributed servers for LWFS), and the dump phase is the
//! aggregate-bandwidth bound. Per-node state defaults to a full 2006-era
//! node memory (8 GB), which is what makes creates land near the paper's
//! ~10% figure.

use crate::calib::Calibration;
use crate::create::CreateSim;
use crate::dump::CkptImpl;
use crate::machines::Machine;

/// The extrapolation result for one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct PetaflopReport {
    pub impl_kind: CkptImpl,
    pub create_secs: f64,
    pub dump_secs: f64,
    /// Fraction of the full checkpoint spent creating files/objects.
    pub create_fraction: f64,
}

impl PetaflopReport {
    pub fn total_secs(&self) -> f64 {
        self.create_secs + self.dump_secs
    }
}

/// Run the extrapolation for one implementation.
///
/// `bytes_per_node` is the state dumped per compute node (default
/// estimate: 8 GB).
pub fn petaflop_report(impl_kind: CkptImpl, bytes_per_node: u64) -> PetaflopReport {
    let machine = Machine::petaflop();
    let calib = Calibration::default();

    // Create phase. Shared-file checkpointing performs exactly ONE create
    // (plus opens, which the MDS absorbs at its open rate); the other two
    // create once per compute node.
    let create_makespan_secs = if matches!(impl_kind, CkptImpl::LustreShared) {
        let create_ns = calib.mds_create_ns + machine.io_nodes as u64 * calib.mds_per_stripe_ns;
        let opens_ns = machine.compute_nodes as u64 * calib.mds_open_ns;
        (create_ns + opens_ns) as f64 / 1e9
    } else {
        CreateSim {
            machine: machine.clone(),
            calib: calib.clone(),
            impl_kind,
            clients: machine.compute_nodes,
            servers: machine.io_nodes,
            creates_per_client: 1,
        }
        .run(1)
        .makespan_secs
    };

    // Dump phase: aggregate-bandwidth bound (the network fabric outruns
    // the RAIDs on this machine, Table 2).
    let total_bytes = machine.compute_nodes as f64 * bytes_per_node as f64;
    let agg = machine.aggregate_disk_mbps() * 1e6; // bytes/sec
    let mut dump_secs = total_bytes / agg;
    if matches!(impl_kind, CkptImpl::LustreShared) {
        // The shared-file lane overhead halves effective bandwidth.
        dump_secs *= 2.0;
    }

    let create_secs = create_makespan_secs;
    PetaflopReport {
        impl_kind,
        create_secs,
        dump_secs,
        create_fraction: create_secs / (create_secs + dump_secs),
    }
}

/// Default per-node state for the extrapolation: 8 GB.
pub const DEFAULT_BYTES_PER_NODE: u64 = 8 * 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lustre_creates_take_multiple_minutes() {
        let r = petaflop_report(CkptImpl::LustreFilePerProc, DEFAULT_BYTES_PER_NODE);
        // 100k serialized ~1.5 ms transactions ⇒ ~150 s.
        assert!(r.create_secs > 120.0 && r.create_secs < 300.0, "create {:.0}s", r.create_secs);
        // "roughly 10% of the total time for the checkpoint operation".
        assert!((0.05..=0.25).contains(&r.create_fraction), "fraction {:.3}", r.create_fraction);
    }

    #[test]
    fn lwfs_creates_are_negligible_at_scale() {
        let r = petaflop_report(CkptImpl::LwfsObjPerProc, DEFAULT_BYTES_PER_NODE);
        assert!(r.create_secs < 2.0, "create {:.3}s", r.create_secs);
        assert!(r.create_fraction < 0.01);
    }

    #[test]
    fn dump_phase_is_the_same_for_lwfs_and_fpp() {
        let a = petaflop_report(CkptImpl::LwfsObjPerProc, DEFAULT_BYTES_PER_NODE);
        let b = petaflop_report(CkptImpl::LustreFilePerProc, DEFAULT_BYTES_PER_NODE);
        assert!((a.dump_secs - b.dump_secs).abs() < 1e-9);
        // 100k × 8 GB through 2000 × 400 MB/s = 1000 s.
        assert!((a.dump_secs - 1000.0).abs() < 1.0, "{}", a.dump_secs);
    }
}
