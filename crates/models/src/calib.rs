//! Software-path calibration constants.
//!
//! Hardware rates live in [`crate::machines`]; this module holds the
//! *software* service times — metadata transactions, object creates, lock
//! hand-offs — with the reasoning for each value. They are era-appropriate
//! (2005/2006 Lustre 1.x on ext3, LWFS prototype on Portals) and chosen to
//! land the model in the same decade of ops/sec the paper plots, without
//! fitting individual data points.

/// Calibration bundle consumed by the dump and create models.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Lustre MDS service time per file create, ns. A create commits a
    /// journaled metadata transaction (~1.4 ms ⇒ ≈700 creates/s, the
    /// order of Figure 10-b's ceiling).
    pub mds_create_ns: u64,
    /// Additional MDS work per stripe object allocated, ns.
    pub mds_per_stripe_ns: u64,
    /// Lustre MDS service time per open (attribute fetch, no allocation).
    pub mds_open_ns: u64,
    /// LWFS storage-server service time per object create, ns: an OSD
    /// create is a local, journaled directory insert (~250 µs ⇒ ≈4 000
    /// creates/s *per server*, scaling with server count as Figure 10-c).
    pub ost_create_ns: u64,
    /// Client-side software overhead per operation (library + Portals
    /// event handling), ns.
    pub client_op_ns: u64,
    /// DLM lock hand-off between clients, ns (enqueue + blocking callback
    /// + grant round trip on the era's Myrinet stack).
    pub lock_handoff_ns: u64,
    /// Disk locality penalty when consecutive chunks of one stripe object
    /// come from different writers, ns. Interleaved writers defeat the
    /// allocator's extent clustering and the track cache, costing roughly
    /// one chunk-write's worth of seeking per switch — this mechanism is
    /// what halves shared-file throughput in Figure 9.
    pub writer_switch_ns: u64,
    /// Transfer chunk size used by the models, bytes.
    pub chunk_bytes: u64,
    /// Modeled pinned-buffer pipeline depth per server (bounds in-flight
    /// chunks per client, §3.2 / Figure 6).
    pub pipeline_depth: u32,
    /// Compute-phase jitter bound between ranks at checkpoint entry, ns.
    pub start_jitter_ns: u64,
    /// Ablation: is the storage-server capability cache enabled? When
    /// `false`, EVERY chunk authorization pays a verify-through round
    /// trip at the (single) authorization server — quantifying what the
    /// §3.1.2 caching design buys.
    pub cap_cache: bool,
    /// Authorization-server service time per VerifyCaps call, ns (only
    /// exercised when `cap_cache` is false or on cold misses).
    pub authz_verify_ns: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            mds_create_ns: 1_400_000,
            mds_per_stripe_ns: 100_000,
            mds_open_ns: 300_000,
            ost_create_ns: 250_000,
            client_op_ns: 100_000,
            lock_handoff_ns: 1_000_000,
            writer_switch_ns: 10_000_000,
            chunk_bytes: 1_000_000,
            pipeline_depth: 4,
            start_jitter_ns: 2_000_000,
            cap_cache: true,
            authz_verify_ns: 30_000,
        }
    }
}

impl Calibration {
    /// Expected Lustre MDS create throughput ceiling, ops/s.
    pub fn mds_create_ceiling(&self, stripes: u32) -> f64 {
        1e9 / (self.mds_create_ns + u64::from(stripes) * self.mds_per_stripe_ns) as f64
    }

    /// Expected LWFS create ceiling for `servers`, ops/s.
    pub fn lwfs_create_ceiling(&self, servers: usize) -> f64 {
        servers as f64 * 1e9 / self.ost_create_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceilings_are_in_the_paper_decade() {
        let c = Calibration::default();
        // Figure 10-b ceiling: several hundred creates/s.
        let mds = c.mds_create_ceiling(1);
        assert!((400.0..=900.0).contains(&mds), "MDS ceiling {mds}");
        // Figure 10-c ceiling at 16 servers: tens of thousands.
        let lwfs = c.lwfs_create_ceiling(16);
        assert!((40_000.0..=80_000.0).contains(&lwfs), "LWFS ceiling {lwfs}");
        // And two orders of magnitude apart — the headline of Figure 10-a.
        assert!(lwfs / mds > 50.0);
    }

    #[test]
    fn stripes_slow_mds_creates() {
        let c = Calibration::default();
        assert!(c.mds_create_ceiling(16) < c.mds_create_ceiling(1));
    }
}
