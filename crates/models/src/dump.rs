//! The I/O-dump model behind **Figure 9**.
//!
//! Each client process dumps `bytes_per_client` (512 MB in the paper)
//! through a pipeline of FCFS stations:
//!
//! ```text
//! client NIC ──(joint)── server NIC ──► server disk        (LWFS, fpp)
//! client NIC ──(joint)── server NIC ──► stripe-object lane (shared file)
//! ```
//!
//! The *joint* NIC reservation models the one-sided pull: moving a chunk
//! occupies the client's injection port and the server's network port for
//! the same interval at the slower of the two rates. The per-client
//! pipeline depth bounds in-flight chunks, standing in for the server's
//! pinned-buffer pool (Figure 6).
//!
//! Implementation differences, exactly as §4 describes them:
//!
//! * **LWFS object-per-process** — create at the rank's own storage
//!   server (distributed), chunks all routed to that server.
//! * **Lustre file-per-process** — create serialized through the MDS;
//!   data path otherwise identical (stripe count 1, round-robin file
//!   placement — the era's Lustre default).
//! * **Lustre shared-file** — one file striped across all servers; every
//!   chunk passes through its stripe object's *lane*, paying a lock
//!   hand-off and a disk-locality penalty whenever the writer changes —
//!   "the file system's consistency and synchronization semantics get in
//!   the way".

use lwfs_sim::{FcfsResource, Sim, SimDuration, SimRng, SimTime};

use crate::calib::Calibration;
use crate::machines::Machine;

/// Which checkpoint implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CkptImpl {
    LwfsObjPerProc,
    LustreFilePerProc,
    LustreShared,
}

impl CkptImpl {
    pub fn label(self) -> &'static str {
        match self {
            CkptImpl::LwfsObjPerProc => "lwfs-object-per-process",
            CkptImpl::LustreFilePerProc => "lustre-file-per-process",
            CkptImpl::LustreShared => "lustre-shared-file",
        }
    }

    pub fn all() -> [CkptImpl; 3] {
        [CkptImpl::LwfsObjPerProc, CkptImpl::LustreFilePerProc, CkptImpl::LustreShared]
    }
}

/// Model configuration for one run.
#[derive(Debug, Clone)]
pub struct DumpSim {
    pub machine: Machine,
    pub calib: Calibration,
    pub impl_kind: CkptImpl,
    pub clients: usize,
    pub servers: usize,
    pub bytes_per_client: u64,
}

/// Results of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpResult {
    /// Max over clients of the create/open phase, seconds.
    pub create_secs: f64,
    /// Max over clients of write+sync+close, seconds.
    pub dump_secs: f64,
    /// Max over clients of open..close, seconds (the paper's timed
    /// quantity).
    pub total_secs: f64,
    /// Aggregate dump throughput, MB/s (decimal): the Figure 9 y-axis.
    pub throughput_mbps: f64,
    /// Mean disk utilization across the servers over the run.
    pub mean_disk_util: f64,
}

/// One client's transfer stream toward one server.
///
/// A striped client writes all its stripe objects concurrently (a Lustre
/// client's per-OST RPC streams; an LWFS client's single server-directed
/// request). Chains are independent: a chunk is gated only by the client
/// NIC and by this chain's own pinned-buffer window at its server —
/// never by completions at a different server.
#[derive(Debug, Clone, Default)]
struct ChainState {
    issued: u64,
    total: u64,
    /// Disk-finish times of this chain's most recent chunks.
    window: std::collections::VecDeque<SimTime>,
}

#[derive(Debug, Clone, Default)]
struct ClientState {
    start: SimTime,
    create_done: SimTime,
    chains: Vec<ChainState>,
    chains_done: usize,
    last_disk_finish: SimTime,
    finish: SimTime,
    done: bool,
}

struct Lane {
    res: FcfsResource,
    last_writer: Option<usize>,
}

struct World {
    cfg: DumpSim,
    chunks_per_client: u64,
    node_nic: Vec<FcfsResource>,
    srv_nic: Vec<FcfsResource>,
    srv_disk: Vec<FcfsResource>,
    srv_ops: Vec<FcfsResource>,
    mds: FcfsResource,
    /// The authorization service — touched per chunk only in the
    /// cache-disabled ablation; the cached configuration authorizes
    /// locally at the storage server for free.
    authz: FcfsResource,
    lanes: Vec<Lane>,
    clients: Vec<ClientState>,
    shared_ready: Option<SimTime>,
    waiting_for_shared: Vec<usize>,
    finished: usize,
}

impl World {
    fn new(cfg: DumpSim) -> Self {
        let m = &cfg.machine;
        let chunks_per_client = cfg.bytes_per_client.div_ceil(cfg.calib.chunk_bytes);
        assert!(cfg.servers > 0 && cfg.servers <= m.io_nodes, "server count within machine");
        assert!(cfg.clients > 0);
        assert!(cfg.calib.pipeline_depth >= 1, "pipeline depth must be at least 1");
        World {
            chunks_per_client,
            node_nic: (0..m.compute_nodes)
                .map(|i| FcfsResource::with_bandwidth(format!("cn{i}"), m.client_nic_mbps))
                .collect(),
            srv_nic: (0..cfg.servers)
                .map(|i| FcfsResource::with_bandwidth(format!("snic{i}"), m.server_nic_mbps))
                .collect(),
            srv_disk: (0..cfg.servers)
                .map(|i| FcfsResource::with_bandwidth(format!("sdisk{i}"), m.server_disk_mbps))
                .collect(),
            srv_ops: (0..cfg.servers)
                .map(|i| FcfsResource::with_service_times(format!("sops{i}")))
                .collect(),
            mds: FcfsResource::with_service_times("mds"),
            authz: FcfsResource::with_service_times("authz"),
            lanes: (0..cfg.servers)
                .map(|i| Lane {
                    res: FcfsResource::with_bandwidth(format!("lane{i}"), m.server_disk_mbps),
                    last_writer: None,
                })
                .collect(),
            clients: vec![ClientState::default(); cfg.clients],
            shared_ready: None,
            waiting_for_shared: Vec::new(),
            finished: 0,
            cfg,
        }
    }

    fn node_of(&self, client: usize) -> usize {
        client % self.node_nic.len()
    }

    /// Number of concurrent transfer chains per client: one per stripe
    /// object for the shared file, one for the single-object layouts.
    fn chains_per_client(&self) -> usize {
        match self.cfg.impl_kind {
            CkptImpl::LwfsObjPerProc | CkptImpl::LustreFilePerProc => 1,
            CkptImpl::LustreShared => self.cfg.servers,
        }
    }

    /// The server a chain targets.
    fn server_of_chain(&self, client: usize, chain: usize) -> usize {
        match self.cfg.impl_kind {
            CkptImpl::LwfsObjPerProc | CkptImpl::LustreFilePerProc => client % self.cfg.servers,
            CkptImpl::LustreShared => chain,
        }
    }

    /// Chunks carried by one chain (stripe columns share the file evenly,
    /// with the remainder spread over the first columns).
    fn chain_len(&self, chain: usize) -> u64 {
        let k = self.chains_per_client() as u64;
        let base = self.chunks_per_client / k;
        let extra = u64::from((chain as u64) < self.chunks_per_client % k);
        base + extra
    }

    /// Joint client-NIC/server-NIC reservation for one chunk arriving at
    /// `now`; returns the network finish time.
    fn reserve_network(&mut self, now: SimTime, client: usize, server: usize) -> SimTime {
        let m = &self.cfg.machine;
        let rate = m.client_nic_mbps.min(m.server_nic_mbps);
        let dur = SimDuration::for_transfer(self.cfg.calib.chunk_bytes, rate);
        let node = self.node_of(client);
        let start = now.max(self.node_nic[node].free_at()).max(self.srv_nic[server].free_at());
        let (_, f1) = self.node_nic[node].reserve_time(start, dur);
        let (_, f2) = self.srv_nic[server].reserve_time(start, dur);
        debug_assert_eq!(f1, f2);
        f1 + SimDuration::from_nanos(m.latency_ns)
    }

    /// Storage-side reservation for one chunk landing at `at`.
    fn reserve_storage(&mut self, at: SimTime, client: usize, server: usize) -> SimTime {
        let chunk = self.cfg.calib.chunk_bytes;
        match self.cfg.impl_kind {
            CkptImpl::LwfsObjPerProc | CkptImpl::LustreFilePerProc => {
                let (_, f) = self.srv_disk[server].reserve(at, chunk);
                f
            }
            CkptImpl::LustreShared => {
                let lane = &mut self.lanes[server];
                let disk = SimDuration::for_transfer(chunk, self.cfg.machine.server_disk_mbps);
                let mut service = disk;
                if lane.last_writer != Some(client) {
                    // Lock hand-off + locality penalty on writer switch.
                    service = service
                        + SimDuration::from_nanos(self.cfg.calib.lock_handoff_ns)
                        + SimDuration::from_nanos(self.cfg.calib.writer_switch_ns);
                }
                lane.last_writer = Some(client);
                let (_, f) = lane.res.reserve_time(at, service);
                f
            }
        }
    }
}

fn issue_chunk(sim: &mut Sim<World>, w: &mut World, client: usize, chain: usize) {
    let mut now = sim.now();
    let server = w.server_of_chain(client, chain);
    if !w.cfg.calib.cap_cache {
        // Ablation: no capability cache — the storage server must verify
        // through the authorization service before moving this chunk.
        let lat = SimDuration::from_nanos(w.cfg.machine.latency_ns);
        let svc = SimDuration::from_nanos(w.cfg.calib.authz_verify_ns);
        let (_, f) = w.authz.reserve_time(now + lat, svc);
        now = f + lat;
    }
    let net_done = w.reserve_network(now, client, server);
    let disk_done = w.reserve_storage(net_done, client, server);

    let depth = w.cfg.calib.pipeline_depth as usize;
    let st = &mut w.clients[client];
    st.last_disk_finish = st.last_disk_finish.max(disk_done);
    let ch = &mut st.chains[chain];
    ch.window.push_back(disk_done);
    if ch.window.len() > depth {
        ch.window.pop_front();
    }
    ch.issued += 1;

    if ch.issued == ch.total {
        st.chains_done += 1;
        if st.chains_done == st.chains.len() {
            complete_client(sim, w, client);
        }
    } else {
        // Pipelined issue: the next chunk goes once the NIC transfer
        // completes and this chain's pinned-buffer window has room (the
        // chunk `depth` back reached the disk — the Figure 6 bound).
        let window_gate = if ch.window.len() >= depth {
            ch.window[ch.window.len() - depth]
        } else {
            SimTime::ZERO
        };
        let next_at = net_done.max(window_gate).max(now);
        sim.schedule_at(next_at, move |sim, w| issue_chunk(sim, w, client, chain));
    }
}

fn complete_client(sim: &mut Sim<World>, w: &mut World, client: usize) {
    // Sync = drain to disk (already reflected in last_disk_finish) plus the
    // completion notification; close = one MDS setattr for the Lustre
    // variants.
    let m_latency = SimDuration::from_nanos(w.cfg.machine.latency_ns);
    let mut finish = w.clients[client].last_disk_finish + m_latency;
    if matches!(w.cfg.impl_kind, CkptImpl::LustreFilePerProc | CkptImpl::LustreShared) {
        let (_, f) = w.mds.reserve_time(finish, SimDuration::from_nanos(w.cfg.calib.mds_open_ns));
        finish = f + m_latency;
    }
    let st = &mut w.clients[client];
    st.finish = finish;
    st.done = true;
    w.finished += 1;
    let _ = sim;
}

fn begin_write_phase(sim: &mut Sim<World>, w: &mut World, client: usize, at: SimTime) {
    let chains = w.chains_per_client();
    let chain_states: Vec<ChainState> = (0..chains)
        .map(|c| ChainState { issued: 0, total: w.chain_len(c), window: Default::default() })
        .collect();
    let st = &mut w.clients[client];
    st.create_done = at;
    st.chains = chain_states;
    // Empty chains (more stripe columns than chunks) complete immediately.
    let mut live = 0;
    for c in 0..chains {
        if w.clients[client].chains[c].total > 0 {
            live += 1;
            sim.schedule_at(at, move |sim, w| issue_chunk(sim, w, client, c));
        } else {
            w.clients[client].chains_done += 1;
        }
    }
    if live == 0 {
        complete_client(sim, w, client);
    }
}

fn do_create(sim: &mut Sim<World>, w: &mut World, client: usize) {
    let now = sim.now();
    let lat = SimDuration::from_nanos(w.cfg.machine.latency_ns);
    let client_sw = SimDuration::from_nanos(w.cfg.calib.client_op_ns);
    match w.cfg.impl_kind {
        CkptImpl::LwfsObjPerProc => {
            // Distributed create at the rank's own server.
            let server = client % w.cfg.servers;
            let svc = SimDuration::from_nanos(w.cfg.calib.ost_create_ns);
            let (_, f) = w.srv_ops[server].reserve_time(now + lat, svc);
            begin_write_phase(sim, w, client, f + lat + client_sw);
        }
        CkptImpl::LustreFilePerProc => {
            // Centralized create: MDS transaction + 1 stripe allocation.
            let svc =
                SimDuration::from_nanos(w.cfg.calib.mds_create_ns + w.cfg.calib.mds_per_stripe_ns);
            let (_, f) = w.mds.reserve_time(now + lat, svc);
            begin_write_phase(sim, w, client, f + lat + client_sw);
        }
        CkptImpl::LustreShared => {
            if client == 0 {
                // Rank 0 creates the shared file, striped over all servers.
                let svc = SimDuration::from_nanos(
                    w.cfg.calib.mds_create_ns
                        + w.cfg.servers as u64 * w.cfg.calib.mds_per_stripe_ns,
                );
                let (_, f) = w.mds.reserve_time(now + lat, svc);
                let ready = f + lat;
                w.shared_ready = Some(ready);
                // Release the ranks that reached their open first.
                let waiting = std::mem::take(&mut w.waiting_for_shared);
                for other in waiting {
                    sim.schedule_at(ready, move |sim, w| do_shared_open(sim, w, other));
                }
                do_shared_open_at(sim, w, 0, ready);
            } else {
                match w.shared_ready {
                    Some(ready) if ready <= now => do_shared_open(sim, w, client),
                    Some(ready) => {
                        sim.schedule_at(ready, move |sim, w| do_shared_open(sim, w, client))
                    }
                    None => w.waiting_for_shared.push(client),
                }
            }
        }
    }
}

fn do_shared_open(sim: &mut Sim<World>, w: &mut World, client: usize) {
    let now = sim.now();
    do_shared_open_at(sim, w, client, now);
}

fn do_shared_open_at(sim: &mut Sim<World>, w: &mut World, client: usize, at: SimTime) {
    let lat = SimDuration::from_nanos(w.cfg.machine.latency_ns);
    let client_sw = SimDuration::from_nanos(w.cfg.calib.client_op_ns);
    let svc = SimDuration::from_nanos(w.cfg.calib.mds_open_ns);
    let (_, f) = w.mds.reserve_time(at + lat, svc);
    begin_write_phase(sim, w, client, f + lat + client_sw);
}

impl DumpSim {
    /// Run one trial, deterministically from `seed`.
    pub fn run(&self, seed: u64) -> DumpResult {
        let mut sim: Sim<World> = Sim::new();
        let mut world = World::new(self.clone());
        let mut rng = SimRng::new(seed);

        for client in 0..self.clients {
            let jitter = rng.jitter(
                SimDuration::ZERO,
                SimDuration::from_nanos(self.calib.start_jitter_ns.max(1)),
            );
            world.clients[client].start = SimTime::ZERO + jitter;
            sim.schedule_at(SimTime::ZERO + jitter, move |sim, w| do_create(sim, w, client));
        }
        sim.run(&mut world);
        assert_eq!(world.finished, self.clients, "every client must finish");

        let mut create_secs: f64 = 0.0;
        let mut dump_secs: f64 = 0.0;
        let mut total_secs: f64 = 0.0;
        let mut last_finish = SimTime::ZERO;
        for st in &world.clients {
            create_secs = create_secs.max((st.create_done - st.start).as_secs_f64());
            dump_secs = dump_secs.max((st.finish - st.create_done).as_secs_f64());
            total_secs = total_secs.max((st.finish - st.start).as_secs_f64());
            last_finish = last_finish.max(st.finish);
        }
        let total_bytes = self.clients as u64 * self.bytes_per_client;
        let throughput_mbps = (total_bytes as f64 / 1e6) / total_secs;

        let disk_util: f64 = match self.impl_kind {
            CkptImpl::LustreShared => {
                world.lanes.iter().map(|l| l.res.utilization(last_finish)).sum::<f64>()
                    / self.servers as f64
            }
            _ => {
                world.srv_disk.iter().map(|d| d.utilization(last_finish)).sum::<f64>()
                    / self.servers as f64
            }
        };

        DumpResult {
            create_secs,
            dump_secs,
            total_secs,
            throughput_mbps,
            mean_disk_util: disk_util,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(kind: CkptImpl, clients: usize, servers: usize) -> DumpSim {
        DumpSim {
            machine: Machine::dev_cluster(),
            calib: Calibration::default(),
            impl_kind: kind,
            clients,
            servers,
            bytes_per_client: 512 * 1_000_000,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sim(CkptImpl::LwfsObjPerProc, 8, 4);
        assert_eq!(s.run(1), s.run(1));
        // Different seeds differ only by jitter — close but not identical.
        assert_ne!(s.run(1), s.run(2));
    }

    #[test]
    fn lwfs_plateaus_at_aggregate_disk_bandwidth() {
        // Figure 9-c: with enough clients the curve saturates near
        // servers × per-server disk rate.
        for servers in [2usize, 4, 8, 16] {
            let r = sim(CkptImpl::LwfsObjPerProc, 64, servers).run(1);
            let plateau = servers as f64 * 95.0;
            assert!(
                r.throughput_mbps > 0.85 * plateau && r.throughput_mbps <= 1.02 * plateau,
                "{servers} servers: {:.0} vs plateau {plateau:.0}",
                r.throughput_mbps
            );
        }
    }

    #[test]
    fn lwfs_single_client_is_client_limited() {
        // One client cannot exceed its own NIC or one server's disk.
        let r = sim(CkptImpl::LwfsObjPerProc, 1, 16).run(1);
        assert!(r.throughput_mbps <= 95.0 * 1.02, "{}", r.throughput_mbps);
    }

    #[test]
    fn fpp_dump_matches_lwfs_but_creates_are_serialized() {
        let lwfs = sim(CkptImpl::LwfsObjPerProc, 64, 8).run(1);
        let fpp = sim(CkptImpl::LustreFilePerProc, 64, 8).run(1);
        // Dump-phase bandwidth is the same mechanism.
        let ratio = fpp.dump_secs / lwfs.dump_secs;
        assert!((0.9..=1.1).contains(&ratio), "dump ratio {ratio}");
        // Create phase: 64 serialized MDS transactions vs distributed
        // object creates.
        assert!(
            fpp.create_secs > 10.0 * lwfs.create_secs,
            "fpp {:.4}s vs lwfs {:.4}s",
            fpp.create_secs,
            lwfs.create_secs
        );
    }

    #[test]
    fn shared_file_is_roughly_half_of_fpp() {
        // The headline of Figure 9: "the throughput of the shared-file
        // case is roughly half that of the file-per-process and the
        // lightweight checkpoint implementations".
        for servers in [4usize, 8, 16] {
            let fpp = sim(CkptImpl::LustreFilePerProc, 64, servers).run(1);
            let shared = sim(CkptImpl::LustreShared, 64, servers).run(1);
            let ratio = shared.throughput_mbps / fpp.throughput_mbps;
            assert!((0.35..=0.65).contains(&ratio), "{servers} servers: shared/fpp = {ratio:.2}");
        }
    }

    #[test]
    fn throughput_increases_with_servers() {
        for kind in CkptImpl::all() {
            let t2 = sim(kind, 64, 2).run(1).throughput_mbps;
            let t16 = sim(kind, 64, 16).run(1).throughput_mbps;
            assert!(t16 > 3.0 * t2, "{}: 16 servers {t16:.0} vs 2 servers {t2:.0}", kind.label());
        }
    }

    #[test]
    fn throughput_rises_with_clients_until_plateau() {
        let kind = CkptImpl::LwfsObjPerProc;
        let t4 = sim(kind, 4, 16).run(1).throughput_mbps;
        let t16 = sim(kind, 16, 16).run(1).throughput_mbps;
        let t64 = sim(kind, 64, 16).run(1).throughput_mbps;
        assert!(t16 > t4, "{t16} > {t4}");
        assert!(t64 >= t16 * 0.95, "{t64} vs {t16}");
    }

    #[test]
    fn disk_utilization_reflects_the_mechanism() {
        let fpp = sim(CkptImpl::LustreFilePerProc, 64, 8).run(1);
        let shared = sim(CkptImpl::LustreShared, 64, 8).run(1);
        assert!(fpp.mean_disk_util > 0.9, "fpp util {}", fpp.mean_disk_util);
        // The shared lane is *busy* (lock hand-offs + seeks count as lane
        // occupancy) yet delivers half the useful bytes — that is the
        // point: the device is occupied by overhead.
        assert!(shared.mean_disk_util > 0.8);
    }

    #[test]
    fn shared_chains_cover_every_chunk() {
        // chain_len must partition chunks_per_client across stripe columns
        // even when the counts do not divide evenly.
        for (bytes, servers) in [(512_000_000u64, 16usize), (13_000_000, 4), (1_000_000, 8)] {
            let cfg = DumpSim {
                machine: Machine::dev_cluster(),
                calib: Calibration::default(),
                impl_kind: CkptImpl::LustreShared,
                clients: 1,
                servers,
                bytes_per_client: bytes,
            };
            let w = World::new(cfg);
            let total: u64 = (0..w.chains_per_client()).map(|c| w.chain_len(c)).sum();
            assert_eq!(total, w.chunks_per_client, "bytes={bytes} servers={servers}");
        }
    }

    #[test]
    fn single_object_layouts_have_one_chain() {
        let cfg = DumpSim {
            machine: Machine::dev_cluster(),
            calib: Calibration::default(),
            impl_kind: CkptImpl::LwfsObjPerProc,
            clients: 3,
            servers: 4,
            bytes_per_client: 8_000_000,
        };
        let w = World::new(cfg);
        assert_eq!(w.chains_per_client(), 1);
        assert_eq!(w.chain_len(0), w.chunks_per_client);
        // Rank → server placement is round-robin.
        assert_eq!(w.server_of_chain(0, 0), 0);
        assert_eq!(w.server_of_chain(5, 0), 1);
    }

    #[test]
    fn tiny_transfer_smaller_than_stripe_width_still_completes() {
        // 1 chunk spread over 16 chains: 15 chains are empty and must not
        // deadlock the completion accounting.
        let r = DumpSim {
            machine: Machine::dev_cluster(),
            calib: Calibration::default(),
            impl_kind: CkptImpl::LustreShared,
            clients: 2,
            servers: 16,
            bytes_per_client: 1_000_000, // exactly one chunk
        }
        .run(1);
        assert!(r.total_secs > 0.0);
        assert!(r.throughput_mbps > 0.0);
    }

    #[test]
    fn cache_ablation_only_slows_things_down() {
        let on = sim(CkptImpl::LwfsObjPerProc, 32, 8).run(1);
        let mut s = sim(CkptImpl::LwfsObjPerProc, 32, 8);
        s.calib.cap_cache = false;
        let off = s.run(1);
        assert!(off.throughput_mbps <= on.throughput_mbps * 1.001);
    }

    #[test]
    fn phases_sum_to_total() {
        let r = sim(CkptImpl::LustreFilePerProc, 16, 4).run(3);
        assert!(r.total_secs <= r.create_secs + r.dump_secs + 1e-6);
        assert!(r.total_secs >= r.dump_secs);
    }
}
