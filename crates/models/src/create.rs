//! The create-phase model behind **Figure 10**.
//!
//! Each of `clients` processes performs `creates_per_client` create
//! operations in a closed loop (issue, wait for reply, issue the next).
//! The figure's y-axis is aggregate creates per second.
//!
//! * **Lustre**: every create is one FCFS reservation at the *single* MDS
//!   (metadata transaction + stripe allocation). Aggregate throughput
//!   saturates at the MDS service rate — a few hundred ops/s — no matter
//!   how many servers exist (Figure 10-b's flat family of curves).
//! * **LWFS**: each create is an FCFS reservation at the *client's own*
//!   storage server. Aggregate capacity is `servers / service_time` and
//!   the curves fan out by server count (Figure 10-c).

use lwfs_sim::{FcfsResource, Sim, SimDuration, SimRng, SimTime};

use crate::calib::Calibration;
use crate::dump::CkptImpl;
use crate::machines::Machine;

/// Model configuration for one create-throughput run.
#[derive(Debug, Clone)]
pub struct CreateSim {
    pub machine: Machine,
    pub calib: Calibration,
    pub impl_kind: CkptImpl,
    pub clients: usize,
    pub servers: usize,
    pub creates_per_client: u64,
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateResult {
    /// Aggregate creates per second — the Figure 10 y-axis.
    pub ops_per_sec: f64,
    /// Makespan of the whole storm, seconds.
    pub makespan_secs: f64,
}

struct World {
    cfg: CreateSim,
    mds: FcfsResource,
    srv_ops: Vec<FcfsResource>,
    remaining: Vec<u64>,
    finish: Vec<SimTime>,
    done: usize,
}

fn issue_create(sim: &mut Sim<World>, w: &mut World, client: usize) {
    let now = sim.now();
    let lat = SimDuration::from_nanos(w.cfg.machine.latency_ns);
    let sw = SimDuration::from_nanos(w.cfg.calib.client_op_ns);
    let reply_at = match w.cfg.impl_kind {
        CkptImpl::LwfsObjPerProc => {
            let server = client % w.cfg.servers;
            let svc = SimDuration::from_nanos(w.cfg.calib.ost_create_ns);
            let (_, f) = w.srv_ops[server].reserve_time(now + lat, svc);
            f + lat
        }
        CkptImpl::LustreFilePerProc | CkptImpl::LustreShared => {
            // Shared-file checkpointing only creates once, so the create
            // *storm* the figure measures is the file-per-process pattern;
            // we accept both kinds and model the same MDS path.
            let svc =
                SimDuration::from_nanos(w.cfg.calib.mds_create_ns + w.cfg.calib.mds_per_stripe_ns);
            let (_, f) = w.mds.reserve_time(now + lat, svc);
            f + lat
        }
    };
    w.remaining[client] -= 1;
    if w.remaining[client] == 0 {
        w.finish[client] = reply_at;
        w.done += 1;
    } else {
        // Closed loop: next create after the reply plus client software.
        sim.schedule_at(reply_at + sw, move |sim, w| issue_create(sim, w, client));
    }
}

impl CreateSim {
    pub fn run(&self, seed: u64) -> CreateResult {
        assert!(self.clients > 0 && self.servers > 0 && self.creates_per_client > 0);
        let mut sim: Sim<World> = Sim::new();
        let mut world = World {
            mds: FcfsResource::with_service_times("mds"),
            srv_ops: (0..self.servers)
                .map(|i| FcfsResource::with_service_times(format!("sops{i}")))
                .collect(),
            remaining: vec![self.creates_per_client; self.clients],
            finish: vec![SimTime::ZERO; self.clients],
            done: 0,
            cfg: self.clone(),
        };
        let mut rng = SimRng::new(seed);
        for client in 0..self.clients {
            let jitter = rng.jitter(
                SimDuration::ZERO,
                SimDuration::from_nanos(self.calib.start_jitter_ns.max(1)),
            );
            sim.schedule_at(SimTime::ZERO + jitter, move |sim, w| issue_create(sim, w, client));
        }
        sim.run(&mut world);
        assert_eq!(world.done, self.clients);
        let makespan = world.finish.iter().copied().max().unwrap_or(SimTime::ZERO).as_secs_f64();
        let total_ops = self.clients as u64 * self.creates_per_client;
        CreateResult { ops_per_sec: total_ops as f64 / makespan, makespan_secs: makespan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(kind: CkptImpl, clients: usize, servers: usize) -> CreateSim {
        CreateSim {
            machine: Machine::dev_cluster(),
            calib: Calibration::default(),
            impl_kind: kind,
            clients,
            servers,
            creates_per_client: 32,
        }
    }

    #[test]
    fn lustre_saturates_at_mds_rate_regardless_of_servers() {
        // Figure 10-b: the four server-count curves collapse onto the MDS
        // ceiling (several hundred ops/s).
        let ceiling = Calibration::default().mds_create_ceiling(1);
        for servers in [2usize, 4, 8, 16] {
            let r = sim(CkptImpl::LustreFilePerProc, 64, servers).run(1);
            assert!(
                (0.85 * ceiling..=1.02 * ceiling).contains(&r.ops_per_sec),
                "{servers} servers: {:.0} ops/s vs ceiling {ceiling:.0}",
                r.ops_per_sec
            );
        }
    }

    #[test]
    fn lwfs_scales_with_server_count() {
        // Figure 10-c: curves fan out by server count.
        let mut prev = 0.0;
        for servers in [2usize, 4, 8, 16] {
            let r = sim(CkptImpl::LwfsObjPerProc, 64, servers).run(1);
            assert!(r.ops_per_sec > prev * 1.5, "{servers} servers: {:.0}", r.ops_per_sec);
            prev = r.ops_per_sec;
        }
    }

    #[test]
    fn lwfs_beats_lustre_by_orders_of_magnitude_at_16_servers() {
        // Figure 10-a (the log plot): roughly two orders of magnitude.
        let lwfs = sim(CkptImpl::LwfsObjPerProc, 64, 16).run(1);
        let lustre = sim(CkptImpl::LustreFilePerProc, 64, 16).run(1);
        let factor = lwfs.ops_per_sec / lustre.ops_per_sec;
        assert!(factor > 30.0, "factor {factor:.0}");
    }

    #[test]
    fn lwfs_low_client_counts_are_client_limited() {
        // With 1 client the rate is one over the per-op round trip, far
        // below the server ceiling.
        let r = sim(CkptImpl::LwfsObjPerProc, 1, 16).run(1);
        let per_op = (Calibration::default().ost_create_ns
            + Calibration::default().client_op_ns
            + 2 * Machine::dev_cluster().latency_ns) as f64
            / 1e9;
        let expected = 1.0 / per_op;
        assert!(
            (0.8 * expected..=1.1 * expected).contains(&r.ops_per_sec),
            "{:.0} vs {expected:.0}",
            r.ops_per_sec
        );
    }

    #[test]
    fn throughput_monotone_in_clients_until_ceiling() {
        let r1 = sim(CkptImpl::LustreFilePerProc, 1, 8).run(1);
        let r8 = sim(CkptImpl::LustreFilePerProc, 8, 8).run(1);
        let r64 = sim(CkptImpl::LustreFilePerProc, 64, 8).run(1);
        assert!(r8.ops_per_sec > r1.ops_per_sec);
        // Already saturated by 8 clients; 64 must not exceed the ceiling.
        assert!(r64.ops_per_sec <= r8.ops_per_sec * 1.1);
    }

    #[test]
    fn deterministic() {
        let s = sim(CkptImpl::LwfsObjPerProc, 16, 4);
        assert_eq!(s.run(7), s.run(7));
    }
}
