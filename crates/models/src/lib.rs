//! Discrete-event queueing models of the paper's evaluation (§4).
//!
//! The original experiments ran on a 40-node Opteron/Myrinet cluster with
//! fibre-channel RAIDs. This crate expresses the three checkpoint
//! implementations as queueing systems over that hardware, so that the
//! figures can be regenerated at any scale:
//!
//! * [`machines`] — calibrated hardware descriptions: the Sandia I/O
//!   development cluster, plus Red Storm (Table 2), the Table 1 MPPs, and
//!   the §4 petaflop extrapolation target.
//! * [`dump`] — the I/O-dump phase model behind **Figure 9**: per-node NIC
//!   stations, per-server network/disk stations, stripe routing, and the
//!   shared-file lock/interleave penalty.
//! * [`create`] — the create-phase model behind **Figure 10**: a
//!   centralized MDS station for the traditional PFS versus distributed
//!   per-server creates for LWFS.
//! * [`petaflop`] — the extrapolation of §4's closing paragraph.
//!
//! ## Why the shapes are mechanism, not curve-fitting
//!
//! Every effect the paper reports emerges from a queueing mechanism that
//! is also implemented for real in the functional plane:
//!
//! * **file-per-process creates flatten** because one FCFS station (the
//!   MDS) serves every create — more clients only deepen its queue;
//! * **LWFS creates scale** because each storage server is its own FCFS
//!   station — capacity grows with the server count;
//! * **shared-file dumps halve** because interleaved writers on one
//!   stripe object pay a lock hand-off and a disk locality penalty per
//!   chunk switch, cutting effective disk bandwidth roughly in half;
//! * **dump bandwidth plateaus** at `min(Σ client NIC, Σ server disk)`.

pub mod calib;
pub mod create;
pub mod dump;
pub mod machines;
pub mod petaflop;

pub use calib::Calibration;
pub use create::{CreateResult, CreateSim};
pub use dump::{CkptImpl, DumpResult, DumpSim};
pub use machines::Machine;
pub use petaflop::{petaflop_report, PetaflopReport};
