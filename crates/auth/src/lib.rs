//! The LWFS **authentication service** (paper §3.1.2, Figure 3).
//!
//! The authentication service "interfaces with an external authentication
//! mechanism (e.g., Kerberos) to manage and verify identities of users". It
//! exchanges an external-mechanism token for an LWFS [`Credential`] — an
//! opaque, fully-transferable proof of authentication bounded by a
//! lifetime — and later verifies credentials presented by the authorization
//! service (Figure 4-a, step 2).
//!
//! Key properties reproduced from the paper:
//!
//! * **Opaque, hard to forge.** A credential carries a MAC minted with a
//!   key known only to this service instance; contents are meaningless to
//!   every other component.
//! * **Transient.** Credentials die with the issuing service instance
//!   (epoch check) and with their lifetime window.
//! * **Transferable.** Nothing binds a credential to a transport address;
//!   an application may hand it to every process acting for the principal.
//! * **Revocable.** "Immediate" revocation on application exit or a
//!   security event (§3.1.4) — implemented as a serial-number tombstone
//!   set consulted on every verify.
//!
//! [`Credential`]: lwfs_proto::Credential

pub mod clock;
pub mod mechanism;
pub mod server;
pub mod service;

pub use clock::{Clock, ManualClock, SystemClock, WallClock};
pub use mechanism::{AuthMechanism, MechError, MockKerberos};
pub use server::AuthServer;
pub use service::{AuthConfig, AuthService};
