//! External authentication mechanisms.
//!
//! The paper treats the mechanism (Kerberos, GSS-API, SASL) as an opaque
//! component *outside* the LWFS-core trust boundary (Figure 5): the
//! authentication service trusts it to map tokens to identities, and
//! nothing else in the system talks to it. [`MockKerberos`] is the
//! deterministic stand-in used in this reproduction: it registers users,
//! issues "tickets", and verifies them — the same grant/verify/revoke
//! surface a Kerberos KDC provides to a consuming service.

use std::collections::HashMap;

use lwfs_proto::security::siphash::MacKey;
use lwfs_proto::PrincipalId;
use parking_lot::RwLock;

/// Errors an external mechanism can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MechError {
    /// The token is not a ticket this mechanism issued (or was tampered
    /// with).
    InvalidToken,
    /// The named user does not exist.
    UnknownUser,
    /// The user exists but the proof (password) was wrong.
    BadProof,
}

impl std::fmt::Display for MechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechError::InvalidToken => write!(f, "invalid mechanism token"),
            MechError::UnknownUser => write!(f, "unknown user"),
            MechError::BadProof => write!(f, "bad proof of identity"),
        }
    }
}

impl std::error::Error for MechError {}

/// The interface the authentication service consumes.
pub trait AuthMechanism: Send + Sync + 'static {
    /// Verify a mechanism token; return the authenticated principal.
    fn verify_token(&self, token: &[u8]) -> Result<PrincipalId, MechError>;

    /// Human-readable mechanism name (for logs and reports).
    fn name(&self) -> &str;
}

/// A deterministic mock of a Kerberos-style KDC.
///
/// Users are registered with a password; `kinit` exchanges user+password
/// for a ticket (user name + MAC under the KDC key); `verify_token` checks
/// the MAC. The LWFS side never sees passwords — only tickets.
pub struct MockKerberos {
    key: MacKey,
    realm: String,
    users: RwLock<HashMap<String, (PrincipalId, String)>>,
}

impl MockKerberos {
    pub fn new(realm: impl Into<String>, key_seed: u64) -> Self {
        Self {
            key: MacKey::new(key_seed, key_seed.rotate_left(17) ^ 0x006B_6463_5F6B_6579),
            realm: realm.into(),
            users: RwLock::new(HashMap::new()),
        }
    }

    /// Register a user; returns their principal id.
    pub fn add_user(&self, name: &str, password: &str, principal: PrincipalId) {
        self.users.write().insert(name.to_string(), (principal, password.to_string()));
    }

    /// Remove a user (subsequent tickets fail verification).
    pub fn remove_user(&self, name: &str) {
        self.users.write().remove(name);
    }

    /// Exchange user+password for a ticket (the `kinit` analogue).
    pub fn kinit(&self, name: &str, password: &str) -> Result<Vec<u8>, MechError> {
        let users = self.users.read();
        let (_, stored) = users.get(name).ok_or(MechError::UnknownUser)?;
        if stored != password {
            return Err(MechError::BadProof);
        }
        let mut ticket = Vec::with_capacity(name.len() + 17);
        ticket.push(name.len() as u8);
        ticket.extend_from_slice(name.as_bytes());
        let mac = self.key.mac(name.as_bytes());
        ticket.extend_from_slice(&mac);
        Ok(ticket)
    }
}

impl AuthMechanism for MockKerberos {
    fn verify_token(&self, token: &[u8]) -> Result<PrincipalId, MechError> {
        if token.is_empty() {
            return Err(MechError::InvalidToken);
        }
        let name_len = token[0] as usize;
        if token.len() != 1 + name_len + 16 {
            return Err(MechError::InvalidToken);
        }
        let name_bytes = &token[1..1 + name_len];
        let mac: [u8; 16] = token[1 + name_len..].try_into().expect("length checked");
        if !self.key.verify(name_bytes, &mac) {
            return Err(MechError::InvalidToken);
        }
        let name = std::str::from_utf8(name_bytes).map_err(|_| MechError::InvalidToken)?;
        // A ticket for a since-deleted user no longer authenticates.
        self.users.read().get(name).map(|(p, _)| *p).ok_or(MechError::UnknownUser)
    }

    fn name(&self) -> &str {
        &self.realm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kdc() -> MockKerberos {
        let k = MockKerberos::new("SANDIA.GOV", 0x5EC2E7);
        k.add_user("roldfield", "hunter2", PrincipalId(1001));
        k.add_user("maccabe", "lobo", PrincipalId(1002));
        k
    }

    #[test]
    fn kinit_and_verify() {
        let k = kdc();
        let ticket = k.kinit("roldfield", "hunter2").unwrap();
        assert_eq!(k.verify_token(&ticket).unwrap(), PrincipalId(1001));
    }

    #[test]
    fn wrong_password_rejected() {
        let k = kdc();
        assert_eq!(k.kinit("roldfield", "wrong").unwrap_err(), MechError::BadProof);
    }

    #[test]
    fn unknown_user_rejected() {
        let k = kdc();
        assert_eq!(k.kinit("nobody", "x").unwrap_err(), MechError::UnknownUser);
    }

    #[test]
    fn tampered_ticket_rejected() {
        let k = kdc();
        let mut ticket = k.kinit("roldfield", "hunter2").unwrap();
        // Flip a byte of the embedded name: MAC must fail.
        ticket[1] ^= 0xFF;
        assert_eq!(k.verify_token(&ticket).unwrap_err(), MechError::InvalidToken);
    }

    #[test]
    fn truncated_ticket_rejected() {
        let k = kdc();
        let ticket = k.kinit("roldfield", "hunter2").unwrap();
        assert_eq!(k.verify_token(&ticket[..5]).unwrap_err(), MechError::InvalidToken);
        assert_eq!(k.verify_token(&[]).unwrap_err(), MechError::InvalidToken);
    }

    #[test]
    fn ticket_from_other_kdc_rejected() {
        let k1 = kdc();
        let k2 = MockKerberos::new("SANDIA.GOV", 0xD1FF_E4E7);
        k2.add_user("roldfield", "hunter2", PrincipalId(1001));
        let foreign = k2.kinit("roldfield", "hunter2").unwrap();
        assert_eq!(k1.verify_token(&foreign).unwrap_err(), MechError::InvalidToken);
    }

    #[test]
    fn deleted_user_ticket_stops_working() {
        let k = kdc();
        let ticket = k.kinit("maccabe", "lobo").unwrap();
        k.remove_user("maccabe");
        assert_eq!(k.verify_token(&ticket).unwrap_err(), MechError::UnknownUser);
    }

    #[test]
    fn distinct_users_distinct_principals() {
        let k = kdc();
        let t1 = k.kinit("roldfield", "hunter2").unwrap();
        let t2 = k.kinit("maccabe", "lobo").unwrap();
        assert_ne!(k.verify_token(&t1).unwrap(), k.verify_token(&t2).unwrap());
    }
}
