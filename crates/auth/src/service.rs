//! The authentication service logic (transport-independent).
//!
//! [`AuthService`] is pure state + operations; [`crate::server::AuthServer`]
//! wires it to the Portals substrate. Splitting the two keeps every
//! security decision unit-testable without threads.

use std::collections::HashSet;
use std::sync::Arc;

use lwfs_proto::security::siphash::MacKey;
use lwfs_proto::{Credential, CredentialBody, Error, Lifetime, PrincipalId, Result, Signature};
use parking_lot::Mutex;

use crate::clock::Clock;
use crate::mechanism::AuthMechanism;

/// Configuration for an authentication service instance.
pub struct AuthConfig {
    /// MAC key seed; a fresh instance should use a fresh seed.
    pub key_seed: u64,
    /// This instance's epoch. Restarting with a new epoch invalidates all
    /// outstanding credentials ("transient" property, §3.1.2).
    pub epoch: u64,
    /// Default credential lifetime in protocol nanoseconds.
    pub credential_ttl: u64,
}

impl Default for AuthConfig {
    fn default() -> Self {
        Self {
            key_seed: 0xA117_53ED,
            epoch: 1,
            // 8 hours: a long application run re-authenticates rarely.
            credential_ttl: 8 * 3600 * 1_000_000_000,
        }
    }
}

/// Counters for the verification paths (reported by experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AuthStats {
    pub issued: u64,
    pub verified_ok: u64,
    pub verified_fail: u64,
    pub revoked: u64,
}

/// The authentication service.
pub struct AuthService {
    key: MacKey,
    epoch: u64,
    ttl: u64,
    mechanism: Arc<dyn AuthMechanism>,
    clock: Arc<dyn Clock>,
    state: Mutex<AuthState>,
}

#[derive(Default)]
struct AuthState {
    next_serial: u64,
    /// Tombstones for revoked credentials, by serial.
    revoked: HashSet<u64>,
    stats: AuthStats,
}

impl AuthService {
    pub fn new(
        config: AuthConfig,
        mechanism: Arc<dyn AuthMechanism>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self {
            key: MacKey::new(config.key_seed, config.key_seed.rotate_right(23) ^ 0xA0_7A11),
            epoch: config.epoch,
            ttl: config.credential_ttl,
            mechanism,
            clock,
            state: Mutex::new(AuthState::default()),
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn stats(&self) -> AuthStats {
        self.state.lock().stats
    }

    fn sign(&self, body: &CredentialBody) -> Signature {
        use lwfs_proto::Encode as _;
        Signature(self.key.mac(&body.to_bytes()))
    }

    /// Exchange a mechanism token for a credential (the `GetCred` RPC).
    pub fn get_cred(&self, mechanism_token: &[u8]) -> Result<Credential> {
        let principal =
            self.mechanism.verify_token(mechanism_token).map_err(|_| Error::BadCredential)?;
        let now = self.clock.now();
        let mut st = self.state.lock();
        let serial = st.next_serial;
        st.next_serial += 1;
        st.stats.issued += 1;
        let body = CredentialBody {
            principal,
            issuer_epoch: self.epoch,
            lifetime: Lifetime::starting_at(now, self.ttl),
            serial,
        };
        Ok(Credential { body, sig: self.sign(&body) })
    }

    /// Verify a credential (the `VerifyCred` RPC, and the call the
    /// authorization service makes in Figure 4-a step 2).
    pub fn verify(&self, cred: &Credential) -> Result<PrincipalId> {
        let mut st = self.state.lock();
        let fail = |st: &mut AuthState, e: Error| {
            st.stats.verified_fail += 1;
            Err(e)
        };
        if cred.body.issuer_epoch != self.epoch {
            return fail(&mut st, Error::BadCredential);
        }
        if self.sign(&cred.body) != cred.sig {
            return fail(&mut st, Error::BadCredential);
        }
        if st.revoked.contains(&cred.body.serial) {
            return fail(&mut st, Error::CredentialRevoked);
        }
        if !cred.body.lifetime.valid_at(self.clock.now()) {
            return fail(&mut st, Error::CredentialExpired);
        }
        st.stats.verified_ok += 1;
        Ok(cred.body.principal)
    }

    /// Revoke a credential. Only a holder of the (genuine) credential may
    /// revoke it — verifying the signature first prevents a denial-of-
    /// service by serial guessing.
    pub fn revoke(&self, cred: &Credential) -> Result<()> {
        if cred.body.issuer_epoch != self.epoch || self.sign(&cred.body) != cred.sig {
            return Err(Error::BadCredential);
        }
        let mut st = self.state.lock();
        st.revoked.insert(cred.body.serial);
        st.stats.revoked += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::mechanism::MockKerberos;

    fn service() -> (AuthService, Arc<MockKerberos>, ManualClock) {
        let kdc = Arc::new(MockKerberos::new("TEST", 1));
        kdc.add_user("alice", "pw", PrincipalId(1));
        kdc.add_user("bob", "pw", PrincipalId(2));
        let clock = ManualClock::new();
        let svc = AuthService::new(
            AuthConfig { credential_ttl: 1_000, ..Default::default() },
            Arc::clone(&kdc) as Arc<dyn AuthMechanism>,
            Arc::new(clock.clone()),
        );
        (svc, kdc, clock)
    }

    #[test]
    fn issue_and_verify() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = svc.get_cred(&ticket).unwrap();
        assert_eq!(cred.principal(), PrincipalId(1));
        assert_eq!(svc.verify(&cred).unwrap(), PrincipalId(1));
        assert_eq!(svc.stats().issued, 1);
        assert_eq!(svc.stats().verified_ok, 1);
    }

    #[test]
    fn bad_token_rejected() {
        let (svc, _kdc, _clock) = service();
        assert_eq!(svc.get_cred(b"garbage").unwrap_err(), Error::BadCredential);
    }

    #[test]
    fn forged_signature_rejected() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let mut cred = svc.get_cred(&ticket).unwrap();
        cred.sig = Signature([0u8; 16]);
        assert_eq!(svc.verify(&cred).unwrap_err(), Error::BadCredential);
        assert_eq!(svc.stats().verified_fail, 1);
    }

    #[test]
    fn tampered_principal_rejected() {
        // Changing the body without re-MACing must fail: this is the
        // "cannot mint new credentials" property.
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let mut cred = svc.get_cred(&ticket).unwrap();
        cred.body.principal = PrincipalId(2);
        assert_eq!(svc.verify(&cred).unwrap_err(), Error::BadCredential);
    }

    #[test]
    fn expiry_enforced() {
        let (svc, kdc, clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = svc.get_cred(&ticket).unwrap();
        clock.advance(999);
        assert!(svc.verify(&cred).is_ok());
        clock.advance(2);
        assert_eq!(svc.verify(&cred).unwrap_err(), Error::CredentialExpired);
    }

    #[test]
    fn revocation_is_immediate() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = svc.get_cred(&ticket).unwrap();
        assert!(svc.verify(&cred).is_ok());
        svc.revoke(&cred).unwrap();
        assert_eq!(svc.verify(&cred).unwrap_err(), Error::CredentialRevoked);
        assert_eq!(svc.stats().revoked, 1);
    }

    #[test]
    fn revoking_one_does_not_affect_another() {
        let (svc, kdc, _clock) = service();
        let t1 = kdc.kinit("alice", "pw").unwrap();
        let t2 = kdc.kinit("bob", "pw").unwrap();
        let c1 = svc.get_cred(&t1).unwrap();
        let c2 = svc.get_cred(&t2).unwrap();
        svc.revoke(&c1).unwrap();
        assert!(svc.verify(&c1).is_err());
        assert_eq!(svc.verify(&c2).unwrap(), PrincipalId(2));
    }

    #[test]
    fn cannot_revoke_forged_credential() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let real = svc.get_cred(&ticket).unwrap();
        let mut forged = real;
        forged.body.serial = 999;
        assert_eq!(svc.revoke(&forged).unwrap_err(), Error::BadCredential);
        // The real credential still verifies: the forgery did not tombstone
        // an arbitrary serial.
        assert!(svc.verify(&real).is_ok());
    }

    #[test]
    fn epoch_change_invalidates_old_credentials() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = svc.get_cred(&ticket).unwrap();
        // "Restart" the service with a new epoch but the same key.
        let svc2 = AuthService::new(
            AuthConfig { epoch: 2, credential_ttl: 1_000, ..Default::default() },
            Arc::new(MockKerberos::new("TEST", 1)),
            Arc::new(ManualClock::new()),
        );
        assert_eq!(svc2.verify(&cred).unwrap_err(), Error::BadCredential);
    }

    #[test]
    fn credentials_are_transferable_values() {
        // Nothing about verification depends on who presents the
        // credential: the same value verifies repeatedly.
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = svc.get_cred(&ticket).unwrap();
        let copy = cred; // Copy semantics = free distribution to ranks.
        assert!(svc.verify(&cred).is_ok());
        assert!(svc.verify(&copy).is_ok());
    }

    #[test]
    fn serials_are_unique() {
        let (svc, kdc, _clock) = service();
        let ticket = kdc.kinit("alice", "pw").unwrap();
        let a = svc.get_cred(&ticket).unwrap();
        let b = svc.get_cred(&ticket).unwrap();
        assert_ne!(a.body.serial, b.body.serial);
        assert_ne!(a.sig, b.sig, "distinct serials must yield distinct MACs");
    }
}
