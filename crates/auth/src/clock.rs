//! Protocol time sources.
//!
//! Credentials and capabilities carry lifetimes in *protocol nanoseconds*.
//! Services read time through the [`Clock`] trait so tests can drive
//! expiry deterministically with a [`ManualClock`] while deployments use
//! the monotonic [`WallClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of protocol time (nanoseconds since an arbitrary epoch).
pub trait Clock: Send + Sync + 'static {
    fn now(&self) -> u64;
}

/// Monotonic wall-clock time measured from construction.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Wall-clock time anchored at the Unix epoch.
///
/// [`WallClock`] measures from construction, so two OS processes disagree
/// by their start offset — a capability minted in one process can look
/// not-yet-valid in another. Multi-process deployments use this clock so
/// every node reads the same timeline (clock sync is a given on a single
/// host; a real deployment would lean on NTP the same way).
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// A hand-advanced clock for tests. Cloning shares the same time.
#[derive(Clone, Default)]
pub struct ManualClock {
    t: Arc<AtomicU64>,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, t: u64) {
        self.t.store(t, Ordering::SeqCst);
    }

    pub fn advance(&self, dt: u64) {
        self.t.fetch_add(dt, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.t.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        assert_eq!(c.now(), 10);
        c.set(5);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(7);
        assert_eq!(b.now(), 7);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let t1 = c.now();
        let t2 = c.now();
        assert!(t2 >= t1);
    }
}
