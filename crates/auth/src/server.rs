//! Network-facing authentication server.
//!
//! Binds an [`AuthService`] to a Portals endpoint and serves the
//! `GetCred` / `VerifyCred` / `RevokeCred` RPCs.

use std::sync::Arc;

use lwfs_portals::{spawn_service, Endpoint, Network, Service, ServiceHandle};
use lwfs_proto::{ProcessId, ReplyBody, Request, RequestBody};

use crate::service::AuthService;

/// The RPC adapter for [`AuthService`].
pub struct AuthServer {
    service: Arc<AuthService>,
}

impl AuthServer {
    /// Spawn an authentication server at `id` on `net`.
    ///
    /// Returns the service handle and a shared reference to the logic (for
    /// in-process inspection by tests and by the authorization service).
    pub fn spawn(
        net: &Network,
        id: ProcessId,
        service: AuthService,
    ) -> (ServiceHandle, Arc<AuthService>) {
        let service = Arc::new(service);
        let handle = spawn_service(net, id, AuthServer { service: Arc::clone(&service) });
        (handle, service)
    }
}

impl Service for AuthServer {
    fn handle(&mut self, _ep: &Endpoint, req: &Request) -> ReplyBody {
        match &req.body {
            RequestBody::GetCred { mechanism_token } => {
                match self.service.get_cred(mechanism_token) {
                    Ok(cred) => ReplyBody::Cred(cred),
                    Err(e) => ReplyBody::Err(e),
                }
            }
            RequestBody::VerifyCred { cred } => match self.service.verify(cred) {
                Ok(principal) => ReplyBody::CredOk { principal },
                Err(e) => ReplyBody::Err(e),
            },
            RequestBody::RevokeCred { cred } => match self.service.revoke(cred) {
                Ok(()) => ReplyBody::CredRevoked,
                Err(e) => ReplyBody::Err(e),
            },
            RequestBody::Ping => ReplyBody::Pong,
            other => ReplyBody::Err(lwfs_proto::Error::Malformed(format!(
                "authentication service cannot handle {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::mechanism::MockKerberos;
    use crate::service::AuthConfig;
    use lwfs_portals::RpcClient;
    use lwfs_proto::{Error, PrincipalId};

    fn boot() -> (Network, ServiceHandle, Arc<MockKerberos>) {
        let net = Network::default();
        let kdc = Arc::new(MockKerberos::new("TEST", 5));
        kdc.add_user("alice", "pw", PrincipalId(1));
        let svc = AuthService::new(
            AuthConfig::default(),
            Arc::clone(&kdc) as Arc<dyn crate::mechanism::AuthMechanism>,
            Arc::new(ManualClock::new()),
        );
        let (handle, _svc) = AuthServer::spawn(&net, ProcessId::new(100, 0), svc);
        (net, handle, kdc)
    }

    #[test]
    fn rpc_get_verify_revoke_cycle() {
        let (net, handle, kdc) = boot();
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);

        let ticket = kdc.kinit("alice", "pw").unwrap();
        let cred = match client
            .call(handle.id(), RequestBody::GetCred { mechanism_token: ticket })
            .unwrap()
        {
            ReplyBody::Cred(c) => c,
            other => panic!("unexpected reply {other:?}"),
        };

        let verified = client.call(handle.id(), RequestBody::VerifyCred { cred }).unwrap();
        assert_eq!(verified, ReplyBody::CredOk { principal: PrincipalId(1) });

        assert_eq!(
            client.call(handle.id(), RequestBody::RevokeCred { cred }).unwrap(),
            ReplyBody::CredRevoked
        );
        assert_eq!(
            client.call(handle.id(), RequestBody::VerifyCred { cred }).unwrap_err(),
            Error::CredentialRevoked
        );
        handle.shutdown();
    }

    #[test]
    fn bad_token_over_rpc() {
        let (net, handle, _kdc) = boot();
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let err = client
            .call(handle.id(), RequestBody::GetCred { mechanism_token: b"junk".to_vec() })
            .unwrap_err();
        assert_eq!(err, Error::BadCredential);
        handle.shutdown();
    }

    #[test]
    fn wrong_request_kind_is_rejected() {
        let (net, handle, _kdc) = boot();
        let ep = net.register(ProcessId::new(0, 0));
        let client = RpcClient::new(&ep);
        let err =
            client.call(handle.id(), RequestBody::NameLookup { path: "/x".into() }).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)));
        handle.shutdown();
    }
}
