//! Per-process access patterns.
//!
//! The paper's introduction motivates lightweight I/O with applications
//! whose access patterns defeat general-purpose policies: seismic imaging
//! (Oldfield et al., ref. 27) reads/writes *strided trace gathers*; checkpointing writes one
//! contiguous region per process; out-of-core solvers touch blocks in
//! data-dependent order. These generators produce those shapes for the
//! examples and the DES workloads.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One I/O operation in a generated sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOp {
    pub offset: u64,
    pub len: u64,
}

/// Access-pattern generators.
#[derive(Debug, Clone)]
pub enum AccessPattern {
    /// One contiguous region starting at `base` (a checkpoint dump),
    /// chunked into `chunk`-byte operations.
    Contiguous { base: u64, total: u64, chunk: u64 },
    /// Strided access: `count` records of `record` bytes, `stride` bytes
    /// apart (seismic trace gathers: one trace every shot-gather stride).
    Strided { base: u64, record: u64, stride: u64, count: u64 },
    /// Uniform random record access within `[0, span)` (out-of-core
    /// solver touching blocks).
    Random { span: u64, record: u64, count: u64 },
}

impl AccessPattern {
    /// Generate the operation sequence (deterministic from `seed` for
    /// `Random`; seed ignored otherwise).
    pub fn generate(&self, seed: u64) -> Vec<IoOp> {
        match self {
            AccessPattern::Contiguous { base, total, chunk } => {
                assert!(*chunk > 0);
                let mut ops = Vec::new();
                let mut off = 0u64;
                while off < *total {
                    let len = (*total - off).min(*chunk);
                    ops.push(IoOp { offset: base + off, len });
                    off += len;
                }
                ops
            }
            AccessPattern::Strided { base, record, stride, count } => {
                assert!(*stride >= *record, "records must not overlap");
                (0..*count).map(|i| IoOp { offset: base + i * stride, len: *record }).collect()
            }
            AccessPattern::Random { span, record, count } => {
                assert!(*span >= *record && *record > 0);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let slots = span / record;
                (0..*count)
                    .map(|_| IoOp { offset: rng.gen_range(0..slots) * record, len: *record })
                    .collect()
            }
        }
    }

    /// Total bytes the generated sequence touches.
    pub fn total_bytes(&self) -> u64 {
        match self {
            AccessPattern::Contiguous { total, .. } => *total,
            AccessPattern::Strided { record, count, .. } => record * count,
            AccessPattern::Random { record, count, .. } => record * count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_tiles_exactly() {
        let p = AccessPattern::Contiguous { base: 100, total: 1000, chunk: 300 };
        let ops = p.generate(0);
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0], IoOp { offset: 100, len: 300 });
        assert_eq!(ops[3], IoOp { offset: 1000, len: 100 });
        assert_eq!(ops.iter().map(|o| o.len).sum::<u64>(), p.total_bytes());
    }

    #[test]
    fn strided_spacing() {
        let p = AccessPattern::Strided { base: 0, record: 4_000, stride: 1_000_000, count: 5 };
        let ops = p.generate(0);
        assert_eq!(ops.len(), 5);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.offset, i as u64 * 1_000_000);
            assert_eq!(op.len, 4_000);
        }
    }

    #[test]
    fn random_records_aligned_and_in_span() {
        let p = AccessPattern::Random { span: 1_000_000, record: 4096, count: 500 };
        let ops = p.generate(3);
        assert_eq!(ops.len(), 500);
        for op in &ops {
            assert_eq!(op.offset % 4096, 0);
            assert!(op.offset + op.len <= 1_000_000);
        }
        // Deterministic.
        assert_eq!(ops, p.generate(3));
    }

    #[test]
    #[should_panic(expected = "records must not overlap")]
    fn overlapping_stride_panics() {
        AccessPattern::Strided { base: 0, record: 100, stride: 50, count: 2 }.generate(0);
    }
}
