//! Parameter grids for the evaluation sweeps.
//!
//! Figures 9 and 10 sweep **client count** (1 → ~64, the paper's dev
//! cluster hosted up to 64 client processes on 31 compute nodes) for each
//! of **2, 4, 8, 16 storage servers**, with ≥5 trials per point. The grid
//! type makes the sweep explicit and iterable so every figure harness
//! shares one definition.

/// One cell of an experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPoint {
    pub clients: usize,
    pub servers: usize,
    pub trial: u64,
}

/// A (clients × servers × trials) sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentGrid {
    pub client_counts: Vec<usize>,
    pub server_counts: Vec<usize>,
    pub trials: u64,
}

impl ExperimentGrid {
    /// The paper's Figure 9/10 sweep.
    pub fn paper() -> Self {
        Self {
            client_counts: vec![1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64],
            server_counts: vec![2, 4, 8, 16],
            trials: 5,
        }
    }

    /// A quick variant for smoke tests and CI.
    pub fn smoke() -> Self {
        Self { client_counts: vec![1, 4, 16], server_counts: vec![2, 8], trials: 2 }
    }

    /// Iterate every point, trials innermost (so partial output is still
    /// grouped by curve, matching how the figures are drawn).
    pub fn points(&self) -> impl Iterator<Item = GridPoint> + '_ {
        self.server_counts.iter().flat_map(move |&servers| {
            self.client_counts.iter().flat_map(move |&clients| {
                (0..self.trials).map(move |trial| GridPoint { clients, servers, trial })
            })
        })
    }

    pub fn len(&self) -> usize {
        self.client_counts.len() * self.server_counts.len() * self.trials as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_figures() {
        let g = ExperimentGrid::paper();
        assert_eq!(g.server_counts, vec![2, 4, 8, 16]);
        assert!(g.client_counts.contains(&64));
        assert!(g.trials >= 5, "paper: minimum of 5 trials");
    }

    #[test]
    fn points_cover_the_full_product() {
        let g = ExperimentGrid::smoke();
        let pts: Vec<_> = g.points().collect();
        assert_eq!(pts.len(), g.len());
        assert_eq!(pts.len(), 3 * 2 * 2);
        // Unique.
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn trials_are_innermost() {
        let g = ExperimentGrid::smoke();
        let pts: Vec<_> = g.points().collect();
        assert_eq!(pts[0].trial, 0);
        assert_eq!(pts[1].trial, 1);
        assert_eq!(pts[0].clients, pts[1].clients);
        assert_eq!(pts[0].servers, pts[1].servers);
    }
}
