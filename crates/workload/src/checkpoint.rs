//! The checkpoint workload of §4.
//!
//! Matches the paper's experiment: "In every experiment, each node writes
//! 512 MB of data and measures the time to open, write, sync, and close
//! the file (or object)." The generator also produces deterministic,
//! verifiable state buffers so functional-plane tests can check restores
//! byte for byte.

/// Parameters of one checkpoint experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointWorkload {
    /// Number of application processes (the x-axis of Figures 9–10).
    pub ranks: usize,
    /// Bytes each rank dumps (512 MB in the paper).
    pub bytes_per_rank: u64,
    /// Virtual compute time between checkpoint epochs (ns).
    pub compute_ns: u64,
    /// Checkpoint epochs per run.
    pub epochs: u64,
}

impl CheckpointWorkload {
    /// The paper's configuration: 512 MB per process.
    pub fn paper(ranks: usize) -> Self {
        Self { ranks, bytes_per_rank: 512 * 1_000_000, compute_ns: 60 * 1_000_000_000, epochs: 1 }
    }

    /// A scaled-down variant for functional-plane tests (same shape,
    /// kilobytes instead of half-gigabytes).
    pub fn small(ranks: usize, bytes_per_rank: u64) -> Self {
        Self { ranks, bytes_per_rank, compute_ns: 1_000_000, epochs: 1 }
    }

    /// Total bytes moved per epoch.
    pub fn total_bytes(&self) -> u64 {
        self.ranks as u64 * self.bytes_per_rank
    }

    /// Deterministic state buffer for `(rank, epoch)` — distinct across
    /// both so restore-verification catches cross-rank and cross-epoch
    /// mix-ups.
    pub fn state(&self, rank: usize, epoch: u64) -> Vec<u8> {
        let len = usize::try_from(self.bytes_per_rank).expect("state fits in memory");
        let seed =
            (rank as u64).wrapping_mul(0x9E37_79B9) ^ epoch.wrapping_mul(0x85EB_CA6B) ^ 0xC2B2_AE35;
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                // xorshift64: fast, deterministic, full-byte entropy.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect()
    }

    /// Verify a restored buffer matches `(rank, epoch)`.
    pub fn verify(&self, rank: usize, epoch: u64, data: &[u8]) -> bool {
        data == self.state(rank, epoch).as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let w = CheckpointWorkload::paper(64);
        assert_eq!(w.bytes_per_rank, 512_000_000);
        assert_eq!(w.total_bytes(), 64 * 512_000_000);
    }

    #[test]
    fn state_is_deterministic_and_distinct() {
        let w = CheckpointWorkload::small(4, 1024);
        assert_eq!(w.state(0, 1), w.state(0, 1));
        assert_ne!(w.state(0, 1), w.state(1, 1), "ranks differ");
        assert_ne!(w.state(0, 1), w.state(0, 2), "epochs differ");
        assert_eq!(w.state(0, 1).len(), 1024);
    }

    #[test]
    fn verify_accepts_own_state_rejects_others() {
        let w = CheckpointWorkload::small(2, 256);
        let s = w.state(1, 3);
        assert!(w.verify(1, 3, &s));
        assert!(!w.verify(0, 3, &s));
        assert!(!w.verify(1, 2, &s));
        assert!(!w.verify(1, 3, &s[..255]));
    }

    #[test]
    fn state_has_byte_entropy() {
        // Guard against a degenerate generator (all zeros / short cycle).
        let w = CheckpointWorkload::small(1, 4096);
        let s = w.state(0, 0);
        let distinct: std::collections::HashSet<u8> = s.iter().copied().collect();
        assert!(distinct.len() > 200, "only {} distinct byte values", distinct.len());
    }
}
