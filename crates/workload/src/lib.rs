//! Workload generators for the evaluation harness.
//!
//! §2.2: "I/O for scientific applications is often *bursty* in nature.
//! Since there are many more compute nodes than I/O nodes, an I/O node may
//! receive tens of thousands of near-simultaneous I/O requests." The
//! generators here produce exactly those shapes:
//!
//! * [`checkpoint`] — the §4 case-study workload: compute for a while,
//!   then every rank dumps a fixed-size state near-simultaneously.
//! * [`arrivals`] — request arrival processes: synchronized bursts with
//!   jitter (checkpoints) and Poisson streams (background I/O).
//! * [`access`] — per-process access patterns: contiguous, strided
//!   (seismic-style trace gathers), and random offsets.
//! * [`sweep`] — the experiment grids of Figures 9–10 (client counts ×
//!   server counts × trials).

pub mod access;
pub mod arrivals;
pub mod checkpoint;
pub mod sweep;

pub use access::{AccessPattern, IoOp};
pub use arrivals::{ArrivalProcess, Burst};
pub use checkpoint::CheckpointWorkload;
pub use sweep::{ExperimentGrid, GridPoint};
