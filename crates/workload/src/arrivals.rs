//! Request arrival processes.
//!
//! Two shapes matter for the paper's claims:
//!
//! * **Synchronized bursts** — a checkpoint epoch: every rank issues its
//!   request at (nearly) the same instant, skewed only by compute jitter.
//!   This is the load that overwhelms an I/O node's buffers (§3.2).
//! * **Poisson streams** — background I/O from competing applications,
//!   used by the multi-application contention experiments.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One burst: the arrival instant (ns) of every request in it.
#[derive(Debug, Clone, PartialEq)]
pub struct Burst {
    pub at_ns: Vec<u64>,
}

impl Burst {
    pub fn len(&self) -> usize {
        self.at_ns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.at_ns.is_empty()
    }

    /// Spread between the first and last arrival.
    pub fn skew_ns(&self) -> u64 {
        match (self.at_ns.iter().min(), self.at_ns.iter().max()) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        }
    }
}

/// An arrival process generator.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// All `n` ranks arrive at `epoch_ns` plus uniform jitter in
    /// `[0, jitter_ns)`.
    SynchronizedBurst { n: usize, epoch_ns: u64, jitter_ns: u64 },
    /// Poisson arrivals with the given mean inter-arrival time, starting
    /// at `start_ns`, producing `count` arrivals.
    Poisson { start_ns: u64, mean_gap_ns: u64, count: usize },
}

impl ArrivalProcess {
    /// Generate the arrival instants, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Burst {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            ArrivalProcess::SynchronizedBurst { n, epoch_ns, jitter_ns } => {
                let at_ns = (0..*n)
                    .map(|_| {
                        let j = if *jitter_ns == 0 { 0 } else { rng.gen_range(0..*jitter_ns) };
                        epoch_ns + j
                    })
                    .collect();
                Burst { at_ns }
            }
            ArrivalProcess::Poisson { start_ns, mean_gap_ns, count } => {
                let mut t = *start_ns as f64;
                let mean = *mean_gap_ns as f64;
                let at_ns = (0..*count)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        t += -mean * u.ln();
                        t as u64
                    })
                    .collect();
                Burst { at_ns }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_burst_within_jitter() {
        let p = ArrivalProcess::SynchronizedBurst { n: 100, epoch_ns: 1_000, jitter_ns: 50 };
        let b = p.generate(7);
        assert_eq!(b.len(), 100);
        assert!(b.at_ns.iter().all(|t| (1_000..1_050).contains(t)));
        assert!(b.skew_ns() < 50);
    }

    #[test]
    fn zero_jitter_is_simultaneous() {
        let p = ArrivalProcess::SynchronizedBurst { n: 10, epoch_ns: 5, jitter_ns: 0 };
        let b = p.generate(1);
        assert_eq!(b.skew_ns(), 0);
        assert!(b.at_ns.iter().all(|t| *t == 5));
    }

    #[test]
    fn poisson_is_monotone_with_roughly_right_mean() {
        let p = ArrivalProcess::Poisson { start_ns: 0, mean_gap_ns: 1_000, count: 20_000 };
        let b = p.generate(42);
        assert!(b.at_ns.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = *b.at_ns.last().unwrap() as f64 / b.len() as f64;
        assert!((mean_gap - 1_000.0).abs() < 50.0, "observed mean gap {mean_gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { start_ns: 0, mean_gap_ns: 100, count: 50 };
        assert_eq!(p.generate(9), p.generate(9));
        assert_ne!(p.generate(9), p.generate(10));
    }

    #[test]
    fn empty_burst_is_safe() {
        let b = Burst { at_ns: vec![] };
        assert_eq!(b.skew_ns(), 0);
        assert!(b.is_empty());
    }
}
