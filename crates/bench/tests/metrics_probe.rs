//! Integration test for the `--metrics-out` / `--trace-out` probe: the
//! registry snapshot must carry every instrumented subsystem, the stage
//! decomposition of each traced request must account for no more than
//! its end-to-end latency, and the trace export must assemble a
//! replicated write across nodes.

use std::collections::BTreeMap;

use lwfs_bench::run_metrics_probe;
use lwfs_obs::{TraceCollector, TOTAL_STAGE};

/// Ops recorded as *annotations inside* another op's stage intervals
/// (`wal.append` under `storage.write.wal_append`, `repl.ship` around
/// the backup round trip, `authz.verify_through` inside `authorize`).
/// They carry no `total` of their own and overlap their parent's
/// stages, so the per-request stage accounting must skip them.
const ANNOTATION_OPS: &[&str] = &["wal", "repl", "authz"];

#[test]
fn snapshot_covers_every_instrumented_subsystem() {
    let snap = run_metrics_probe(None, None).unwrap();

    // Storage: queue/buffer gauges exist (drained back to zero by the
    // time we sample) and the data-path counters moved.
    assert_eq!(snap.gauge("storage.queue_depth"), Some(0));
    assert_eq!(snap.gauge("storage.pool_in_use"), Some(0));
    assert!(snap.counter("storage.writes").unwrap() >= 2);
    assert!(snap.counter("storage.reads").unwrap() >= 2);
    assert!(snap.counter("storage.bytes_pulled").unwrap() >= 2 * 640 * 1024);

    // Authorization: the cap cache missed cold, hit warm, and verified
    // through to the authz server.
    assert!(snap.counter("authz.cache.hits").unwrap() >= 1);
    assert!(snap.counter("authz.cache.misses").unwrap() >= 1);
    assert!(snap.counter("authz.cache.verify_through").unwrap() >= 1);

    // Transactions: one committed and one aborted 2PC, with both phase
    // latencies recorded.
    assert_eq!(snap.counter("txn.commits"), Some(1));
    assert_eq!(snap.counter("txn.aborts"), Some(1));
    assert_eq!(snap.histogram("txn.prepare_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("txn.commit_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("txn.abort_ns").unwrap().count, 1);

    // Naming and the message fabric.
    assert!(snap.counter("naming.ops").unwrap() >= 4);
    assert!(snap.counter("portals.messages").unwrap() > 0);
    assert!(snap.counter("portals.gets").unwrap() > 0);

    // The write path decomposed into stages, including the WAL the probe
    // cluster now runs with.
    for h in [
        "storage.write.queue_wait_ns",
        "storage.write.authorize_ns",
        "storage.write.pull_ns",
        "storage.write.store_write_ns",
        "storage.write.reply_ns",
        "storage.write.total_ns",
        "wal.append_ns",
    ] {
        assert!(snap.histogram(h).unwrap().count > 0, "missing {h}");
    }

    // The control-plane journal recorded the probe's induced faults.
    assert!(!snap.events_of_kind("repl.evict_backup").is_empty());
    assert!(!snap.events_of_kind("failover.promote").is_empty());

    // JSON export round-trips the same names, plus the journal.
    let json = snap.to_json();
    for key in ["storage.queue_depth", "authz.cache.hits", "txn.prepare_ns", "portals.messages"] {
        assert!(json.contains(key), "JSON export missing {key}");
    }
    assert!(json.contains("failover.promote"), "JSON export missing the event journal");
}

#[test]
fn stage_latencies_sum_to_at_most_end_to_end() {
    let snap = run_metrics_probe(None, None).unwrap();
    assert!(!snap.spans.is_empty());

    // Group the span log by traced request; compare the sum of its stage
    // durations against its end-to-end `total` spans. A retried request
    // reuses its `req_id` by design (that is what makes server-side dedup
    // work), so one `(req_id, op)` may execute more than once — each
    // execution records a `total`, and the stage sum must stay within
    // their sum. Annotation spans overlap the stages that contain them
    // and are accounted separately below.
    let mut per_req: BTreeMap<(u64, &str), (u64, u64, usize)> = BTreeMap::new();
    for s in snap.spans.iter().filter(|s| !ANNOTATION_OPS.contains(&s.op)) {
        let e = per_req.entry((s.req_id, s.op)).or_default();
        if s.stage == TOTAL_STAGE {
            e.1 += s.dur_ns;
            e.2 += 1;
        } else {
            e.0 += s.dur_ns;
        }
    }

    let mut checked = 0usize;
    let mut in_flight = 0usize;
    for ((req_id, op), (stage_sum, total_sum, totals)) in per_req {
        // A request whose reply the probe saw can still be closing its
        // trace on the server thread; the probe's flush round bounds
        // these to the final op per server.
        if totals == 0 {
            in_flight += 1;
            continue;
        }
        assert!(
            stage_sum <= total_sum,
            "trace {req_id:#x}/{op}: stage sum {stage_sum}ns exceeds end-to-end {total_sum}ns \
             over {totals} execution(s)"
        );
        checked += 1;
    }
    assert!(in_flight <= 2, "{in_flight} traces still open after the flush round");
    // Storage ops on two servers, the txn coordinator, and naming all
    // trace; expect a healthy number of decomposed requests.
    assert!(checked >= 10, "only {checked} traced requests");

    // Annotation spans ride inside a request, recorded *before* its
    // total closes — so each must reference a (req_id, nid) that either
    // recorded a total or is one of the few requests still in flight at
    // snapshot time (the same allowance as above).
    let closed: std::collections::BTreeSet<(u64, u32)> =
        snap.spans.iter().filter(|s| s.stage == TOTAL_STAGE).map(|s| (s.req_id, s.nid)).collect();
    let dangling: std::collections::BTreeSet<(u64, u32)> = snap
        .spans
        .iter()
        .filter(|s| ANNOTATION_OPS.contains(&s.op) && !closed.contains(&(s.req_id, s.nid)))
        .map(|s| (s.req_id, s.nid))
        .collect();
    assert!(
        dangling.len() <= 2,
        "{} annotated requests never closed their trace: {dangling:x?}",
        dangling.len()
    );
}

#[test]
fn trace_export_assembles_a_replicated_write() {
    let dir = std::env::temp_dir().join(format!("lwfs-trace-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path = dir.join("probe_trace.json");
    let snap = run_metrics_probe(None, Some(&trace_path)).unwrap();

    // The exported file is the Chrome trace_event envelope with spans
    // from the client and both storage roles.
    let json = std::fs::read_to_string(&trace_path).unwrap();
    assert!(json.starts_with("{\"traceEvents\": ["));
    for name in [
        "client.mutate.send",
        "storage.write.pull",
        "wal.append",
        "repl.ship",
        "storage.repl_ship.apply",
    ] {
        assert!(json.contains(&format!("\"name\": \"{name}\"")), "export missing {name}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    // Reassemble from the snapshot: some trace must span the client and
    // at least two storage nodes (primary + backup) under one trace_id,
    // and its client total must dominate every span it contains.
    let mut collector = TraceCollector::new();
    collector.add_spans(snap.spans.iter().cloned());
    let t = collector
        .traces()
        .into_iter()
        .find(|t| {
            t.spans.iter().any(|s| s.op == "client.mutate")
                && t.spans.iter().any(|s| s.op == "storage.repl_ship" && s.stage == "apply")
        })
        .expect("no assembled trace spans client and backup");
    let storage_nodes = t.nodes().iter().filter(|&&n| n >= 1100).count();
    assert!(storage_nodes >= 2, "trace touched {storage_nodes} storage nodes, expected >= 2");
    let client_total = t
        .spans
        .iter()
        .filter(|s| s.op == "client.mutate" && s.stage == TOTAL_STAGE)
        .map(|s| s.dur_ns)
        .max()
        .expect("client total span");
    assert!(client_total > 0, "client total must be a real interval");
    // Causality on the shared timeline: the trace begins at the client
    // (the origin of the propagated context), and no participant's span
    // dwarfs the overall trace. (The server's `total` closes a hair
    // *after* the client's — the trace finishes after the reply is on
    // the wire — so the client total is a floor, not the max.)
    let first = t.spans.first().expect("trace has spans");
    assert_eq!(first.op, "client.mutate", "trace must start at the client, not {}", first.op);
    assert!(t.total_ns() >= client_total);

    let _ = std::fs::remove_dir_all(&dir);
}
