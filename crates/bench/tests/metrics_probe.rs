//! Integration test for the `--metrics-out` probe: the registry snapshot
//! must carry every instrumented subsystem, and the stage decomposition
//! of each traced request must account for no more than its end-to-end
//! latency.

use std::collections::BTreeMap;

use lwfs_bench::run_metrics_probe;
use lwfs_obs::TOTAL_STAGE;

#[test]
fn snapshot_covers_every_instrumented_subsystem() {
    let snap = run_metrics_probe(None).unwrap();

    // Storage: queue/buffer gauges exist (drained back to zero by the
    // time we sample) and the data-path counters moved.
    assert_eq!(snap.gauge("storage.queue_depth"), Some(0));
    assert_eq!(snap.gauge("storage.pool_in_use"), Some(0));
    assert!(snap.counter("storage.writes").unwrap() >= 2);
    assert!(snap.counter("storage.reads").unwrap() >= 2);
    assert!(snap.counter("storage.bytes_pulled").unwrap() >= 2 * 640 * 1024);

    // Authorization: the cap cache missed cold, hit warm, and verified
    // through to the authz server.
    assert!(snap.counter("authz.cache.hits").unwrap() >= 1);
    assert!(snap.counter("authz.cache.misses").unwrap() >= 1);
    assert!(snap.counter("authz.cache.verify_through").unwrap() >= 1);

    // Transactions: one committed and one aborted 2PC, with both phase
    // latencies recorded.
    assert_eq!(snap.counter("txn.commits"), Some(1));
    assert_eq!(snap.counter("txn.aborts"), Some(1));
    assert_eq!(snap.histogram("txn.prepare_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("txn.commit_ns").unwrap().count, 1);
    assert_eq!(snap.histogram("txn.abort_ns").unwrap().count, 1);

    // Naming and the message fabric.
    assert!(snap.counter("naming.ops").unwrap() >= 4);
    assert!(snap.counter("portals.messages").unwrap() > 0);
    assert!(snap.counter("portals.gets").unwrap() > 0);

    // The write path decomposed into stages.
    for h in [
        "storage.write.queue_wait_ns",
        "storage.write.authorize_ns",
        "storage.write.pull_ns",
        "storage.write.store_write_ns",
        "storage.write.reply_ns",
        "storage.write.total_ns",
    ] {
        assert!(snap.histogram(h).unwrap().count > 0, "missing {h}");
    }

    // JSON export round-trips the same names.
    let json = snap.to_json();
    for key in ["storage.queue_depth", "authz.cache.hits", "txn.prepare_ns", "portals.messages"] {
        assert!(json.contains(key), "JSON export missing {key}");
    }
}

#[test]
fn stage_latencies_sum_to_at_most_end_to_end() {
    let snap = run_metrics_probe(None).unwrap();
    assert!(!snap.spans.is_empty());

    // Group the span log by traced request; compare the sum of its stage
    // durations against the end-to-end `total` span.
    let mut per_req: BTreeMap<(u64, &str), (u64, Option<u64>)> = BTreeMap::new();
    for s in &snap.spans {
        let e = per_req.entry((s.req_id, s.op)).or_default();
        if s.stage == TOTAL_STAGE {
            e.1 = Some(s.dur_ns);
        } else {
            e.0 += s.dur_ns;
        }
    }

    let mut checked = 0usize;
    let mut in_flight = 0usize;
    for ((req_id, op), (stage_sum, total)) in per_req {
        // A request whose reply the probe saw can still be closing its
        // trace on the server thread; the probe's flush round bounds
        // these to the final op per server.
        let Some(total) = total else {
            in_flight += 1;
            continue;
        };
        assert!(
            stage_sum <= total,
            "trace {req_id:#x}/{op}: stage sum {stage_sum}ns exceeds end-to-end {total}ns"
        );
        checked += 1;
    }
    assert!(in_flight <= 2, "{in_flight} traces still open after the flush round");
    // Storage ops on two servers, the txn coordinator, and naming all
    // trace; expect a healthy number of decomposed requests.
    assert!(checked >= 10, "only {checked} traced requests");
}
