//! End-to-end acceptance for the telemetry plane: run the monitored
//! write-storm probe and validate its artifacts with an *independent*
//! Prometheus exposition-format checker (the exporter must not be the
//! only judge of its own output).

use lwfs_bench::{run_telemetry_probe, LAG_RULE, WRITE_P99_RULE};

/// Validate Prometheus text exposition format: every `# TYPE` line names
/// a legal metric with a legal type, every sample line is
/// `name{labels} value` with a legal name, legal label names, properly
/// escaped label values, and a parseable value — and every sample's
/// metric carries a TYPE line.
fn check_prometheus_format(text: &str) -> Result<(), String> {
    fn legal_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn legal_label_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    // Label values must escape backslash, double-quote, and newline.
    fn legal_label_value(s: &str) -> bool {
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') | Some('"') | Some('n') => {}
                    _ => return false,
                },
                '"' | '\n' => return false,
                _ => {}
            }
        }
        true
    }

    let mut typed = std::collections::HashSet::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: TYPE without name"))?;
            let ty = parts.next().ok_or(format!("line {lineno}: TYPE without type"))?;
            if !legal_name(name) {
                return Err(format!("line {lineno}: illegal metric name {name:?}"));
            }
            if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: illegal metric type {ty:?}"));
            }
            typed.insert(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        // Sample: name{label="value",...} value  |  name value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample without value: {line:?}"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {lineno}: unparseable value {value:?}"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {lineno}: unterminated label set"))?;
                (n, Some(body))
            }
            None => (series, None),
        };
        // Histogram series suffixes (_bucket/_sum/_count) are samples of
        // the base metric's TYPE line.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !legal_name(name) {
            return Err(format!("line {lineno}: illegal sample name {name:?}"));
        }
        if !typed.contains(name) && !typed.contains(base) {
            return Err(format!("line {lineno}: sample {name:?} has no preceding TYPE line"));
        }
        if let Some(body) = labels {
            // Split on `",` boundaries so escaped quotes inside values
            // survive; every pair must be label="value".
            for pair in body.split("\",") {
                let pair = pair.strip_suffix('"').unwrap_or(pair);
                let (lname, lvalue) = pair
                    .split_once("=\"")
                    .ok_or(format!("line {lineno}: malformed label pair {pair:?}"))?;
                if !legal_label_name(lname) {
                    return Err(format!("line {lineno}: illegal label name {lname:?}"));
                }
                if !legal_label_value(lvalue) {
                    return Err(format!("line {lineno}: unescaped label value {lvalue:?}"));
                }
            }
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition has no samples".into());
    }
    Ok(())
}

#[test]
fn telemetry_probe_monitors_degrading_cluster() {
    let dir = std::env::temp_dir().join(format!("lwfs-telemetry-test-{}", std::process::id()));
    let out = dir.join("telemetry.jsonl");
    let trace_out = dir.join("trace.json");
    let report = run_telemetry_probe(Some(&out), Some(&trace_out)).expect("telemetry probe");

    // The probe already asserted the core invariants (nonzero lag window,
    // alert-before-eviction); re-check the ordering from the report and
    // hold the exposition to the independent format checker.
    assert!(report.windows >= 5, "monitor completed only {} windows", report.windows);
    assert!(
        report.lag_alert_seq < report.evict_seq,
        "lag alert (seq {}) must precede the eviction (seq {})",
        report.lag_alert_seq,
        report.evict_seq
    );
    check_prometheus_format(&report.prometheus)
        .unwrap_or_else(|e| panic!("Prometheus format violation: {e}\n{}", report.prometheus));

    // The window lines carry the scraped journal tail: the causal story
    // (alert before eviction) must be reconstructible from the JSONL
    // artifact alone — CI asserts exactly this on the exported file.
    assert!(
        report.jsonl.iter().any(|l| l.contains("\"kind\": \"alert.fire\"") && l.contains(LAG_RULE)),
        "lag alert missing from the JSONL event stream"
    );
    assert!(
        report.jsonl.iter().any(|l| l.contains("\"kind\": \"repl.evict_backup\"")),
        "eviction missing from the JSONL event stream"
    );

    // Per-node attribution: the per-server series must carry a nid label.
    assert!(
        report.prometheus.contains("nid=\""),
        "per-server series lost their nid label:\n{}",
        report.prometheus
    );

    // The JSONL artifact: meta stamp first, then one object per window.
    let body = std::fs::read_to_string(&out).expect("telemetry jsonl written");
    let mut lines = body.lines();
    let meta = lines.next().expect("meta line");
    assert!(meta.contains("\"unix_ts\""), "meta line missing timestamp: {meta}");
    assert!(meta.contains("\"protocol_version\""), "meta line missing protocol: {meta}");
    assert!(meta.contains("\"storage_servers\""), "meta line missing census: {meta}");
    assert!(lines.clone().count() >= 5, "jsonl has too few windows");
    for line in lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "window line is not a JSON object: {line}"
        );
    }
    let prom = std::fs::read_to_string(out.with_extension("prom")).expect("prom written");
    assert!(prom.starts_with("# meta: "), "prom file missing meta comment");

    // The blame-carrying alert: the write-p99 breach must name ship RTT,
    // and the fired alert must be in the JSONL event stream so offline
    // tooling can reconstruct the attribution from artifacts alone.
    assert!(
        report.p99_alert_detail.contains("blame=ship_rtt"),
        "p99 alert detail lost its blame: {}",
        report.p99_alert_detail
    );
    assert!(
        report.jsonl.iter().any(|l| l.contains(WRITE_P99_RULE) && l.contains("blame=ship_rtt")),
        "blame-carrying p99 alert missing from the JSONL event stream"
    );
    // The trace artifact: valid-looking Chrome trace JSON carrying the
    // storm's ship spans.
    let trace = std::fs::read_to_string(&trace_out).expect("trace json written");
    assert!(trace.contains("\"traceEvents\""), "trace artifact is not Chrome trace JSON");
    assert!(trace.contains("repl.ship"), "trace artifact lost the ship spans");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prometheus_checker_rejects_malformed_expositions() {
    // The checker itself must have teeth, or the probe test proves nothing.
    assert!(check_prometheus_format("# TYPE ok counter\nok 1\n").is_ok());
    assert!(
        check_prometheus_format("# TYPE a gauge\na{nid=\"1\"} 2\n").is_ok(),
        "labelled sample must pass"
    );
    for bad in [
        "",                                      // no samples
        "# TYPE 9bad counter\n9bad 1\n",         // digit-leading name
        "# TYPE ok counter\nok notanumber\n",    // bad value
        "ok 1\n",                                // sample without TYPE
        "# TYPE ok counter\nok{l=\"a\"b\"} 1\n", // unescaped quote in value
        "# TYPE ok wrongtype\nok 1\n",           // unknown type
        "# TYPE ok counter\nok{2l=\"a\"} 1\n",   // digit-leading label name
    ] {
        assert!(check_prometheus_format(bad).is_err(), "checker accepted: {bad:?}");
    }
}

#[test]
fn lag_rule_name_is_stable() {
    // CI greps the journal for this rule name; keep it a public constant.
    assert_eq!(LAG_RULE, "repl_lag_sustained");
}
