//! Microbenchmarks of the Portals-like substrate: eager messages,
//! one-sided put/get at several sizes, and a full RPC round trip.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lwfs_portals::{spawn_service, Endpoint, MdOptions, MemDesc, Network, RpcClient, Service};
use lwfs_proto::{ProcessId, ReplyBody, Request, RequestBody};

fn bench_eager(c: &mut Criterion) {
    let net = Network::default();
    let a = net.register(ProcessId::new(0, 0));
    let b = net.register(ProcessId::new(1, 0));
    let payload = Bytes::from_static(&[0u8; 128]);

    c.bench_function("eager_send_recv_128B", |bch| {
        bch.iter(|| {
            a.send(b.id(), 1, payload.clone()).unwrap();
            std::hint::black_box(b.recv(std::time::Duration::from_secs(1)).unwrap());
        })
    });
}

fn bench_one_sided(c: &mut Criterion) {
    let net = Network::default();
    let a = net.register(ProcessId::new(0, 0));
    let b = net.register(ProcessId::new(1, 0));

    let mut group = c.benchmark_group("one_sided");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        b.post_md(
            size as u64,
            MemDesc::zeroed(
                size,
                MdOptions { deliver_events: false, ..MdOptions::read_write_events() },
            ),
        )
        .unwrap();
        let data = vec![7u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("put_{}KiB", size / 1024), |bch| {
            bch.iter(|| a.put(b.id(), size as u64, 0, &data).unwrap())
        });
        group.bench_function(format!("get_{}KiB", size / 1024), |bch| {
            bch.iter(|| std::hint::black_box(a.get(b.id(), size as u64, 0, size).unwrap()))
        });
    }
    group.finish();
}

struct Echo;
impl Service for Echo {
    fn handle(&mut self, _ep: &Endpoint, req: &Request) -> ReplyBody {
        match req.body {
            RequestBody::Ping => ReplyBody::Pong,
            _ => ReplyBody::Pong,
        }
    }
}

fn bench_rpc(c: &mut Criterion) {
    let net = Network::default();
    let handle = spawn_service(&net, ProcessId::new(10, 0), Echo);
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);

    c.bench_function("rpc_ping_roundtrip", |bch| {
        bch.iter(|| std::hint::black_box(client.call(handle.id(), RequestBody::Ping).unwrap()))
    });
    handle.shutdown();
}

criterion_group!(benches, bench_eager, bench_one_sided, bench_rpc);
criterion_main!(benches);
