//! End-to-end checkpoint benchmarks on the functional plane: the full
//! Figure 8 flow (LWFS) against the file-per-process baseline, at small
//! scale. These are the real threaded services, so the numbers include
//! every protocol message and journal operation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use lwfs_checkpoint::{LwfsCheckpointer, PfsCheckpointer, PfsStyle};
use lwfs_core::{ClusterConfig, LwfsCluster};
use lwfs_pfs::{PfsCluster, PfsConfig};
use lwfs_portals::Group;
use lwfs_proto::{OpMask, ProcessId};

const STATE: usize = 256 * 1024;

fn bench_lwfs_checkpoint(c: &mut Criterion) {
    let cluster = LwfsCluster::boot(ClusterConfig { storage_servers: 2, ..Default::default() });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::CHECKPOINT | OpMask::READ).unwrap();
    let group = Group::new(vec![ProcessId::new(0, 0)]);
    let ck = LwfsCheckpointer::new(&client, group, 0, caps, "/bench/ck");
    let state = vec![7u8; STATE];

    let mut epoch = 0u64;
    c.bench_function("lwfs_checkpoint_1rank_256KiB", |b| {
        b.iter(|| {
            epoch += 1;
            std::hint::black_box(ck.checkpoint(epoch, &state).unwrap())
        })
    });

    c.bench_function("lwfs_restore_1rank_256KiB", |b| {
        b.iter(|| std::hint::black_box(ck.restore(epoch).unwrap()))
    });
}

fn bench_pfs_checkpoint(c: &mut Criterion) {
    let cluster = Arc::new(PfsCluster::boot(PfsConfig {
        lwfs: ClusterConfig { storage_servers: 2, ..Default::default() },
        // Keep the modeled MDS delay small so the benchmark isolates the
        // protocol cost rather than sleeping.
        mds_create_service: Duration::from_micros(10),
        mds_open_service: Duration::from_micros(5),
    }));
    let client = cluster.client(0, 0);
    let group = Group::new(vec![ProcessId::new(0, 0)]);
    let ck =
        PfsCheckpointer::new(&client, group, 0, PfsStyle::FilePerProcess, "/bench/pfs", 2, 1 << 20);
    let state = vec![7u8; STATE];

    let mut epoch = 0u64;
    c.bench_function("pfs_fpp_checkpoint_1rank_256KiB", |b| {
        b.iter(|| {
            epoch += 1;
            std::hint::black_box(ck.checkpoint(epoch, &state).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(5));
    targets = bench_lwfs_checkpoint, bench_pfs_checkpoint
}
criterion_main!(benches);
