//! Microbenchmarks of the storage service data path: object create,
//! server-directed write and read at several sizes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lwfs_auth::ManualClock;
use lwfs_portals::{MdOptions, MemDesc, Network, RpcClient, BULK_SPACE};
use lwfs_proto::{
    Capability, CapabilityBody, ContainerId, Lifetime, MdHandle, OpMask, PrincipalId, ProcessId,
    ReplyBody, RequestBody, Signature,
};
use lwfs_storage::{StorageConfig, StorageServer};

fn cap() -> Capability {
    Capability {
        body: CapabilityBody {
            container: ContainerId(1),
            ops: OpMask::ALL,
            principal: PrincipalId(1),
            issuer_epoch: 1,
            lifetime: Lifetime::UNBOUNDED,
            serial: 1,
        },
        sig: Signature([1; 16]),
    }
}

fn bench_storage(c: &mut Criterion) {
    let net = Network::default();
    let clock = Arc::new(ManualClock::new());
    let (handle, _server) =
        StorageServer::spawn(&net, ProcessId::new(50, 0), StorageConfig::default(), None, clock);
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let srv = handle.id();

    c.bench_function("storage_create_obj", |b| {
        b.iter(|| {
            let r = client
                .call_retrying(srv, RequestBody::CreateObj { txn: None, cap: cap(), obj: None })
                .unwrap();
            std::hint::black_box(r)
        })
    });

    // One target object reused for write/read benchmarks.
    let obj = match client
        .call_retrying(srv, RequestBody::CreateObj { txn: None, cap: cap(), obj: None })
        .unwrap()
    {
        ReplyBody::ObjCreated(o) => o,
        other => panic!("{other:?}"),
    };

    let mut group = c.benchmark_group("server_directed");
    for size in [4 * 1024usize, 256 * 1024, 1024 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        let data = vec![0xA5u8; size];
        group.bench_function(format!("write_{}KiB", size / 1024), |b| {
            b.iter(|| {
                let mb = ep.match_bits().alloc(BULK_SPACE);
                ep.post_md(mb, MemDesc::from_vec(data.clone(), MdOptions::for_remote_get()))
                    .unwrap();
                let r = client
                    .call_retrying(
                        srv,
                        RequestBody::Write {
                            txn: None,
                            cap: cap(),
                            obj,
                            offset: 0,
                            len: size as u64,
                            md: MdHandle { match_bits: mb },
                        },
                    )
                    .unwrap();
                ep.unlink_md(mb);
                std::hint::black_box(r)
            })
        });
        group.bench_function(format!("read_{}KiB", size / 1024), |b| {
            b.iter(|| {
                let mb = ep.match_bits().alloc(BULK_SPACE);
                ep.post_md(mb, MemDesc::zeroed(size, MdOptions::for_remote_put())).unwrap();
                let r = client
                    .call_retrying(
                        srv,
                        RequestBody::Read {
                            cap: cap(),
                            obj,
                            offset: 0,
                            len: size as u64,
                            md: MdHandle { match_bits: mb },
                        },
                    )
                    .unwrap();
                ep.unlink_md(mb);
                std::hint::black_box(r)
            })
        });
    }
    group.finish();
    handle.shutdown();
}

fn bench_getattr(c: &mut Criterion) {
    let net = Network::default();
    let clock = Arc::new(ManualClock::new());
    let (handle, _server) =
        StorageServer::spawn(&net, ProcessId::new(50, 0), StorageConfig::default(), None, clock);
    let ep = net.register(ProcessId::new(0, 0));
    let client = RpcClient::new(&ep);
    let obj = match client
        .call_retrying(handle.id(), RequestBody::CreateObj { txn: None, cap: cap(), obj: None })
        .unwrap()
    {
        ReplyBody::ObjCreated(o) => o,
        other => panic!("{other:?}"),
    };
    c.bench_function("storage_getattr", |b| {
        b.iter(|| {
            std::hint::black_box(
                client.call_retrying(handle.id(), RequestBody::GetAttr { cap: cap(), obj }),
            )
        })
    });
    handle.shutdown();
}

criterion_group!(benches, bench_storage, bench_getattr);
criterion_main!(benches);
