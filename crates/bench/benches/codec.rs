//! Microbenchmarks of the wire codec and the MAC behind credentials and
//! capabilities — the per-message software costs of the control plane.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lwfs_proto::security::siphash::MacKey;
use lwfs_proto::{
    Capability, CapabilityBody, ContainerId, Decode as _, Encode as _, Lifetime, MdHandle, OpMask,
    OpNum, PrincipalId, ProcessId, Request, RequestBody, Signature,
};

fn sample_cap() -> Capability {
    Capability {
        body: CapabilityBody {
            container: ContainerId(7),
            ops: OpMask::WRITE,
            principal: PrincipalId(1),
            issuer_epoch: 1,
            lifetime: Lifetime::UNBOUNDED,
            serial: 42,
        },
        sig: Signature([9; 16]),
    }
}

fn write_request() -> Request {
    Request::new(
        OpNum(77),
        ProcessId::new(3, 0),
        RequestBody::Write {
            txn: None,
            cap: sample_cap(),
            obj: lwfs_proto::ObjId(12),
            offset: 0,
            len: 512 << 20,
            md: MdHandle { match_bits: 0xFEED },
        },
    )
}

fn bench_codec(c: &mut Criterion) {
    let req = write_request();
    c.bench_function("encode_write_request", |b| b.iter(|| std::hint::black_box(req.to_bytes())));

    let wire = req.to_bytes();
    c.bench_function("decode_write_request", |b| {
        b.iter_batched(
            || wire.clone(),
            |w| std::hint::black_box(Request::from_bytes(w).unwrap()),
            BatchSize::SmallInput,
        )
    });

    let cap = sample_cap();
    c.bench_function("encode_capability", |b| b.iter(|| std::hint::black_box(cap.to_bytes())));
}

fn bench_mac(c: &mut Criterion) {
    let key = MacKey::new(0x1234, 0x5678);
    let body = sample_cap().body.to_bytes();
    c.bench_function("siphash_mac_capability_body", |b| {
        b.iter(|| std::hint::black_box(key.mac(&body)))
    });
    let tag = key.mac(&body);
    c.bench_function("siphash_verify_capability_body", |b| {
        b.iter(|| std::hint::black_box(key.verify(&body, &tag)))
    });
}

criterion_group!(benches, bench_codec, bench_mac);
criterion_main!(benches);
