//! Microbenchmarks of the security fast paths (§3.1): credential issue and
//! verify, capability issue and verify, and — the quantity behind the
//! paper's amortized-cost argument — capability-cache **hit versus miss**.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lwfs_auth::{AuthConfig, AuthService, ManualClock, MockKerberos};
use lwfs_authz::{AuthzConfig, AuthzService, CapCache, CredVerifier};
use lwfs_proto::{OpMask, PrincipalId, ProcessId};

fn stack() -> (Arc<AuthService>, AuthzService, lwfs_proto::Credential) {
    let kdc = Arc::new(MockKerberos::new("BENCH", 1));
    kdc.add_user("alice", "pw", PrincipalId(1));
    let clock = Arc::new(ManualClock::new());
    let auth = Arc::new(AuthService::new(
        AuthConfig::default(),
        kdc.clone() as Arc<dyn lwfs_auth::AuthMechanism>,
        clock.clone(),
    ));
    let cred = auth.get_cred(&kdc.kinit("alice", "pw").unwrap()).unwrap();
    let authz = AuthzService::new(
        AuthzConfig::default(),
        Arc::new(Arc::clone(&auth)) as Arc<dyn CredVerifier>,
        clock,
    );
    (auth, authz, cred)
}

fn bench_auth(c: &mut Criterion) {
    let kdc = Arc::new(MockKerberos::new("BENCH", 1));
    kdc.add_user("alice", "pw", PrincipalId(1));
    let ticket = kdc.kinit("alice", "pw").unwrap();
    let (auth, _authz, cred) = stack();

    c.bench_function("auth_get_cred", |b| {
        let kdc2 = Arc::new(MockKerberos::new("BENCH", 1));
        kdc2.add_user("alice", "pw", PrincipalId(1));
        let svc = AuthService::new(
            AuthConfig::default(),
            kdc2 as Arc<dyn lwfs_auth::AuthMechanism>,
            Arc::new(ManualClock::new()),
        );
        b.iter(|| std::hint::black_box(svc.get_cred(&ticket).unwrap()))
    });

    c.bench_function("auth_verify_cred", |b| {
        b.iter(|| std::hint::black_box(auth.verify(&cred).unwrap()))
    });
}

fn bench_authz(c: &mut Criterion) {
    let (_auth, authz, cred) = stack();
    let cid = authz.create_container(&cred).unwrap();

    c.bench_function("authz_get_caps_single_op", |b| {
        b.iter(|| std::hint::black_box(authz.get_caps(&cred, cid, OpMask::WRITE).unwrap()))
    });

    let caps = authz.get_caps(&cred, cid, OpMask::WRITE).unwrap();
    let site = ProcessId::new(50, 0);
    c.bench_function("authz_verify_caps", |b| {
        b.iter(|| std::hint::black_box(authz.verify_caps(&caps, site).unwrap()))
    });
}

fn bench_cap_cache(c: &mut Criterion) {
    let (_auth, authz, cred) = stack();
    let cid = authz.create_container(&cred).unwrap();
    let cap = authz.get_caps(&cred, cid, OpMask::WRITE).unwrap()[0];

    // Hit path: the per-I/O authorization cost at a storage server once
    // the verdict is cached — this must be nanoseconds for distributed
    // enforcement to be free.
    let cache = CapCache::new();
    cache.insert(&cap);
    c.bench_function("cap_cache_hit", |b| b.iter(|| std::hint::black_box(cache.check(&cap, 0))));

    // Miss path *excluding* the network round trip (lookup + stats only).
    let cold = CapCache::new();
    c.bench_function("cap_cache_miss_lookup", |b| {
        b.iter(|| std::hint::black_box(cold.check(&cap, 0)))
    });
}

criterion_group!(benches, bench_auth, bench_authz, bench_cap_cache);
criterion_main!(benches);
