//! The `--metrics-out` / `--trace-out` probe shared by the figure and
//! ablation binaries.
//!
//! The model-driven binaries (figure9, figure10, ablation) predict
//! performance analytically — they never boot the functional plane, so
//! they have no live metric registry of their own. When asked for
//! metrics or traces, they run this probe instead: boot a small
//! in-process LWFS cluster, drive a representative mix through every
//! instrumented subsystem (server-directed writes and reads, a committed
//! and an aborted two-phase commit, naming ops, capability verification,
//! a ship-deadline eviction, a primary failover), and dump the fabric
//! registry — counters, gauges, latency histograms, per-request stage
//! spans, and the control-plane event journal — as JSON next to the CSV
//! results. With `--trace-out` the probe additionally assembles the
//! span log into distributed traces and writes Chrome `trace_event`
//! JSON loadable in Perfetto / `about:tracing`.
//!
//! The probe is also the acceptance harness for the tracing pipeline:
//! it asserts that one replicated write produced spans from the client,
//! the primary (WAL append/fsync, one ship per backup), and the backup
//! (apply) under a single propagated `trace_id`, and that the induced
//! eviction was journaled *before* the directory republished the map.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use lwfs_core::{ClusterConfig, LwfsCluster};
use lwfs_obs::{Snapshot, TraceCollector, TOTAL_STAGE};
use lwfs_portals::FaultPlan;
use lwfs_proto::OpMask;
use lwfs_storage::StorageConfig;
use lwfs_wal::WalConfig;

/// Parse `--metrics-out <path>` (or `--metrics-out=<path>`) from argv.
pub fn metrics_out_arg() -> Option<PathBuf> {
    path_arg("--metrics-out")
}

/// Parse `--trace-out <path>` (or `--trace-out=<path>`) from argv.
pub fn trace_out_arg() -> Option<PathBuf> {
    path_arg("--trace-out")
}

pub(crate) fn path_arg(flag: &str) -> Option<PathBuf> {
    let prefixed = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix(&prefixed) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// The JSON `meta` object stamped onto every bench output: wall-clock
/// run timestamp, wire protocol version, and whatever census pairs the
/// caller adds (storage-server count, endpoint count, model scale) —
/// enough to tell two archived artifacts apart without external context.
pub fn bench_meta(census: &[(&str, u64)]) -> String {
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut meta =
        format!("{{\"unix_ts\": {unix_ts}, \"protocol_version\": {}", lwfs_proto::PROTOCOL_VERSION);
    for (k, v) in census {
        meta.push_str(&format!(", \"{k}\": {v}"));
    }
    meta.push('}');
    meta
}

/// Parse `--check-regression` from argv: compare this run's headline
/// numbers against the last recorded trajectory entry (warn-only).
pub fn check_regression_arg() -> bool {
    std::env::args().any(|a| a == "--check-regression")
}

/// Path of the append-only headline journal.
fn trajectory_path() -> PathBuf {
    Path::new("results").join("trajectory.jsonl")
}

/// Append one line to `results/trajectory.jsonl` recording this run's
/// headline numbers for `bench`:
/// `{"meta": {…}, "bench": "…", "headline": {"key": value, …}}`.
/// The file is an append-only journal across commits — the performance
/// trajectory of the repo itself — so entries are never rewritten.
pub fn append_trajectory(bench: &str, headline: &[(&str, f64)]) -> std::io::Result<PathBuf> {
    use std::io::Write as _;
    let path = trajectory_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut line =
        format!("{{\"meta\": {}, \"bench\": \"{bench}\", \"headline\": {{", bench_meta(&[]));
    for (i, (k, v)) in headline.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        line.push_str(&format!("{sep}\"{k}\": {v:.3}"));
    }
    line.push_str("}}\n");
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?
        .write_all(line.as_bytes())?;
    Ok(path)
}

/// Warn-only regression check: compare `headline` against the **last**
/// trajectory entry for `bench` and print a `REGRESSION?` line for every
/// key that dropped by more than 20%. Never fails the run — wall-clock
/// benches on shared CI hosts are too noisy for a hard gate, but the
/// warning makes a real cliff visible in the run log. Call this *before*
/// [`append_trajectory`], or the run compares against itself.
pub fn check_regression(bench: &str, headline: &[(&str, f64)]) {
    let Ok(body) = std::fs::read_to_string(trajectory_path()) else {
        println!("  (no trajectory yet at {}; nothing to compare)", trajectory_path().display());
        return;
    };
    let tag = format!("\"bench\": \"{bench}\"");
    let Some(prev) = body.lines().rev().find(|l| l.contains(&tag)) else {
        println!("  (no prior {bench} entry in the trajectory; nothing to compare)");
        return;
    };
    for (k, now) in headline {
        let needle = format!("\"{k}\": ");
        let Some(pos) = prev.rfind(&needle) else { continue };
        let num: String = prev[pos + needle.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-'))
            .collect();
        let Ok(before) = num.parse::<f64>() else { continue };
        if *now < 0.8 * before {
            println!(
                "  REGRESSION? {bench}.{k}: {now:.3} vs {before:.3} last recorded \
                 ({:.0}% drop)",
                100.0 * (1.0 - now / before)
            );
        } else {
            println!("  trajectory ok: {bench}.{k}: {now:.3} (last {before:.3})");
        }
    }
}

/// Boot a two-group replicated cluster, exercise every instrumented
/// subsystem, and return the registry snapshot — written to `metrics` as
/// registry JSON and to `trace` as Chrome `trace_event` JSON when given.
///
/// # Panics
/// Panics when any driven operation fails or when the tracing pipeline's
/// acceptance invariants do not hold: the probe runs entirely on the
/// in-process functional plane, so a failure is a bug, not an
/// environmental condition.
pub fn run_metrics_probe(
    metrics: Option<&Path>,
    trace: Option<&Path>,
) -> std::io::Result<Snapshot> {
    const SERVERS: usize = 2;
    // Unique WAL root per probe run: tests run probes concurrently in one
    // process, and two servers replaying each other's logs would corrupt
    // both runs.
    static PROBE_SEQ: AtomicUsize = AtomicUsize::new(0);
    let wal_root = std::env::temp_dir().join(format!(
        "lwfs-probe-wal-{}-{}",
        std::process::id(),
        PROBE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&wal_root);

    // Two replication groups of two members each: the probe exercises the
    // log-shipping path on every mutation, so the snapshot carries the
    // replication gauges (`storage.repl_lag`, `storage.failovers`) too.
    // The WAL makes the durability stages (`wal.append`, `wal.fsync`)
    // visible in every mutation's trace; the short ship deadline lets the
    // probe evict a partitioned backup quickly. It must still leave
    // headroom over scheduler noise: the deadline applies to *every*
    // ship, and with the whole test suite running in parallel a >100ms
    // stall on a healthy backup's ship path would evict it spuriously —
    // leaving no survivor to promote when the crash below kills the
    // primary, and the flush reads against a lost group never succeed.
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: SERVERS,
        replication: 2,
        ship_deadline: Some(std::time::Duration::from_millis(1000)),
        storage: StorageConfig { wal: Some(WalConfig::new(&wal_root)), ..Default::default() },
        transport: crate::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").expect("probe user registered at boot");
    client.get_cred(ticket).expect("get_cred");
    let cid = client.create_container().expect("create_container");
    let caps = client.get_caps(cid, OpMask::ALL).expect("get_caps");

    // Server-directed writes and reads on every server. 640 KiB spans
    // multiple default-size chunks, so the write trace shows repeated
    // pull/store_write span pairs crossing the pinned pool.
    let payload = vec![0xA5u8; 640 * 1024];
    for server in 0..SERVERS {
        let obj = client.create_obj(server, &caps, None, None).expect("create_obj");
        let n = client.write(server, &caps, None, obj, 0, &payload).expect("write");
        assert_eq!(n, payload.len() as u64);
        let back = client.read(server, &caps, obj, 0, payload.len()).expect("read");
        assert_eq!(back.len(), payload.len());
    }

    // A committed two-phase commit spanning both storage servers and the
    // naming service (the Figure 8 checkpoint pattern).
    let txn = client.txn_begin().expect("txn_begin");
    let map = cluster.group_map().expect("replicated probe cluster has a group map");
    let mut participants = Vec::new();
    for server in 0..SERVERS {
        let obj = client.create_obj(server, &caps, Some(txn), None).expect("txn create_obj");
        if server == 0 {
            client.name_create(Some(txn), "/probe/ckpt", cid, obj).expect("name_create");
        }
        // 2PC names processes, not groups: the participants are the
        // current group primaries.
        participants.push(map.groups[server].primary().expect("group has a primary"));
    }
    participants.push(cluster.addrs().naming);
    let outcome = client.txn_commit(txn, participants.clone()).expect("txn_commit");
    assert!(outcome.is_committed(), "probe txn must commit: {outcome:?}");

    // An aborted transaction, so abort metrics are populated too.
    let txn = client.txn_begin().expect("txn_begin 2");
    let _ = client.create_obj(0, &caps, Some(txn), None).expect("txn create_obj 2");
    client.txn_abort(txn, vec![cluster.addrs().storage[0]]).expect("txn_abort");

    // Naming reads.
    client.name_lookup("/probe/ckpt").expect("name_lookup");
    client.name_list("/probe").expect("name_list");

    // Partition group 1's backup; the next write to the group misses its
    // ship deadline there, evicts the member, and reports the drop to the
    // directory — the journal must show the eviction *before* the
    // republish that makes it visible.
    let stale = cluster.addrs().storage[3];
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(stale.nid);
    cluster.network().set_faults(plan);
    let obj = client.create_obj(1, &caps, None, None).expect("create_obj for eviction");
    client.write(1, &caps, None, obj, 0, b"ships past the dead backup").expect("eviction write");
    cluster.network().heal();

    // Kill group 0's primary so the failover path (promotion, client
    // retry, `storage.failovers`, the `failover.promote` journal entry)
    // is represented in the snapshot; the flush reads below run against
    // the promoted backup.
    cluster.crash_storage(0);

    // Flush: a storage server closes a request's trace *after* sending
    // its reply, so drive one more op through each server — its reply
    // proves every earlier trace on that server is finished. (The flush
    // ops themselves may still be open in the sampled span log.) The
    // group-0 flush races the promotion triggered by the crash above:
    // under a loaded scheduler (the whole test suite in parallel) the
    // client's failover deadline can expire before the backup finishes
    // promoting, so tolerate `RetriesExhausted` for a bounded period
    // instead of treating the first exhausted deadline as fatal.
    for server in 0..SERVERS {
        let flush_deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match client.list_objs(server, &caps) {
                Ok(_) => break,
                Err(lwfs_proto::Error::RetriesExhausted)
                    if std::time::Instant::now() < flush_deadline =>
                {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => panic!("flush list_objs on group {server}: {e}"),
            }
        }
    }
    let snap = cluster.network().obs().snapshot();
    assert_replicated_write_traced(&snap);
    assert_eviction_journaled(&snap);

    if let Some(path) = metrics {
        let meta = bench_meta(&[
            ("storage_servers", (SERVERS * 2) as u64),
            ("endpoints", cluster.network().endpoint_count() as u64),
        ]);
        snap.write_json_with_meta(path, &meta)?;
    }
    if let Some(path) = trace {
        let mut collector = TraceCollector::new();
        collector.add_spans(snap.spans.iter().cloned());
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, collector.to_chrome_json())?;
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&wal_root);
    Ok(snap)
}

/// Acceptance invariant: at least one replicated write was traced end to
/// end — the client's span, the primary's write (with its WAL append and
/// fsync and one ship per backup), and the backup's apply all share one
/// wire-propagated `trace_id` across three distinct nodes.
fn assert_replicated_write_traced(snap: &Snapshot) {
    let mut collector = TraceCollector::new();
    collector.add_spans(snap.spans.iter().cloned());
    let traced = collector.traces().into_iter().any(|t| {
        let has = |op: &str, stage: &str| t.spans.iter().any(|s| s.op == op && s.stage == stage);
        has("client.mutate", TOTAL_STAGE)
            && has("storage.write", TOTAL_STAGE)
            && has("wal", "append")
            && has("wal", "fsync")
            && has("repl", "ship")
            && has("storage.repl_ship", "apply")
            && t.nodes().len() >= 3
    });
    assert!(
        traced,
        "no trace carries a replicated write end to end \
         (client + primary wal/ship + backup apply on >= 3 nodes)"
    );
}

/// Acceptance invariant: the induced ship-deadline eviction reached the
/// journal, and did so *before* the directory republished the shrunken
/// map — the order a post-mortem relies on.
fn assert_eviction_journaled(snap: &Snapshot) {
    let evict = snap.events_of_kind("repl.evict_backup");
    let republish = snap.events_of_kind("directory.republish");
    assert!(!evict.is_empty(), "ship-deadline eviction missing from the event journal");
    assert!(!republish.is_empty(), "directory republish missing from the event journal");
    assert!(
        evict[0].seq < republish[0].seq,
        "journal order inverted: republish (seq {}) before eviction (seq {})",
        republish[0].seq,
        evict[0].seq
    );
    assert!(
        !snap.events_of_kind("failover.promote").is_empty(),
        "primary failover missing from the event journal"
    );
}

/// When `--metrics-out`, `--trace-out`, or `--telemetry-out` was passed,
/// run the corresponding probe and report the written files. Called by
/// the figure/ablation binaries after their model runs.
pub fn maybe_dump_metrics() {
    let metrics = metrics_out_arg();
    let trace = trace_out_arg();
    if metrics.is_some() || trace.is_some() {
        match run_metrics_probe(metrics.as_deref(), trace.as_deref()) {
            Ok(_) => {
                if let Some(path) = &metrics {
                    println!("metrics written to {}", path.display());
                }
                if let Some(path) = &trace {
                    println!("trace written to {}", path.display());
                }
            }
            Err(e) => eprintln!("probe output failed: {e}"),
        }
    }
    if let Some(path) = crate::telemetry::telemetry_out_arg() {
        // When both probes run, the telemetry storm's scraped slow traces
        // overwrite the metrics probe's trace at `--trace-out` — the storm
        // trace is the one `lwfs-inspect` attributes offline.
        match crate::telemetry::run_telemetry_probe(Some(&path), trace.as_deref()) {
            Ok(report) => {
                println!(
                    "telemetry written to {} ({} windows) and {}",
                    path.display(),
                    report.windows,
                    path.with_extension("prom").display()
                );
                if let Some(trace) = &trace {
                    println!("scraped slow traces written to {}", trace.display());
                }
            }
            Err(e) => eprintln!("telemetry probe failed: {e}"),
        }
    }
}
