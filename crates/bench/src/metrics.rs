//! The `--metrics-out` probe shared by the figure/ablation binaries.
//!
//! The model-driven binaries (figure9, figure10, ablation) predict
//! performance analytically — they never boot the functional plane, so
//! they have no live metric registry of their own. When asked for
//! metrics, they run this probe instead: boot a small in-process LWFS
//! cluster, drive a representative mix through every instrumented
//! subsystem (server-directed writes and reads, a committed and an
//! aborted two-phase commit, naming ops, capability verification), and
//! dump the fabric registry — counters, gauges, latency histograms, and
//! per-request stage spans — as JSON next to the CSV results.

use std::path::{Path, PathBuf};

use lwfs_core::{ClusterConfig, LwfsCluster};
use lwfs_obs::Snapshot;
use lwfs_proto::OpMask;

/// Parse `--metrics-out <path>` (or `--metrics-out=<path>`) from argv.
pub fn metrics_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--metrics-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Boot a two-server cluster, exercise every instrumented subsystem, and
/// return the registry snapshot — written to `path` as JSON when given.
///
/// # Panics
/// Panics when any driven operation fails: the probe runs entirely on the
/// in-process functional plane, so a failure is a bug, not an
/// environmental condition.
pub fn run_metrics_probe(path: Option<&Path>) -> std::io::Result<Snapshot> {
    const SERVERS: usize = 2;
    // Two replication groups of two members each: the probe exercises the
    // log-shipping path on every mutation, so the snapshot carries the
    // replication gauges (`storage.repl_lag`, `storage.failovers`) too.
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: SERVERS,
        replication: 2,
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").expect("probe user registered at boot");
    client.get_cred(ticket).expect("get_cred");
    let cid = client.create_container().expect("create_container");
    let caps = client.get_caps(cid, OpMask::ALL).expect("get_caps");

    // Server-directed writes and reads on every server. 640 KiB spans
    // multiple default-size chunks, so the write trace shows repeated
    // pull/store_write span pairs crossing the pinned pool.
    let payload = vec![0xA5u8; 640 * 1024];
    for server in 0..SERVERS {
        let obj = client.create_obj(server, &caps, None, None).expect("create_obj");
        let n = client.write(server, &caps, None, obj, 0, &payload).expect("write");
        assert_eq!(n, payload.len() as u64);
        let back = client.read(server, &caps, obj, 0, payload.len()).expect("read");
        assert_eq!(back.len(), payload.len());
    }

    // A committed two-phase commit spanning both storage servers and the
    // naming service (the Figure 8 checkpoint pattern).
    let txn = client.txn_begin().expect("txn_begin");
    let map = cluster.group_map().expect("replicated probe cluster has a group map");
    let mut participants = Vec::new();
    for server in 0..SERVERS {
        let obj = client.create_obj(server, &caps, Some(txn), None).expect("txn create_obj");
        if server == 0 {
            client.name_create(Some(txn), "/probe/ckpt", cid, obj).expect("name_create");
        }
        // 2PC names processes, not groups: the participants are the
        // current group primaries.
        participants.push(map.groups[server].primary().expect("group has a primary"));
    }
    participants.push(cluster.addrs().naming);
    let outcome = client.txn_commit(txn, participants.clone()).expect("txn_commit");
    assert!(outcome.is_committed(), "probe txn must commit: {outcome:?}");

    // An aborted transaction, so abort metrics are populated too.
    let txn = client.txn_begin().expect("txn_begin 2");
    let _ = client.create_obj(0, &caps, Some(txn), None).expect("txn create_obj 2");
    client.txn_abort(txn, vec![cluster.addrs().storage[0]]).expect("txn_abort");

    // Naming reads.
    client.name_lookup("/probe/ckpt").expect("name_lookup");
    client.name_list("/probe").expect("name_list");

    // Kill group 0's primary so the failover path (promotion, client
    // retry, `storage.failovers`) is represented in the snapshot; the
    // flush reads below run against the promoted backup.
    cluster.crash_storage(0);

    // Flush: a storage server closes a request's trace *after* sending
    // its reply, so drive one more op through each server — its reply
    // proves every earlier trace on that server is finished. (The flush
    // ops themselves may still be open in the sampled span log.)
    for server in 0..SERVERS {
        client.list_objs(server, &caps).expect("flush list_objs");
    }
    let snap = cluster.network().obs().snapshot();
    if let Some(path) = path {
        snap.write_json(path)?;
    }
    Ok(snap)
}

/// When `--metrics-out` was passed, run the probe and report the written
/// file. Called by the figure/ablation binaries after their model runs.
pub fn maybe_dump_metrics() {
    if let Some(path) = metrics_out_arg() {
        match run_metrics_probe(Some(&path)) {
            Ok(_) => println!("metrics written to {}", path.display()),
            Err(e) => eprintln!("metrics write failed: {e}"),
        }
    }
}
