//! Shared helpers for the evaluation harness: aligned table printing,
//! CSV emission, and paper-shape checks.
//!
//! Every figure/table binary follows the same protocol:
//!
//! 1. run the model (or the functional plane) over the experiment grid,
//! 2. print the series in the same rows/columns the paper reports,
//! 3. write a CSV under `results/` (and, with `--metrics-out <path>` /
//!    `--trace-out <path>`, a metric-registry JSON and a Chrome
//!    `trace_event` JSON dumped by the functional probe in [`metrics`]),
//! 4. print explicit **shape checks** comparing the measured curve
//!    features (plateaus, ceilings, ratios, crossovers) against what the
//!    paper's figures show, each marked `ok` / `MISMATCH`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

mod metrics;
mod telemetry;

pub use metrics::{
    append_trajectory, bench_meta, check_regression, check_regression_arg, maybe_dump_metrics,
    metrics_out_arg, run_metrics_probe, trace_out_arg,
};
pub use telemetry::{
    run_telemetry_probe, telemetry_out_arg, TelemetryReport, LAG_RULE, WRITE_P99_RULE,
};

/// Parse `--transport <kind>` (or `--transport=<kind>`) from argv: which
/// fabric the functional-plane runs and probes boot over. Defaults to the
/// in-process transport; `tcp` routes every cross-node message through
/// loopback sockets (and, where a binary supports it, real OS processes).
///
/// # Panics
/// Panics on an unknown transport name — a silently-ignored flag would
/// report in-process numbers as socket numbers.
pub fn transport_arg() -> lwfs_core::TransportKind {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--transport")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| args.iter().find_map(|a| a.strip_prefix("--transport=").map(str::to_string)));
    match raw {
        Some(name) => lwfs_core::TransportKind::parse(&name)
            .unwrap_or_else(|| panic!("unknown --transport {name:?} (try: inprocess, tcp)")),
        None => lwfs_core::TransportKind::default(),
    }
}

/// A simple aligned-column table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn from_header(header: Vec<String>) -> Self {
        Self { header, rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// CSV writer for experiment output.
pub struct CsvOut {
    path: PathBuf,
    lines: Vec<String>,
}

impl CsvOut {
    /// Create `results/<name>.csv` (relative to the workspace root when
    /// run via `cargo run`, else the current directory).
    pub fn new(name: &str, header: &[&str]) -> Self {
        let dir = Path::new("results");
        let path = dir.join(format!("{name}.csv"));
        Self { path, lines: vec![header.join(",")] }
    }

    pub fn row(&mut self, cells: &[String]) {
        self.lines.push(cells.join(","));
    }

    /// Write the file; returns the path written.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&self.path, self.lines.join("\n") + "\n")?;
        Ok(self.path)
    }
}

/// A paper-shape check with pass/fail display.
pub struct ShapeCheck {
    checks: Vec<(String, bool)>,
}

impl ShapeCheck {
    pub fn new() -> Self {
        Self { checks: Vec::new() }
    }

    /// Record a check: `description` should state both the paper's claim
    /// and the measured value.
    pub fn check(&mut self, description: impl Into<String>, pass: bool) {
        self.checks.push((description.into(), pass));
    }

    /// Check that `value` lies within `[lo, hi]`.
    pub fn check_range(&mut self, what: &str, value: f64, lo: f64, hi: f64) {
        self.check(
            format!("{what}: measured {value:.2} (expected {lo:.2}..{hi:.2})"),
            (lo..=hi).contains(&value),
        );
    }

    /// Print all checks; returns `true` when every check passed.
    pub fn report(&self) -> bool {
        println!("\nShape checks vs paper:");
        let mut all = true;
        for (desc, pass) in &self.checks {
            println!("  [{}] {desc}", if *pass { "ok" } else { "MISMATCH" });
            all &= *pass;
        }
        all
    }

    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|(_, p)| *p)
    }
}

impl Default for ShapeCheck {
    fn default() -> Self {
        Self::new()
    }
}

/// Format a mean ± stddev cell.
pub fn pm(mean: f64, sd: f64) -> String {
    format!("{mean:.0}±{sd:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["clients", "MB/s"]);
        t.row(&["1".into(), "95".into()]);
        t.row(&["64".into(), "1520".into()]);
        let s = t.render();
        assert!(s.contains("clients"));
        assert!(s.contains("1520"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn shape_check_reports() {
        let mut sc = ShapeCheck::new();
        sc.check_range("x", 5.0, 4.0, 6.0);
        sc.check_range("y", 10.0, 0.0, 5.0);
        assert!(!sc.all_passed());
        let mut sc2 = ShapeCheck::new();
        sc2.check_range("x", 5.0, 4.0, 6.0);
        assert!(sc2.all_passed());
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(1520.4, 12.6), "1520±13");
    }

    #[test]
    fn csv_writes_file() {
        let mut csv = CsvOut::new("unit-test-tmp", &["a", "b"]);
        csv.row(&["1".into(), "2".into()]);
        let path = csv.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }
}
