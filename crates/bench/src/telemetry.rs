//! The `--telemetry-out` probe: a live run of the whole telemetry plane.
//!
//! Boots a WAL-backed, R=2 replicated cluster, attaches a
//! [`ClusterMonitor`] polling every node over the wire (`GetTelemetry`),
//! and drives a write storm while a backup is partitioned away. The
//! probe is the acceptance harness for the monitoring pipeline: it
//! asserts that
//!
//! * the monitor's windowed JSONL series shows the replication-lag gauge
//!   nonzero while the primary retries ships at the dead backup,
//! * the declarative lag rule journaled its `alert.fire` **before** the
//!   `repl.evict_backup` event it predicts (the monitor saw the cluster
//!   degrading before the cluster acted on it),
//! * the write-p99 SLO rule fired too, and its journaled `alert.fire`
//!   carries a **blame** naming ship RTT as the dominant stage — the
//!   monitor's flight scrape attributed the stalled write's critical
//!   path to the retries against the partitioned backup, and
//! * the Prometheus exposition of the final scrape is well-formed.
//!
//! With an output path the JSONL time series lands there and the
//! Prometheus text beside it under the `.prom` extension; with a trace
//! path the scraped slow traces land as Chrome `trace_event` JSON, so
//! `lwfs-inspect` can reproduce the attribution offline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use lwfs_core::{ClusterConfig, HealthRule, LwfsCluster, MonitorConfig};
use lwfs_portals::FaultPlan;
use lwfs_proto::OpMask;
use lwfs_storage::StorageConfig;
use lwfs_wal::WalConfig;

/// Parse `--telemetry-out <path>` (or `--telemetry-out=<path>`) from argv.
pub fn telemetry_out_arg() -> Option<PathBuf> {
    crate::metrics::path_arg("--telemetry-out")
}

/// What [`run_telemetry_probe`] observed, for callers that assert more.
pub struct TelemetryReport {
    /// Completed aggregation windows.
    pub windows: u64,
    /// One line per window (the `--telemetry-out` payload).
    pub jsonl: Vec<String>,
    /// Prometheus text exposition of the final scrape.
    pub prometheus: String,
    /// Journal seq of the lag rule's `alert.fire`.
    pub lag_alert_seq: u64,
    /// Journal seq of the induced `repl.evict_backup`.
    pub evict_seq: u64,
    /// Journal seq of the write-p99 rule's blame-carrying `alert.fire`.
    pub p99_alert_seq: u64,
    /// Full detail of that alert (contains `blame=ship_rtt`).
    pub p99_alert_detail: String,
    /// Chrome trace JSON of the monitor's scraped slow traces.
    pub trace_json: String,
}

/// Name of the replication-lag rule the probe installs.
pub const LAG_RULE: &str = "repl_lag_sustained";

/// Name of the write-p99 SLO rule the probe installs.
pub const WRITE_P99_RULE: &str = "write_p99_slo";

/// Boot the replicated cluster, run the monitored write storm, and
/// return (and optionally write) the telemetry artifacts.
///
/// # Panics
/// Panics when the monitoring pipeline's acceptance invariants do not
/// hold — the probe runs entirely in-process, so a failure is a bug,
/// not an environmental condition.
pub fn run_telemetry_probe(
    out: Option<&Path>,
    trace_out: Option<&Path>,
) -> std::io::Result<TelemetryReport> {
    const SERVERS: usize = 2;
    static PROBE_SEQ: AtomicUsize = AtomicUsize::new(0);
    let wal_root = std::env::temp_dir().join(format!(
        "lwfs-telemetry-wal-{}-{}",
        std::process::id(),
        PROBE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&wal_root);

    // Two groups of two; the 100 ms ship deadline keeps the induced
    // eviction quick while still spanning many 10 ms monitor windows —
    // the window the lag rule must fire inside.
    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: SERVERS,
        replication: 2,
        ship_deadline: Some(Duration::from_millis(100)),
        storage: StorageConfig { wal: Some(WalConfig::new(&wal_root)), ..Default::default() },
        transport: crate::transport_arg(),
        ..Default::default()
    });
    // The p99 SLO sits above warm-up jitter (64 KiB writes with WAL
    // fsync) but far below the ~100 ms ship-retry stall; one window is
    // enough because the stall lands in a single 10 ms window. A
    // spurious warm-up fire self-heals: quiet windows have no histogram
    // delta, the condition clears, and the storm re-fires with blame.
    let monitor = cluster.spawn_monitor(MonitorConfig {
        interval: Duration::from_millis(10),
        window_limit: 512,
        stale_after: 3,
        rules: vec![
            HealthRule::gauge_above(LAG_RULE, "storage.repl_lag", 0, 2),
            HealthRule::p99_above(
                WRITE_P99_RULE,
                "storage.write.total_ns",
                Duration::from_millis(25).as_nanos() as u64,
                1,
            ),
        ],
        ..Default::default()
    });

    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").expect("probe user registered at boot");
    client.get_cred(ticket).expect("get_cred");
    let cid = client.create_container().expect("create_container");
    let caps = client.get_caps(cid, OpMask::ALL).expect("get_caps");

    // Warm-up traffic on both groups, and let the monitor complete a few
    // quiet windows first so the fired streak is unambiguous.
    let payload = vec![0x3Cu8; 64 * 1024];
    let mut objs = Vec::new();
    for server in 0..SERVERS {
        let obj = client.create_obj(server, &caps, None, None).expect("create_obj");
        client.write(server, &caps, None, obj, 0, &payload).expect("warm-up write");
        objs.push(obj);
    }
    wait_until(Duration::from_secs(10), || monitor.windows() >= 3);

    // Partition group 1's backup, then storm the cluster. The first
    // write to group 1 hangs in ship retries for the full deadline —
    // `storage.repl_lag` stays above zero the whole time, the 10 ms
    // windows see it repeatedly, the rule fires, and only then does the
    // primary give up and journal the eviction.
    let victim = cluster.addrs().storage[3];
    let mut plan = FaultPlan::default();
    plan.partitioned.insert(victim.nid);
    cluster.network().set_faults(plan);
    for round in 0..8u64 {
        for (server, &obj) in objs.iter().enumerate() {
            client
                .write(server, &caps, None, obj, round * payload.len() as u64, &payload)
                .expect("storm write");
        }
    }
    cluster.network().heal();

    // The storm is synchronous, so the eviction already happened; give
    // the monitor a couple more windows to scrape the journal tail.
    let after_storm = monitor.windows();
    wait_until(Duration::from_secs(10), || monitor.windows() >= after_storm + 2);

    let events = cluster.network().obs().events().all();
    let lag_alert = events
        .iter()
        .find(|e| e.kind == "alert.fire" && e.detail.contains(&format!("rule={LAG_RULE}")))
        .unwrap_or_else(|| panic!("lag rule never fired; journal: {events:?}"));
    let evict = events
        .iter()
        .find(|e| e.kind == "repl.evict_backup")
        .expect("partitioned backup was never evicted");
    // The storm's write-p99 breach must carry a blame naming ship RTT:
    // the flight scrape pinned the stalled write, and its critical path
    // is the retry window against the partitioned backup.
    let p99_alert = events
        .iter()
        .find(|e| {
            e.kind == "alert.fire"
                && e.detail.contains(&format!("rule={WRITE_P99_RULE}"))
                && e.detail.contains("blame=ship_rtt")
        })
        .unwrap_or_else(|| {
            panic!("write-p99 rule never fired with ship-RTT blame; journal: {events:?}")
        });
    let tail = monitor.tail_report().expect("flight scrape attributed the storm");
    let (dominant, share) = tail.dominant().expect("tail has a dominant stage");
    assert_eq!(
        dominant,
        lwfs_obs::BlameStage::ShipRtt,
        "tail dominated by {dominant} (share {share:.2}), expected ship RTT: {tail:?}"
    );
    let trace_json = monitor.trace_chrome_json();
    assert!(
        trace_json.contains("repl.ship"),
        "scraped trace export lost the ship spans: {trace_json}"
    );
    assert!(
        lag_alert.seq < evict.seq,
        "monitor alerted after the eviction it predicts: alert seq {} >= evict seq {}",
        lag_alert.seq,
        evict.seq
    );

    let jsonl = monitor.jsonl();
    assert!(
        jsonl.iter().any(|l| jsonl_gauge_positive(l, "storage_repl_lag")),
        "no window recorded nonzero storage.repl_lag; lines: {}",
        jsonl.len()
    );
    let prometheus = monitor.prometheus();
    assert!(prometheus.contains("# TYPE"), "empty Prometheus exposition");

    let report = TelemetryReport {
        windows: monitor.windows(),
        jsonl,
        prometheus,
        lag_alert_seq: lag_alert.seq,
        evict_seq: evict.seq,
        p99_alert_seq: p99_alert.seq,
        p99_alert_detail: p99_alert.detail.clone(),
        trace_json,
    };

    if let Some(path) = out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // First JSONL line is the run's meta stamp; every later line is
        // one aggregation window.
        let mut body = format!(
            "{{\"meta\": {}}}\n",
            crate::metrics::bench_meta(&[("storage_servers", (SERVERS * 2) as u64)])
        );
        body.push_str(&report.jsonl.join("\n"));
        body.push('\n');
        std::fs::write(path, body)?;
        let mut prom = format!(
            "# meta: {}\n",
            crate::metrics::bench_meta(&[("storage_servers", (SERVERS * 2) as u64)])
        );
        prom.push_str(&report.prometheus);
        std::fs::write(path.with_extension("prom"), prom)?;
    }
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, &report.trace_json)?;
    }

    monitor.shutdown();
    drop(cluster);
    let _ = std::fs::remove_dir_all(&wal_root);
    Ok(report)
}

/// Does this JSONL window line report gauge `key` above zero?
fn jsonl_gauge_positive(line: &str, key: &str) -> bool {
    let needle = format!("\"{key}\": ");
    let Some(pos) = line.find(&needle) else { return false };
    let rest = &line[pos + needle.len()..];
    let num: String = rest.chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    num.parse::<i64>().map(|v| v > 0).unwrap_or(false)
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}
