//! Regenerate the §4 closing extrapolation: checkpoint create/dump times
//! on "a theoretical petaflop system with 100,000 compute nodes and 2000
//! I/O nodes".
//!
//! ```text
//! cargo run --release -p lwfs-bench --bin petaflop
//! ```

use lwfs_bench::{CsvOut, ShapeCheck, Table};
use lwfs_models::petaflop::DEFAULT_BYTES_PER_NODE;
use lwfs_models::{petaflop_report, CkptImpl, Machine};

fn main() {
    let m = Machine::petaflop();
    println!(
        "Petaflop extrapolation: {} compute nodes, {} I/O nodes, {} GB/node\n",
        m.compute_nodes,
        m.io_nodes,
        DEFAULT_BYTES_PER_NODE / 1_000_000_000
    );

    let mut table =
        Table::new(&["implementation", "create (s)", "dump (s)", "total (s)", "create fraction"]);
    let mut csv = CsvOut::new(
        "petaflop",
        &["impl", "create_secs", "dump_secs", "total_secs", "create_fraction"],
    );
    let mut shapes = ShapeCheck::new();

    for impl_kind in CkptImpl::all() {
        let r = petaflop_report(impl_kind, DEFAULT_BYTES_PER_NODE);
        table.row(&[
            impl_kind.label().to_string(),
            format!("{:.1}", r.create_secs),
            format!("{:.1}", r.dump_secs),
            format!("{:.1}", r.total_secs()),
            format!("{:.1}%", 100.0 * r.create_fraction),
        ]);
        csv.row(&[
            impl_kind.label().to_string(),
            format!("{:.2}", r.create_secs),
            format!("{:.2}", r.dump_secs),
            format!("{:.2}", r.total_secs()),
            format!("{:.4}", r.create_fraction),
        ]);
    }
    table.print();

    let fpp = petaflop_report(CkptImpl::LustreFilePerProc, DEFAULT_BYTES_PER_NODE);
    let lwfs = petaflop_report(CkptImpl::LwfsObjPerProc, DEFAULT_BYTES_PER_NODE);
    shapes.check_range(
        "file creation takes multiple minutes (paper: 'multiple minutes')",
        fpp.create_secs / 60.0,
        2.0,
        5.0,
    );
    shapes.check_range(
        "creation is roughly 10% of the checkpoint (paper: ~10%)",
        100.0 * fpp.create_fraction,
        5.0,
        25.0,
    );
    shapes.check(
        format!(
            "LWFS create phase is negligible at scale ({:.2}s, <1% of total)",
            lwfs.create_secs
        ),
        lwfs.create_fraction < 0.01,
    );

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    std::process::exit(if ok { 0 } else { 1 });
}
