//! Cross-validation of the model against the **functional plane**: run the
//! three real (threaded) checkpoint implementations on the in-process
//! cluster at laptop scale and confirm the same qualitative ordering the
//! paper's figures show.
//!
//! Absolute numbers here are in-memory-transport numbers, not RAID
//! numbers; what must match is the *structure*: LWFS creates are
//! distributed and fast, file-per-process creates serialize through the
//! MDS, shared-file dumps pay for locking.
//!
//! ```text
//! cargo run --release -p lwfs-bench --bin functional
//! ```

use std::sync::Arc;
use std::time::Duration;

use lwfs_bench::{CsvOut, ShapeCheck, Table};
use lwfs_checkpoint::{CkptReport, LwfsCheckpointer, PfsCheckpointer, PfsStyle};
use lwfs_core::{ClusterConfig, LwfsCluster};
use lwfs_pfs::{PfsCluster, PfsConfig};
use lwfs_portals::Group;
use lwfs_proto::{Credential, Decode as _, Encode as _, OpMask, ProcessId};

const STATE_BYTES: usize = 4 * 1024 * 1024;
const SERVERS: usize = 4;

fn group(n: usize) -> Group {
    Group::new((0..n as u32).map(|i| ProcessId::new(i, 0)).collect())
}

fn run_lwfs(n: usize) -> CkptReport {
    let cluster = Arc::new(LwfsCluster::boot(ClusterConfig {
        storage_servers: SERVERS,
        ..Default::default()
    }));
    let mut rank0 = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    rank0.get_cred(ticket).unwrap();
    let cid = rank0.create_container().unwrap();
    let group = group(n);
    let mut clients = vec![rank0];
    for r in 1..n {
        clients.push(cluster.client(r as u32, 0));
    }
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(rank, mut client)| {
            let group = group.clone();
            std::thread::spawn(move || {
                let caps = if rank == 0 {
                    let caps = client.get_caps(cid, OpMask::CHECKPOINT).unwrap();
                    let cred = client.current_cred().unwrap();
                    client.broadcast(&group, 0, 0, 2, Some(cred.to_bytes())).unwrap();
                    client.scatter_caps(&group, 0, 0, 1, Some(&caps)).unwrap()
                } else {
                    let wire = client.broadcast(&group, rank, 0, 2, None).unwrap();
                    client.adopt_cred(Credential::from_bytes(wire).unwrap());
                    client.scatter_caps(&group, rank, 0, 1, None).unwrap()
                };
                let ck = LwfsCheckpointer::new(&client, group.clone(), rank, caps, "/ckpt/f");
                ck.checkpoint(1, &vec![rank as u8; STATE_BYTES]).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).fold(CkptReport::default(), CkptReport::max)
}

fn run_pfs(style: PfsStyle, n: usize) -> CkptReport {
    let cluster = Arc::new(PfsCluster::boot(PfsConfig {
        lwfs: ClusterConfig { storage_servers: SERVERS, ..Default::default() },
        mds_create_service: Duration::from_micros(1500),
        mds_open_service: Duration::from_micros(300),
    }));
    let group = group(n);
    let clients: Vec<_> = (0..n).map(|r| cluster.client(r as u32, 0)).collect();
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(rank, client)| {
            let group = group.clone();
            std::thread::spawn(move || {
                let ck = PfsCheckpointer::new(
                    &client,
                    group.clone(),
                    rank,
                    style,
                    "/ckpt/f",
                    SERVERS as u32,
                    1 << 20,
                );
                ck.checkpoint(1, &vec![rank as u8; STATE_BYTES]).unwrap()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).fold(CkptReport::default(), CkptReport::max)
}

fn main() {
    println!(
        "Functional-plane cross-validation: {} MB/rank, {SERVERS} storage servers\n",
        STATE_BYTES / (1024 * 1024)
    );
    let mut table = Table::new(&["impl", "ranks", "create (ms)", "dump (ms)", "MB/s"]);
    let mut csv =
        CsvOut::new("functional", &["impl", "ranks", "create_ms", "dump_ms", "throughput_mbps"]);

    let mut results: Vec<(&str, usize, CkptReport)> = Vec::new();
    for &n in &[2usize, 4, 8] {
        let lwfs = run_lwfs(n);
        let fpp = run_pfs(PfsStyle::FilePerProcess, n);
        let shared = run_pfs(PfsStyle::SharedFile, n);
        for (label, r) in [
            ("lwfs-object-per-process", lwfs),
            ("lustre-file-per-process", fpp),
            ("lustre-shared-file", shared),
        ] {
            table.row(&[
                label.to_string(),
                n.to_string(),
                format!("{:.2}", r.create_secs * 1e3),
                format!("{:.2}", r.dump_secs * 1e3),
                format!("{:.0}", r.dump_mb_per_sec() * n as f64),
            ]);
            csv.row(&[
                label.to_string(),
                n.to_string(),
                format!("{:.3}", r.create_secs * 1e3),
                format!("{:.3}", r.dump_secs * 1e3),
                format!("{:.1}", r.dump_mb_per_sec() * n as f64),
            ]);
            results.push((label, n, r));
        }
    }
    table.print();

    let mut shapes = ShapeCheck::new();
    for &n in &[4usize, 8] {
        let find = |label: &str| {
            results.iter().find(|(l, rn, _)| *l == label && *rn == n).map(|(_, _, r)| *r).unwrap()
        };
        let lwfs = find("lwfs-object-per-process");
        let fpp = find("lustre-file-per-process");
        shapes.check(
            format!(
                "{n} ranks: LWFS create ({:.2} ms) beats MDS-serialized create ({:.2} ms)",
                lwfs.create_secs * 1e3,
                fpp.create_secs * 1e3
            ),
            lwfs.create_secs < fpp.create_secs,
        );
        // MDS create time grows roughly linearly with ranks (serialized).
    }
    let fpp4 =
        results.iter().find(|(l, n, _)| *l == "lustre-file-per-process" && *n == 4).unwrap().2;
    let fpp8 =
        results.iter().find(|(l, n, _)| *l == "lustre-file-per-process" && *n == 8).unwrap().2;
    shapes.check(
        format!(
            "MDS create latency grows with ranks ({:.2} ms @4 -> {:.2} ms @8)",
            fpp4.create_secs * 1e3,
            fpp8.create_secs * 1e3
        ),
        fpp8.create_secs > fpp4.create_secs,
    );

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    std::process::exit(if ok { 0 } else { 1 });
}
