//! Regenerate **Table 2**: Red Storm communication and I/O performance —
//! and *validate* that the simulation substrate reproduces those rates
//! when exercised, rather than merely echoing configuration.
//!
//! ```text
//! cargo run -p lwfs-bench --bin table2
//! ```

use lwfs_bench::{CsvOut, ShapeCheck, Table};
use lwfs_models::Machine;
use lwfs_sim::{FcfsResource, SimDuration, SimTime};

fn main() {
    let rs = Machine::red_storm();
    println!("Table 2: Red Storm Communication and I/O Performance\n");

    let mut table = Table::new(&["Quantity", "Paper", "Model"]);
    let mut shapes = ShapeCheck::new();
    let mut csv = CsvOut::new("table2", &["quantity", "paper", "model"]);

    // I/O node bandwidth to RAID: drive the modeled disk with 4 GB of
    // work and measure the achieved rate.
    let mut disk = FcfsResource::with_bandwidth("raid", rs.server_disk_mbps);
    let bytes = 4_000_000_000u64;
    let (_, finish) = disk.reserve(SimTime::ZERO, bytes);
    let disk_mbps = bytes as f64 / 1e6 / finish.as_secs_f64();
    table.row(&[
        "I/O node B/W (to RAID)".into(),
        "400 MB/s".into(),
        format!("{disk_mbps:.0} MB/s"),
    ]);
    csv.row(&["io_node_raid_mbps".into(), "400".into(), format!("{disk_mbps:.1}")]);
    shapes.check_range("I/O-node RAID bandwidth (MB/s)", disk_mbps, 398.0, 402.0);

    // Link bandwidth: measure a modeled 6 GB/s link.
    let mut link = FcfsResource::with_bandwidth("link", rs.client_nic_mbps);
    let (_, f) = link.reserve(SimTime::ZERO, bytes);
    let link_mbps = bytes as f64 / 1e6 / f.as_secs_f64();
    table.row(&[
        "Bi-Directional Link B/W".into(),
        "6.0 GB/s".into(),
        format!("{:.1} GB/s", link_mbps / 1000.0),
    ]);
    csv.row(&["link_gbps".into(), "6.0".into(), format!("{:.2}", link_mbps / 1000.0)]);
    shapes.check_range("link bandwidth (GB/s)", link_mbps / 1000.0, 5.95, 6.05);

    // MPI latency: the model's one-hop message delay.
    let lat_us = SimDuration::from_nanos(rs.latency_ns).as_secs_f64() * 1e6;
    table.row(&["MPI Latency (1 hop)".into(), "2.0 µs".into(), format!("{lat_us:.1} µs")]);
    csv.row(&["mpi_latency_us".into(), "2.0".into(), format!("{lat_us:.2}")]);
    shapes.check_range("one-hop latency (µs)", lat_us, 1.9, 2.1);

    // Aggregate I/O bandwidth per end: 8×16 mesh of I/O nodes. The paper
    // quotes 50 GB/s aggregate per end over 128 I/O nodes: ~390 MB/s per
    // node of deliverable RAID bandwidth — i.e. the RAID path, not the
    // network, is the limit.
    let per_end_nodes = 128.0;
    let aggregate_gbps = per_end_nodes * rs.server_disk_mbps / 1000.0;
    table.row(&[
        "Aggregate I/O B/W (per end)".into(),
        "50 GB/s".into(),
        format!("{aggregate_gbps:.0} GB/s"),
    ]);
    csv.row(&["aggregate_io_gbps".into(), "50".into(), format!("{aggregate_gbps:.1}")]);
    shapes.check_range("aggregate I/O bandwidth (GB/s)", aggregate_gbps, 45.0, 55.0);

    // The §3.2 imbalance the table exists to illustrate: an I/O node can
    // receive 6 GB/s from the network but deliver only 400 MB/s to RAID.
    let imbalance = rs.server_nic_mbps / rs.server_disk_mbps;
    table.row(&[
        "Network:RAID imbalance".into(),
        "15:1 (derived)".into(),
        format!("{imbalance:.0}:1"),
    ]);
    csv.row(&["network_raid_imbalance".into(), "15".into(), format!("{imbalance:.1}")]);
    shapes.check_range("network:RAID imbalance (×)", imbalance, 14.0, 16.0);

    table.print();
    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    std::process::exit(if ok { 0 } else { 1 });
}
