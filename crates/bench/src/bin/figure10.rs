//! Regenerate **Figure 10**: file/object creation throughput (ops/sec)
//! versus client processes.
//!
//! Panel (a) is the log-scale comparison at 16 servers; panels (b) and (c)
//! are the Lustre and LWFS details per server count. Mean ± stddev over 5
//! seeded trials.
//!
//! ```text
//! cargo run --release -p lwfs-bench --bin figure10
//! cargo run -p lwfs-bench --bin figure10 -- --smoke
//! cargo run --release -p lwfs-bench --bin figure10 -- --metrics-out results/figure10_metrics.json
//! cargo run --release -p lwfs-bench --bin figure10 -- --trace-out results/figure10_trace.json
//! cargo run --release -p lwfs-bench --bin figure10 -- --telemetry-out results/figure10_telemetry.jsonl
//! ```

use lwfs_bench::{pm, CsvOut, ShapeCheck, Table};
use lwfs_models::{Calibration, CkptImpl, CreateSim, Machine};
use lwfs_sim::Summary;
use lwfs_workload::ExperimentGrid;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if lwfs_bench::transport_arg() == lwfs_core::TransportKind::Tcp {
        println!("(--transport tcp: functional probes run over the socket fabric)\n");
    }
    let grid = if smoke { ExperimentGrid::smoke() } else { ExperimentGrid::paper() };
    let machine = Machine::dev_cluster();
    let calib = Calibration::default();
    let creates_per_client = 32;

    println!(
        "Figure 10: create throughput (ops/sec), {creates_per_client} creates/client, {} trials/point\n",
        grid.trials
    );

    let mut csv = CsvOut::new(
        "figure10",
        &["impl", "servers", "clients", "ops_per_sec_mean", "ops_per_sec_sd"],
    );
    let mut measured: std::collections::HashMap<(CkptImpl, usize, usize), Summary> =
        std::collections::HashMap::new();

    for impl_kind in [CkptImpl::LustreFilePerProc, CkptImpl::LwfsObjPerProc] {
        let panel = match impl_kind {
            CkptImpl::LustreFilePerProc => "(b) Lustre File Creation",
            _ => "(c) LWFS Object Creation",
        };
        println!("== {panel} ==");
        let mut header = vec!["clients".to_string()];
        header.extend(grid.server_counts.iter().map(|s| format!("{s} servers (ops/s)")));
        let mut table = Table::from_header(header);

        for &clients in &grid.client_counts {
            let mut cells = vec![clients.to_string()];
            for &servers in &grid.server_counts {
                let mut summary = Summary::new();
                for trial in 0..grid.trials {
                    let sim = CreateSim {
                        machine: machine.clone(),
                        calib: calib.clone(),
                        impl_kind,
                        clients,
                        servers,
                        creates_per_client,
                    };
                    summary.add(sim.run(0xF16_0010 ^ trial).ops_per_sec);
                }
                cells.push(pm(summary.mean(), summary.stddev()));
                csv.row(&[
                    impl_kind.label().to_string(),
                    servers.to_string(),
                    clients.to_string(),
                    format!("{:.1}", summary.mean()),
                    format!("{:.2}", summary.stddev()),
                ]);
                measured.insert((impl_kind, servers, clients), summary);
            }
            table.row(&cells);
        }
        table.print();
        println!();
    }

    // Panel (a): the log-plot comparison at the largest server count.
    let top_servers = *grid.server_counts.last().unwrap();
    let max_clients = *grid.client_counts.last().unwrap();
    println!("== (a) LWFS vs Lustre at {top_servers} servers (log scale in the paper) ==");
    let mut table = Table::new(&["clients", "Lustre (ops/s)", "LWFS (ops/s)", "factor"]);
    for &clients in &grid.client_counts {
        let lustre = measured[&(CkptImpl::LustreFilePerProc, top_servers, clients)].mean();
        let lwfs = measured[&(CkptImpl::LwfsObjPerProc, top_servers, clients)].mean();
        table.row(&[
            clients.to_string(),
            format!("{lustre:.0}"),
            format!("{lwfs:.0}"),
            format!("{:.0}x", lwfs / lustre),
        ]);
    }
    table.print();

    // Shape checks against the paper's panels.
    let mut shapes = ShapeCheck::new();
    let get = |k: CkptImpl, s: usize, c: usize| measured[&(k, s, c)].mean();

    // (b): Lustre saturates at a few hundred ops/s, roughly independent of
    // server count (paper y-axis tops at 900).
    for &servers in &grid.server_counts {
        shapes.check_range(
            &format!("Lustre ceiling @{servers} servers (paper: 400-900 ops/s)"),
            get(CkptImpl::LustreFilePerProc, servers, max_clients),
            400.0,
            900.0,
        );
    }
    // (c): LWFS scales with server count; 16-server curve reaches tens of
    // thousands (paper y-axis tops at 70000).
    if grid.server_counts.contains(&16) {
        shapes.check_range(
            "LWFS @16 servers, max clients (paper: ~40000-70000 ops/s)",
            get(CkptImpl::LwfsObjPerProc, 16, max_clients),
            40_000.0,
            70_000.0,
        );
    }
    let mut prev = 0.0;
    let mut ordered = true;
    for &servers in &grid.server_counts {
        let v = get(CkptImpl::LwfsObjPerProc, servers, max_clients);
        ordered &= v > prev;
        prev = v;
    }
    shapes.check("LWFS curves fan out by server count (panel c)", ordered);

    // (a): one-to-two orders of magnitude separation at scale.
    let factor = get(CkptImpl::LwfsObjPerProc, top_servers, max_clients)
        / get(CkptImpl::LustreFilePerProc, top_servers, max_clients);
    shapes.check_range(
        "LWFS/Lustre factor at max scale (paper log plot: ~10-100x)",
        factor,
        10.0,
        200.0,
    );

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    lwfs_bench::maybe_dump_metrics();
    std::process::exit(if ok { 0 } else { 1 });
}
