//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Capability cache** (§3.1.2): disable the storage-server cache so
//!    every chunk pays a verify-through round trip at the single
//!    authorization server — measured in the DES *and* cross-checked with
//!    real message counts on the functional plane.
//! 2. **Shared-file penalty attribution** (§4 / Figure 9): zero the lock
//!    hand-off and the disk-locality penalty separately to show which
//!    mechanism produces the "roughly half" throughput.
//! 3. **Pinned-buffer pipeline depth** (§3.2 / Figure 6).
//! 4. **Transfer chunk size**.
//! 7. **Storage worker pool**: sweep `StorageConfig::workers` on the live
//!    functional plane with parallel disjoint-object clients, writing
//!    `results/storage_scaling.csv` and `BENCH_storage_scaling.json`
//!    (pass `--workers 1,2,4,8` to override the sweep).
//! 8. **Durability**: crash/restart recovery time vs object count, and the
//!    write-throughput cost of each WAL sync policy, writing
//!    `results/recovery.csv` and `BENCH_recovery.json` (pass `--wal-dir`
//!    to relocate the logs, `--sync-policy always,every64,os,none` to
//!    override the policy sweep).
//! 9. **Replication**: the synchronous log-shipping write cost per group
//!    size R ∈ {1, 2, 3} and the client-visible failover blip when the
//!    primary dies mid-stream, writing `results/replication.csv` and
//!    `BENCH_replication.json`.
//! 10. **Self-certifying capabilities** (DESIGN §16): a write storm under
//!     `Legacy` vs `Signed` with the storage cap cache disabled — legacy
//!     pays one verify-through RPC per op, signed pays **zero** authz
//!     messages on the data path — plus the local cap-verify p50 and a
//!     revocation storm's time-to-reject, writing `results/caps.csv` and
//!     `BENCH_caps.json`.
//!
//! ```text
//! cargo run --release -p lwfs-bench --bin ablation -- --metrics-out results/ablation_metrics.json
//! cargo run --release -p lwfs-bench --bin ablation -- --trace-out results/ablation_trace.json
//! cargo run --release -p lwfs-bench --bin ablation -- --telemetry-out results/ablation_telemetry.jsonl
//! ```

use lwfs_bench::{CsvOut, ShapeCheck, Table};
use lwfs_models::{Calibration, CkptImpl, DumpSim, Machine};

fn run(calib: Calibration, impl_kind: CkptImpl, clients: usize, servers: usize) -> f64 {
    DumpSim {
        machine: Machine::dev_cluster(),
        calib,
        impl_kind,
        clients,
        servers,
        bytes_per_client: 512_000_000,
    }
    .run(1)
    .throughput_mbps
}

/// Red Storm-scale run: this is where a centralized per-operation
/// authorization step stops being a latency tax and becomes a ceiling.
fn run_red_storm(calib: Calibration, clients: usize) -> f64 {
    DumpSim {
        machine: Machine::red_storm(),
        calib,
        impl_kind: CkptImpl::LwfsObjPerProc,
        clients,
        servers: 256,
        bytes_per_client: 500_000_000,
    }
    .run(1)
    .throughput_mbps
}

fn main() {
    let mut csv = CsvOut::new("ablation", &["study", "variant", "clients", "value"]);
    let mut shapes = ShapeCheck::new();

    // ------------------------------------------------------------------
    // 1. Capability cache on/off (DES).
    // ------------------------------------------------------------------
    println!(
        "== ablation 1: storage-server capability cache (LWFS dump, Red Storm, 256 servers) =="
    );
    println!("   (at dev-cluster scale the authz server absorbs the un-cached load;");
    println!("    the ceiling appears at MPP scale — which is the paper's §2.4 point)");
    let mut t = Table::new(&["clients", "cache on (MB/s)", "cache off (MB/s)", "loss"]);
    let mut collapse = (0.0, 0.0);
    for &clients in &[256usize, 1024, 4096] {
        let on = run_red_storm(Calibration::default(), clients);
        let off =
            run_red_storm(Calibration { cap_cache: false, ..Calibration::default() }, clients);
        t.row(&[
            clients.to_string(),
            format!("{on:.0}"),
            format!("{off:.0}"),
            format!("{:.0}%", 100.0 * (1.0 - off / on)),
        ]);
        csv.row(&["cap_cache".into(), "on".into(), clients.to_string(), format!("{on:.1}")]);
        csv.row(&["cap_cache".into(), "off".into(), clients.to_string(), format!("{off:.1}")]);
        if clients == 4096 {
            collapse = (on, off);
        }
    }
    t.print();
    shapes.check(
        format!(
            "without the cache the authz server throttles the dump ({:.0} -> {:.0} MB/s at 4096 clients)",
            collapse.0, collapse.1
        ),
        collapse.1 < 0.8 * collapse.0,
    );

    // ------------------------------------------------------------------
    // 2. Shared-file penalty attribution.
    // ------------------------------------------------------------------
    println!("\n== ablation 2: what halves the shared file? (64 clients, 8 servers) ==");
    let base = Calibration::default();
    let fpp = run(base.clone(), CkptImpl::LustreFilePerProc, 64, 8);
    let variants: Vec<(&str, Calibration)> = vec![
        ("full penalties (as measured)", base.clone()),
        ("no lock hand-off", Calibration { lock_handoff_ns: 0, ..base.clone() }),
        ("no disk-locality penalty", Calibration { writer_switch_ns: 0, ..base.clone() }),
        (
            "neither (LWFS-like semantics)",
            Calibration { lock_handoff_ns: 0, writer_switch_ns: 0, ..base.clone() },
        ),
    ];
    let mut t = Table::new(&["variant", "shared (MB/s)", "vs file-per-process"]);
    let mut neither_ratio = 0.0;
    let mut full_ratio = 0.0;
    for (name, calib) in variants {
        let shared = run(calib, CkptImpl::LustreShared, 64, 8);
        let ratio = shared / fpp;
        t.row(&[name.to_string(), format!("{shared:.0}"), format!("{ratio:.2}x")]);
        csv.row(&["shared_penalty".into(), name.into(), "64".into(), format!("{shared:.1}")]);
        if name.starts_with("neither") {
            neither_ratio = ratio;
        }
        if name.starts_with("full") {
            full_ratio = ratio;
        }
    }
    t.print();
    shapes.check_range("full penalties reproduce the ~0.5x of Figure 9", full_ratio, 0.35, 0.65);
    shapes.check_range(
        "removing the imposed consistency recovers file-per-process throughput",
        neither_ratio,
        0.9,
        1.1,
    );

    // ------------------------------------------------------------------
    // 3. Pipeline depth (pinned buffers).
    // ------------------------------------------------------------------
    println!("\n== ablation 3: pinned-buffer pipeline depth (LWFS, 8 clients, 8 servers) ==");
    let mut t = Table::new(&["depth", "throughput (MB/s)"]);
    let mut depth_results = Vec::new();
    for depth in [1u32, 2, 4, 8] {
        let v = run(
            Calibration { pipeline_depth: depth, ..Calibration::default() },
            CkptImpl::LwfsObjPerProc,
            8,
            8,
        );
        t.row(&[depth.to_string(), format!("{v:.0}")]);
        csv.row(&["pipeline_depth".into(), depth.to_string(), "8".into(), format!("{v:.1}")]);
        depth_results.push(v);
    }
    t.print();
    shapes.check(
        "deeper pipelines never hurt (monotone non-decreasing)",
        depth_results.windows(2).all(|w| w[1] >= w[0] * 0.999),
    );

    // ------------------------------------------------------------------
    // 4. Chunk size.
    // ------------------------------------------------------------------
    println!("\n== ablation 4: transfer chunk size (shared file, 64 clients, 8 servers) ==");
    let mut t = Table::new(&["chunk", "shared (MB/s)", "vs fpp"]);
    for chunk in [250_000u64, 1_000_000, 4_000_000] {
        let calib = Calibration { chunk_bytes: chunk, ..Calibration::default() };
        let shared = run(calib.clone(), CkptImpl::LustreShared, 64, 8);
        let fpp_c = run(calib, CkptImpl::LustreFilePerProc, 64, 8);
        t.row(&[
            format!("{} KB", chunk / 1000),
            format!("{shared:.0}"),
            format!("{:.2}x", shared / fpp_c),
        ]);
        csv.row(&["chunk_size".into(), chunk.to_string(), "64".into(), format!("{shared:.1}")]);
    }
    t.print();
    println!("  (larger chunks amortize the per-switch penalty — the knob a");
    println!("   PFS admin would turn, at the cost of client memory)");

    // ------------------------------------------------------------------
    // 5. Functional-plane cross-check of ablation 1: real message counts.
    // ------------------------------------------------------------------
    println!("\n== ablation 5: functional plane, verify-every-op vs cached ==");
    let msgs = functional_cache_ablation();
    let mut t = Table::new(&["variant", "authz messages for 50 writes"]);
    t.row(&["cached (default)".into(), msgs.0.to_string()]);
    t.row(&["verify every op".into(), msgs.1.to_string()]);
    t.print();
    csv.row(&["functional_cache".into(), "on".into(), "50".into(), msgs.0.to_string()]);
    csv.row(&["functional_cache".into(), "off".into(), "50".into(), msgs.1.to_string()]);
    shapes.check(
        format!("cached: O(1) authz traffic ({}); uncached: O(ops) ({})", msgs.0, msgs.1),
        msgs.0 <= 2 && msgs.1 >= 50,
    );

    // ------------------------------------------------------------------
    // 6. The §3.1.2 amortized analysis, with real counters.
    // ------------------------------------------------------------------
    println!("\n== ablation 6: amortized cost of verify-through caching (§3.1.2) ==");
    let report = amortized_report();
    println!("  {report}");
    println!("  (the paper: 'the amortized impact of this additional");
    println!("   communication is minimal' — threshold 0.01 extra msgs/op)");
    shapes.check(
        format!(
            "verify-through overhead is minimal ({:.5} extra msgs/op)",
            report.extra_messages_per_op()
        ),
        report.is_minimal(0.01),
    );

    // ------------------------------------------------------------------
    // 7. Storage worker-pool scaling (live functional plane).
    // ------------------------------------------------------------------
    let sweep = workers_arg().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let transport = lwfs_bench::transport_arg();
    let process_mode = transport == lwfs_core::TransportKind::Tcp;
    println!("\n== ablation 7: storage worker pool (4 clients, disjoint objects) ==");
    println!("   host cores: {cores}");
    if process_mode {
        println!("   transport: tcp — cluster services run as separate OS processes");
    }
    // In-process, the realized parallelism is the core count; in process
    // mode it is the OS-process census of the deployment itself (the
    // launcher plus every live service process) as reported by the run.
    let mut host_parallelism = if process_mode { 1 } else { cores };
    let mut scaling_csv =
        CsvOut::new("storage_scaling", &["workers", "clients", "mb_per_s", "speedup_vs_1"]);
    let mut t = Table::new(&["workers", "MB/s", "speedup vs 1"]);
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for &workers in &sweep {
        let mbps = if process_mode {
            let (mbps, census) = storage_scaling_run_proc(workers);
            host_parallelism = host_parallelism.max(census);
            mbps
        } else {
            storage_scaling_run(workers)
        };
        let baseline = rows.first().map(|(_, m, _)| *m).unwrap_or(mbps);
        let speedup = mbps / baseline;
        t.row(&[workers.to_string(), format!("{mbps:.0}"), format!("{speedup:.2}x")]);
        scaling_csv.row(&[
            workers.to_string(),
            "4".into(),
            format!("{mbps:.1}"),
            format!("{speedup:.3}"),
        ]);
        rows.push((workers, mbps, speedup));
    }
    t.print();
    if process_mode {
        println!("   realized OS-process parallelism: {host_parallelism}");
    }
    match scaling_csv.finish() {
        Ok(path) => println!("  CSV written to {}", path.display()),
        Err(e) => eprintln!("  CSV write failed: {e}"),
    }
    write_scaling_json(transport, host_parallelism, cores, &rows);
    // The speedup claim is conditional on real cores: a single-core host
    // time-slices the workers (or processes) and measures scheduler
    // overhead, not the pool. Only judge the shape where it can
    // physically appear.
    let best = rows.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    if cores >= 4 && sweep.contains(&1) && sweep.iter().any(|w| *w >= 4) {
        shapes.check(
            format!("worker pool scales on {cores} cores (best speedup {best:.2}x)"),
            best >= 1.5,
        );
    } else {
        println!(
            "  (speedup shape check skipped: host cores {cores} < 4 \
             or sweep lacks 1-and-4+ endpoints; recorded {best:.2}x)"
        );
    }

    // ------------------------------------------------------------------
    // 8. Durability: recovery time and sync-policy write overhead.
    // ------------------------------------------------------------------
    println!("\n== ablation 8: WAL recovery time and sync-policy cost ==");
    let wal_dir = wal_dir_arg()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("lwfs-abl8-{}", std::process::id())));
    let mut recovery_csv =
        CsvOut::new("recovery", &["study", "variant", "objects", "value", "unit"]);

    println!("-- recovery time vs object count (1 server, 4 KB objects) --");
    let mut t = Table::new(&["objects", "replayed records", "recovery (ms)", "records/s"]);
    let mut recovery_rows: Vec<(usize, u64, f64)> = Vec::new();
    for &objects in &[100usize, 400, 1600] {
        let (records, ms) = recovery_run(&wal_dir, objects);
        let rate = if ms > 0.0 { records as f64 / (ms / 1000.0) } else { f64::INFINITY };
        t.row(&[
            objects.to_string(),
            records.to_string(),
            format!("{ms:.1}"),
            if rate.is_finite() { format!("{rate:.0}") } else { "sub-ms".into() },
        ]);
        recovery_csv.row(&[
            "recovery_time".into(),
            "os".into(),
            objects.to_string(),
            format!("{ms:.2}"),
            "ms".into(),
        ]);
        recovery_rows.push((objects, records, ms));
    }
    t.print();
    shapes.check(
        format!(
            "replay covers the full history (records grow with objects: {:?})",
            recovery_rows.iter().map(|(_, r, _)| *r).collect::<Vec<_>>()
        ),
        recovery_rows.windows(2).all(|w| w[1].1 > w[0].1)
            && recovery_rows.iter().all(|(o, r, _)| *r >= 2 * *o as u64),
    );

    println!("-- write throughput per sync policy (64 × 64 KB writes) --");
    let policies = sync_policy_arg()
        .unwrap_or_else(|| vec!["none".into(), "os".into(), "every64".into(), "always".into()]);
    let mut t = Table::new(&["policy", "MB/s", "vs no-wal"]);
    let mut policy_rows: Vec<(String, f64, f64)> = Vec::new();
    for policy in &policies {
        let mbps = sync_policy_run(&wal_dir, policy);
        let baseline = policy_rows.first().map(|(_, m, _)| *m).unwrap_or(mbps);
        let rel = mbps / baseline;
        t.row(&[policy.clone(), format!("{mbps:.0}"), format!("{rel:.2}x")]);
        recovery_csv.row(&[
            "sync_policy".into(),
            policy.clone(),
            "64".into(),
            format!("{mbps:.1}"),
            "mb_per_s".into(),
        ]);
        policy_rows.push((policy.clone(), mbps, rel));
    }
    t.print();
    println!("  (all policies preserve acked data across a crash; they differ");
    println!("   only in how much the OS may lose on *power* failure)");
    match recovery_csv.finish() {
        Ok(path) => println!("  CSV written to {}", path.display()),
        Err(e) => eprintln!("  CSV write failed: {e}"),
    }
    write_recovery_json(&recovery_rows, &policy_rows);
    let _ = std::fs::remove_dir_all(&wal_dir);

    // ------------------------------------------------------------------
    // 9. Replication: per-R write cost and the failover blip.
    // ------------------------------------------------------------------
    println!("\n== ablation 9: replication write cost and failover blip ==");
    let mut repl_csv = CsvOut::new("replication", &["study", "variant", "value", "unit"]);

    println!("-- synchronous ship-before-ack write cost (64 × 64 KB, one group) --");
    let mut t = Table::new(&["R", "MB/s", "vs R=1"]);
    let mut repl_rows: Vec<(usize, f64, f64)> = Vec::new();
    for r in [1usize, 2, 3] {
        let mbps = replication_write_run(r);
        let baseline = repl_rows.first().map(|(_, m, _)| *m).unwrap_or(mbps);
        let rel = mbps / baseline;
        t.row(&[r.to_string(), format!("{mbps:.0}"), format!("{rel:.2}x")]);
        repl_csv.row(&[
            "write_cost".into(),
            format!("r{r}"),
            format!("{mbps:.1}"),
            "mb_per_s".into(),
        ]);
        repl_rows.push((r, mbps, rel));
    }
    t.print();
    println!("  (every write waits for all R-1 backups to apply before the ack;");
    println!("   the cost is the paper's price for losing no acknowledged byte)");

    println!("-- failover blip (R=2, primary killed mid-stream, no restart) --");
    let blip = failover_blip_run();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["steady write (µs, median)".into(), format!("{:.0}", blip.steady_us)]);
    t.row(&["failover blip (ms)".into(), format!("{:.2}", blip.blip_ms)]);
    t.row(&["writes acked".into(), blip.writes.to_string()]);
    t.print();
    repl_csv.row(&[
        "failover".into(),
        "steady_write".into(),
        format!("{:.1}", blip.steady_us),
        "us".into(),
    ]);
    repl_csv.row(&["failover".into(), "blip".into(), format!("{:.3}", blip.blip_ms), "ms".into()]);
    match repl_csv.finish() {
        Ok(path) => println!("  CSV written to {}", path.display()),
        Err(e) => eprintln!("  CSV write failed: {e}"),
    }
    write_replication_json(&repl_rows, &blip);
    shapes.check(
        format!("no write lost across the failover ({} acked, all verified)", blip.writes),
        blip.all_verified,
    );
    // In-process, the dead primary's endpoint vanishes and the client fails
    // over within the write; over sockets, death is only observable as the
    // client's RPC deadline (5 s) expiring, so the blip is deadline-bound.
    let blip_bound_ms = if lwfs_bench::transport_arg() == lwfs_core::TransportKind::Tcp {
        10_000.0
    } else {
        5_000.0
    };
    shapes.check(
        format!(
            "failover blip is a blip, not an outage ({:.2} ms < {:.0} s)",
            blip.blip_ms,
            blip_bound_ms / 1000.0
        ),
        blip.blip_ms < blip_bound_ms,
    );

    // ------------------------------------------------------------------
    // 10. Self-certifying capabilities: local verify vs verify-through.
    // ------------------------------------------------------------------
    println!("\n== ablation 10: self-certifying capabilities (cap cache disabled) ==");
    let mut caps_csv = CsvOut::new("caps", &["study", "variant", "value", "unit"]);
    let mut t = Table::new(&["mode", "MB/s", "authz msgs (storm)", "cap verify p50"]);
    let mut caps_rows: Vec<CapsModeRow> = Vec::new();
    for mode in [lwfs_cap::CapMode::Legacy, lwfs_cap::CapMode::Signed] {
        let row = caps_mode_run(mode);
        t.row(&[
            mode.as_str().into(),
            format!("{:.0}", row.mb_per_s),
            row.authz_msgs.to_string(),
            row.verify_p50_ns.map_or("-".into(), |ns| format!("{ns} ns")),
        ]);
        caps_csv.row(&[
            "write_storm".into(),
            mode.as_str().into(),
            format!("{:.1}", row.mb_per_s),
            "mb_per_s".into(),
        ]);
        caps_csv.row(&[
            "authz_msgs".into(),
            mode.as_str().into(),
            row.authz_msgs.to_string(),
            "msgs".into(),
        ]);
        caps_rows.push(row);
    }
    t.print();
    println!("  (cache disabled so legacy pays verify-through per op; signed");
    println!("   verifies the ed25519 token locally and never calls authz)");
    shapes.check(
        format!(
            "legacy without the cache pays verify-through on the data path ({} msgs)",
            caps_rows[0].authz_msgs
        ),
        caps_rows[0].authz_msgs > 0,
    );
    shapes.check(
        format!(
            "signed mode sends ZERO authz messages on the data path ({} msgs)",
            caps_rows[1].authz_msgs
        ),
        caps_rows[1].authz_msgs == 0,
    );

    println!("-- revocation storm: one BumpEpochs over every container --");
    let storm = revocation_storm_run();
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["containers bumped".into(), storm.containers.to_string()]);
    t.row(&["bump RPC (ms)".into(), format!("{:.2}", storm.bump_ms)]);
    t.row(&["time to reject (ms)".into(), format!("{:.2}", storm.time_to_reject_ms)]);
    t.print();
    caps_csv.row(&[
        "revocation".into(),
        "time_to_reject".into(),
        format!("{:.3}", storm.time_to_reject_ms),
        "ms".into(),
    ]);
    shapes.check(
        format!(
            "a bumped epoch rejects previously-valid caps within one reply timeout \
             ({:.1} ms < {:.0} ms)",
            storm.time_to_reject_ms, storm.reply_timeout_ms
        ),
        storm.all_rejected && storm.time_to_reject_ms < storm.reply_timeout_ms,
    );
    match caps_csv.finish() {
        Ok(path) => println!("  CSV written to {}", path.display()),
        Err(e) => eprintln!("  CSV write failed: {e}"),
    }
    write_caps_json(&caps_rows, &storm);

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    // Headline numbers for the repo's own performance trajectory: one
    // scalar per study, appended to results/trajectory.jsonl every run.
    let headline = [
        ("cap_cache_on_mb_s", collapse.0),
        ("cap_cache_off_mb_s", collapse.1),
        ("worker_best_speedup", best),
        ("repl_r2_mb_s", repl_rows.iter().find(|(r, _, _)| *r == 2).map_or(0.0, |(_, m, _)| *m)),
        ("caps_signed_mb_s", caps_rows.get(1).map_or(0.0, |r| r.mb_per_s)),
    ];
    if lwfs_bench::check_regression_arg() {
        println!("\nTrajectory check (warn-only):");
        lwfs_bench::check_regression("ablation", &headline);
    }
    match lwfs_bench::append_trajectory("ablation", &headline) {
        Ok(path) => println!("trajectory appended to {}", path.display()),
        Err(e) => eprintln!("trajectory append failed: {e}"),
    }

    lwfs_bench::maybe_dump_metrics();
    std::process::exit(if ok { 0 } else { 1 });
}

/// Parse `--wal-dir PATH` (or `--wal-dir=PATH`) from argv.
fn wal_dir_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--wal-dir")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| args.iter().find_map(|a| a.strip_prefix("--wal-dir=").map(str::to_string)))
        .map(std::path::PathBuf::from)
}

/// Parse `--sync-policy always,every64,os,none` from argv.
fn sync_policy_arg() -> Option<Vec<String>> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--sync-policy")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter().find_map(|a| a.strip_prefix("--sync-policy=").map(str::to_string))
        })?;
    let parsed: Vec<String> =
        raw.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// One recovery measurement: populate a WAL-backed server with `objects`
/// 4 KB objects (plus a committed transaction so the replay also walks the
/// journal path), crash it, and time the restart's replay.
fn recovery_run(wal_dir: &std::path::Path, objects: usize) -> (u64, f64) {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;
    use lwfs_storage::StorageConfig;
    use lwfs_wal::{SyncPolicy, WalConfig};

    let dir = wal_dir.join(format!("recovery-{objects}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        storage: StorageConfig {
            // Populate under `os` so the sweep measures replay, not fsync.
            wal: Some(WalConfig { sync: SyncPolicy::Os, ..WalConfig::new(dir.clone()) }),
            ..Default::default()
        },
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let payload = vec![0xA5u8; 4096];
    for _ in 0..objects {
        let obj = client.create_obj(0, &caps, None, None).unwrap();
        client.write(0, &caps, None, obj, 0, &payload).unwrap();
    }
    // One committed 2PC transaction so replay exercises the journal too.
    let txn = client.txn_begin().unwrap();
    let tobj = client.create_obj(0, &caps, Some(txn), None).unwrap();
    client.write(0, &caps, Some(txn), tobj, 0, b"journaled").unwrap();
    assert!(client.txn_commit(txn, vec![cluster.addrs().storage[0]]).unwrap().is_committed());

    cluster.crash_storage(0);
    let start = std::time::Instant::now();
    cluster.restart_storage(0);
    let ms = start.elapsed().as_secs_f64() * 1000.0;

    // Functional check: every acked object is back.
    let recovered = client.list_objs(0, &caps).unwrap().len();
    assert_eq!(recovered, objects + 1, "replay lost objects");
    let snap = cluster.network().obs().snapshot();
    let records = snap.counter("wal.replay_records").unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    (records, ms)
}

/// One sync-policy point: sequential 64 KB writes to one object, timed.
/// `"none"` disables the WAL entirely (the zero-overhead baseline).
fn sync_policy_run(wal_dir: &std::path::Path, policy: &str) -> f64 {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;
    use lwfs_storage::StorageConfig;
    use lwfs_wal::{SyncPolicy, WalConfig};

    const WRITES: usize = 64;
    const CHUNK: usize = 64 * 1024;

    let dir = wal_dir.join(format!("policy-{policy}"));
    let _ = std::fs::remove_dir_all(&dir);
    let wal = if policy == "none" {
        None
    } else {
        let sync = SyncPolicy::parse(policy)
            .unwrap_or_else(|| panic!("bad --sync-policy entry {policy:?}"));
        Some(WalConfig { sync, ..WalConfig::new(dir.clone()) })
    };
    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        storage: StorageConfig { wal, ..Default::default() },
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    let payload = vec![0x5Au8; CHUNK];

    let start = std::time::Instant::now();
    for i in 0..WRITES {
        client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    (WRITES * CHUNK) as f64 / 1e6 / secs
}

/// Record the durability sweep for the acceptance artifact.
fn write_recovery_json(recovery: &[(usize, u64, f64)], policies: &[(String, f64, f64)]) {
    let recovery_entries: Vec<String> = recovery
        .iter()
        .map(|(objects, records, ms)| {
            let rate = if *ms > 0.0 { *records as f64 / (*ms / 1000.0) } else { 0.0 };
            format!(
                "    {{\"objects\": {objects}, \"replay_records\": {records}, \
                 \"recovery_ms\": {ms:.2}, \"replay_records_per_s\": {rate:.0}}}"
            )
        })
        .collect();
    let policy_entries: Vec<String> = policies
        .iter()
        .map(|(policy, mbps, rel)| {
            format!(
                "    {{\"policy\": \"{policy}\", \"mb_per_s\": {mbps:.1}, \
                 \"relative_to_no_wal\": {rel:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"bench\": \"recovery\",\n  \"recovery_time\": [\n{}\n  ],\n  \
         \"sync_policy_write_cost\": [\n{}\n  ]\n}}\n",
        lwfs_bench::bench_meta(&[("storage_servers", 1)]),
        recovery_entries.join(",\n"),
        policy_entries.join(",\n")
    );
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("  JSON written to BENCH_recovery.json"),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
}

/// Parse `--workers 1,2,4` (or `--workers=1,2,4`) from argv.
fn workers_arg() -> Option<Vec<usize>> {
    let args: Vec<String> = std::env::args().collect();
    let raw =
        args.iter().position(|a| a == "--workers").and_then(|i| args.get(i + 1).cloned()).or_else(
            || args.iter().find_map(|a| a.strip_prefix("--workers=").map(str::to_string)),
        )?;
    let parsed: Vec<usize> = raw.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// One point of the worker sweep: a single storage server with `workers`
/// threads, four client threads streaming writes to disjoint objects —
/// the workload the dispatcher should overlap perfectly.
fn storage_scaling_run(workers: usize) -> f64 {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;
    use lwfs_storage::StorageConfig;
    use std::sync::Arc;

    const CLIENTS: usize = 4;
    const WRITES: usize = 50;
    const CHUNK: usize = 64 * 1024;

    let cluster = Arc::new(LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        storage: StorageConfig { workers, ..StorageConfig::default() },
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    }));
    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let wire = caps.to_wire();
    // Objects pre-created so the timed region is pure data path.
    let objs: Vec<_> =
        (0..CLIENTS).map(|_| owner.create_obj(0, &caps, None, None).unwrap()).collect();

    let start = std::time::Instant::now();
    let handles: Vec<_> = objs
        .into_iter()
        .enumerate()
        .map(|(t, obj)| {
            let cluster = Arc::clone(&cluster);
            let wire = wire.clone();
            std::thread::spawn(move || {
                let client = cluster.client(t as u32, 0);
                let caps = lwfs_core::CapSet::from_wire(wire).unwrap();
                let payload = vec![t as u8; CHUNK];
                for i in 0..WRITES {
                    client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (CLIENTS * WRITES * CHUNK) as f64 / 1e6 / secs
}

/// Record the sweep (and the host it ran on) for the acceptance artifact.
///
/// `host_parallelism` is what the run actually spread across — the core
/// count in-process, the live OS-process census (launcher + services) in
/// process mode. `speedup_meaningful` stays tied to physical cores: a
/// single-core host time-slices any number of processes, so a census > 1
/// proves deployment parallelism, not measurable speedup.
fn write_scaling_json(
    transport: lwfs_core::TransportKind,
    host_parallelism: usize,
    cores: usize,
    rows: &[(usize, f64, f64)],
) {
    let entries: Vec<String> = rows
        .iter()
        .map(|(w, mbps, s)| {
            format!("    {{\"workers\": {w}, \"mb_per_s\": {mbps:.1}, \"speedup_vs_1\": {s:.3}}}")
        })
        .collect();
    let best = rows.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    let transport_label = match transport {
        lwfs_core::TransportKind::InProcess => "inprocess",
        lwfs_core::TransportKind::Tcp => "tcp",
    };
    let json = format!(
        "{{\n  \"meta\": {},\n  \"bench\": \"storage_scaling\",\n  \
         \"transport\": \"{transport_label}\",\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"host_cores\": {cores},\n  \
         \"clients\": 4,\n  \"best_speedup_vs_1\": {best:.3},\n  \
         \"speedup_meaningful\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        lwfs_bench::bench_meta(&[("storage_servers", 1), ("clients", 4)]),
        cores >= 4,
        entries.join(",\n")
    );
    match std::fs::write("BENCH_storage_scaling.json", &json) {
        Ok(()) => println!("  JSON written to BENCH_storage_scaling.json"),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
}

/// The process-mode point of the worker sweep: the same disjoint-object
/// write storm as [`storage_scaling_run`], but against a storage server
/// running as its own OS process behind the socket fabric (with the
/// auth/authz/naming/txn services as sibling processes). Returns
/// (MB/s, live OS-process census including the launcher).
fn storage_scaling_run_proc(workers: usize) -> (f64, usize) {
    use lwfs_core::{ProcessCluster, ProcessClusterConfig};
    use lwfs_proto::OpMask;

    const CLIENTS: usize = 4;
    const WRITES: usize = 50;
    const CHUNK: usize = 64 * 1024;

    let node_bin = ProcessCluster::node_bin_from_env().expect(
        "lwfs-node binary not found: build it first (cargo build --release --bin lwfs-node) \
         or point LWFS_NODE_BIN at it",
    );
    let mut cluster = ProcessCluster::launch(ProcessClusterConfig {
        node_bin,
        storage_servers: 1,
        replication: 1,
        workers: Some(workers),
        ..Default::default()
    })
    .expect("launching process cluster");

    let mut owner = cluster.client(99, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    owner.get_cred(ticket).unwrap();
    let cid = owner.create_container().unwrap();
    let caps = owner.get_caps(cid, OpMask::ALL).unwrap();
    let wire = caps.to_wire();
    // Clients and objects pre-created so the timed region is pure data
    // path crossing process boundaries.
    let work: Vec<_> = (0..CLIENTS)
        .map(|t| (cluster.client(t as u32, 0), owner.create_obj(0, &caps, None, None).unwrap()))
        .collect();

    let start = std::time::Instant::now();
    let handles: Vec<_> = work
        .into_iter()
        .enumerate()
        .map(|(t, (client, obj))| {
            let wire = wire.clone();
            std::thread::spawn(move || {
                let caps = lwfs_core::CapSet::from_wire(wire).unwrap();
                let payload = vec![t as u8; CHUNK];
                for i in 0..WRITES {
                    client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let census = cluster.host_parallelism();
    cluster.shutdown();
    ((CLIENTS * WRITES * CHUNK) as f64 / 1e6 / secs, census)
}

/// One replication point: a single group of `r` members, 64 sequential
/// 64 KB writes to one object. Returns MB/s; asserts the bytes really are
/// on every replica before returning (the sweep measures the cost of a
/// guarantee, so it first proves the guarantee held).
fn replication_write_run(r: usize) -> f64 {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;

    const WRITES: usize = 64;
    const CHUNK: usize = 64 * 1024;

    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication: r,
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    let payload = vec![0x7Eu8; CHUNK];

    let start = std::time::Instant::now();
    for i in 0..WRITES {
        client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    for replica in 0..r {
        assert_eq!(
            cluster.storage_server(replica).store().bytes_stored(),
            (WRITES * CHUNK) as u64,
            "replica {replica} is missing acknowledged bytes"
        );
    }
    (WRITES * CHUNK) as f64 / 1e6 / secs
}

struct FailoverBlip {
    steady_us: f64,
    blip_ms: f64,
    writes: usize,
    all_verified: bool,
}

/// Stream writes through an R=2 group, kill the primary mid-stream (no
/// restart), and keep writing against the promoted backup. The "blip" is
/// the latency of the first post-crash write — the client's detect +
/// map-refresh + retry cost; "steady" is the median of the rest.
fn failover_blip_run() -> FailoverBlip {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;

    const WRITES: usize = 80;
    const CRASH_AT: usize = WRITES / 2;
    const CHUNK: usize = 16 * 1024;

    let mut cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        replication: 2,
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    let payload = vec![0x42u8; CHUNK];

    let mut lat_us = Vec::with_capacity(WRITES);
    for i in 0..WRITES {
        if i == CRASH_AT {
            cluster.crash_storage(0);
        }
        let t0 = std::time::Instant::now();
        client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let blip_ms = lat_us[CRASH_AT] / 1000.0;
    let mut steady: Vec<f64> =
        lat_us.iter().enumerate().filter(|(i, _)| *i != CRASH_AT).map(|(_, v)| *v).collect();
    steady.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let steady_us = steady[steady.len() / 2];

    // Every acknowledged byte must read back from the survivor.
    let back = client.read(0, &caps, obj, 0, WRITES * CHUNK).unwrap();
    let all_verified = back.len() == WRITES * CHUNK && back.iter().all(|b| *b == 0x42);
    FailoverBlip { steady_us, blip_ms, writes: WRITES, all_verified }
}

/// Record the replication sweep for the acceptance artifact.
fn write_replication_json(rows: &[(usize, f64, f64)], blip: &FailoverBlip) {
    let entries: Vec<String> = rows
        .iter()
        .map(|(r, mbps, rel)| {
            format!(
                "    {{\"replication\": {r}, \"mb_per_s\": {mbps:.1}, \
                 \"relative_to_r1\": {rel:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"bench\": \"replication\",\n  \"write_cost\": [\n{}\n  ],\n  \
         \"failover\": {{\n    \"steady_write_us\": {:.1},\n    \"blip_ms\": {:.3},\n    \
         \"writes_acked\": {},\n    \"all_acked_bytes_verified\": {}\n  }}\n}}\n",
        lwfs_bench::bench_meta(&[(
            "max_replication",
            rows.iter().map(|(r, _, _)| *r as u64).max().unwrap_or(1)
        )]),
        entries.join(",\n"),
        blip.steady_us,
        blip.blip_ms,
        blip.writes,
        blip.all_verified
    );
    match std::fs::write("BENCH_replication.json", &json) {
        Ok(()) => println!("  JSON written to BENCH_replication.json"),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
}

/// Run a checkpoint-like workload on the functional plane and build the
/// §3.1.2 amortized report from the storage server's real cache counters.
fn amortized_report() -> lwfs_authz::AmortizedReport {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;

    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    let ticket = cluster.kdc().kinit("app", "secret").unwrap();
    client.get_cred(ticket).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    // A checkpoint-like run: thousands of chunk writes under one capability.
    for i in 0..2000u64 {
        client.write(0, &caps, None, obj, i * 64, &[7u8; 64]).unwrap();
    }
    let server = cluster.storage_server(0);
    let stats = server.cap_cache_stats().unwrap();
    // Verify RTT: 2 × one-hop latency (Table 2: 2 µs) + authz service time.
    lwfs_authz::AmortizedReport::new(stats, server.stats().data_ops(), 34_000)
}

/// Boot two real clusters (cache on / verify-every-op) and count the
/// authorization-server messages during 50 warm writes.
fn functional_cache_ablation() -> (u64, u64) {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;
    use lwfs_storage::StorageConfig;

    let run = |verify_every_op: bool| -> u64 {
        let cluster = LwfsCluster::boot(ClusterConfig {
            storage_servers: 1,
            storage: StorageConfig { verify_every_op, ..StorageConfig::default() },
            transport: lwfs_bench::transport_arg(),
            ..Default::default()
        });
        let mut client = cluster.client(0, 0);
        let ticket = cluster.kdc().kinit("app", "secret").unwrap();
        client.get_cred(ticket).unwrap();
        let cid = client.create_container().unwrap();
        let caps = client.get_caps(cid, OpMask::ALL).unwrap();
        let obj = client.create_obj(0, &caps, None, None).unwrap();
        client.write(0, &caps, None, obj, 0, b"warm").unwrap();

        let stats = cluster.network().stats();
        stats.reset();
        for i in 0..50u64 {
            client.write(0, &caps, None, obj, i * 8, b"measure!").unwrap();
        }
        stats.sent_by(cluster.addrs().authz)
    };
    let cached = run(false);
    let uncached = run(true);
    (cached, uncached)
}

struct CapsModeRow {
    mode: lwfs_cap::CapMode,
    mb_per_s: f64,
    /// Messages the authorization server sent while the storm ran — the
    /// verify-through traffic a data path incurs in this mode.
    authz_msgs: u64,
    verify_p50_ns: Option<u64>,
}

/// One capability-mode point: 200 × 64 KB writes with the storage cap
/// cache *disabled* (`verify_every_op`), so the data-path authorization
/// cost of each mode is fully visible rather than amortized away.
fn caps_mode_run(mode: lwfs_cap::CapMode) -> CapsModeRow {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_proto::OpMask;
    use lwfs_storage::StorageConfig;

    const WRITES: usize = 200;
    const CHUNK: usize = 64 * 1024;

    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        cap_mode: mode,
        storage: StorageConfig { verify_every_op: true, ..StorageConfig::default() },
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    client.get_cred(cluster.kdc().kinit("app", "secret").unwrap()).unwrap();
    let cid = client.create_container().unwrap();
    let caps = client.get_caps(cid, OpMask::ALL).unwrap();
    let obj = client.create_obj(0, &caps, None, None).unwrap();
    client.write(0, &caps, None, obj, 0, b"warm").unwrap();
    let payload = vec![0x5Au8; CHUNK];

    let stats = cluster.network().stats();
    stats.reset();
    let start = std::time::Instant::now();
    for i in 0..WRITES {
        client.write(0, &caps, None, obj, (i * CHUNK) as u64, &payload).unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let authz_msgs = stats.sent_by(cluster.addrs().authz);
    let verify_p50_ns =
        cluster.network().obs().snapshot().histogram("cap.verify_ns").map(|h| h.p50);
    CapsModeRow { mode, mb_per_s: (WRITES * CHUNK) as f64 / 1e6 / secs, authz_msgs, verify_p50_ns }
}

struct RevocationStorm {
    containers: usize,
    bump_ms: f64,
    time_to_reject_ms: f64,
    reply_timeout_ms: f64,
    all_rejected: bool,
}

/// Mint signed caps over many containers, prove they work, then bulk-bump
/// every container's revocation epoch in one `BumpEpochs` and measure how
/// long until the previously-valid caps are refused at storage. The push
/// is synchronous with the bump reply, so rejection should land well
/// inside one reply timeout — that bound is the acceptance check.
fn revocation_storm_run() -> RevocationStorm {
    use lwfs_core::{ClusterConfig, LwfsCluster};
    use lwfs_portals::RpcClient;
    use lwfs_proto::{Error, OpMask, ProcessId, ReplyBody, RequestBody};

    const CONTAINERS: usize = 32;

    let cluster = LwfsCluster::boot(ClusterConfig {
        storage_servers: 1,
        cap_mode: lwfs_cap::CapMode::Signed,
        transport: lwfs_bench::transport_arg(),
        ..Default::default()
    });
    let mut client = cluster.client(0, 0);
    client.get_cred(cluster.kdc().kinit("app", "secret").unwrap()).unwrap();

    let work: Vec<_> = (0..CONTAINERS)
        .map(|_| {
            let cid = client.create_container().unwrap();
            let caps = client.get_caps(cid, OpMask::ALL).unwrap();
            let obj = client.create_obj(0, &caps, None, None).unwrap();
            client.write(0, &caps, None, obj, 0, b"valid before the storm").unwrap();
            (cid, caps, obj)
        })
        .collect();
    let admin = work[0].1.for_op(OpMask::ADMIN).unwrap();
    let containers: Vec<_> = work.iter().map(|(cid, _, _)| *cid).collect();

    let ep = cluster.network().register(ProcessId::new(98, 0));
    let rpc = RpcClient::new(&ep);
    let start = std::time::Instant::now();
    let reply = rpc
        .call(cluster.addrs().authz, RequestBody::BumpEpochs { cap: admin, containers })
        .unwrap();
    let bump_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        matches!(reply, ReplyBody::EpochsBumped { bumped } if bumped == CONTAINERS as u64),
        "bulk bump covered every container"
    );

    // The old CapSets still hold pre-bump tokens: every write must now be
    // refused locally (stale epoch), without a single retry loop fired.
    let mut all_rejected = true;
    for (_, caps, obj) in &work {
        match client.write(0, caps, None, *obj, 0, b"after the storm") {
            Err(Error::CapabilityRevoked) => {}
            other => {
                all_rejected = false;
                eprintln!("  revoked cap was not refused: {other:?}");
            }
        }
    }
    let time_to_reject_ms = start.elapsed().as_secs_f64() * 1e3;
    RevocationStorm {
        containers: CONTAINERS,
        bump_ms,
        time_to_reject_ms,
        reply_timeout_ms: lwfs_portals::RpcConfig::default().reply_timeout.as_secs_f64() * 1e3,
        all_rejected,
    }
}

/// Record the capability ablation for the acceptance artifact.
fn write_caps_json(rows: &[CapsModeRow], storm: &RevocationStorm) {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"mb_per_s\": {:.1}, \"authz_msgs_during_storm\": {}, \
                 \"verify_p50_ns\": {}}}",
                r.mode.as_str(),
                r.mb_per_s,
                r.authz_msgs,
                r.verify_p50_ns.map_or("null".into(), |ns| ns.to_string()),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"bench\": \"caps\",\n  \"write_storm\": [\n{}\n  ],\n  \
         \"revocation_storm\": {{\n    \"containers\": {},\n    \"bump_ms\": {:.3},\n    \
         \"time_to_reject_ms\": {:.3},\n    \"reply_timeout_ms\": {:.0},\n    \
         \"all_previously_valid_caps_rejected\": {}\n  }}\n}}\n",
        lwfs_bench::bench_meta(&[("containers_bumped", storm.containers as u64)]),
        entries.join(",\n"),
        storm.containers,
        storm.bump_ms,
        storm.time_to_reject_ms,
        storm.reply_timeout_ms,
        storm.all_rejected,
    );
    match std::fs::write("BENCH_caps.json", &json) {
        Ok(()) => println!("  JSON written to BENCH_caps.json"),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
}
