//! Regenerate **Table 1**: compute and I/O nodes for MPPs at the DOE
//! laboratories, with the compute:I/O ratio.
//!
//! ```text
//! cargo run -p lwfs-bench --bin table1
//! ```

use lwfs_bench::{CsvOut, ShapeCheck, Table};
use lwfs_models::Machine;

fn main() {
    println!("Table 1: Compute and I/O nodes for MPPs at the DOE laboratories\n");

    let paper_ratios = [58.0, 62.0, 41.0, 64.0];
    let mut table = Table::new(&["Computer", "Compute Nodes", "I/O Nodes", "Ratio"]);
    let mut csv = CsvOut::new("table1", &["machine", "compute_nodes", "io_nodes", "ratio"]);
    let mut shapes = ShapeCheck::new();

    for (machine, paper) in Machine::table1().iter().zip(paper_ratios) {
        let ratio = machine.ratio();
        table.row(&[
            machine.name.to_string(),
            machine.compute_nodes.to_string(),
            machine.io_nodes.to_string(),
            format!("{:.0}:1", ratio),
        ]);
        csv.row(&[
            machine.name.to_string(),
            machine.compute_nodes.to_string(),
            machine.io_nodes.to_string(),
            format!("{ratio:.2}"),
        ]);
        shapes.check_range(
            &format!("{} ratio vs paper {paper:.0}:1", machine.name),
            ratio,
            paper - 1.0,
            paper + 1.0,
        );
    }
    table.print();
    shapes.check(
        "compute nodes outnumber I/O nodes by 1–2 orders of magnitude (§2.1)",
        Machine::table1().iter().all(|m| m.ratio() >= 10.0 && m.ratio() <= 100.0),
    );

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    std::process::exit(if ok { 0 } else { 1 });
}
