//! Regenerate **Figure 9**: checkpoint dump throughput (MB/s) as a
//! function of client processes, for the three implementations and
//! 2/4/8/16 storage servers — 512 MB per process, mean ± stddev over 5
//! seeded trials, exactly the paper's protocol.
//!
//! ```text
//! cargo run --release -p lwfs-bench --bin figure9          # full grid
//! cargo run -p lwfs-bench --bin figure9 -- --smoke          # quick grid
//! cargo run --release -p lwfs-bench --bin figure9 -- \
//!     --metrics-out results/figure9_metrics.json   # + functional metrics
//! cargo run --release -p lwfs-bench --bin figure9 -- \
//!     --trace-out results/figure9_trace.json   # + Chrome/Perfetto trace
//! cargo run --release -p lwfs-bench --bin figure9 -- \
//!     --telemetry-out results/figure9_telemetry.jsonl   # + monitored probe
//! ```

use lwfs_bench::{pm, CsvOut, ShapeCheck, Table};
use lwfs_models::{Calibration, CkptImpl, DumpSim, Machine};
use lwfs_sim::Summary;
use lwfs_workload::ExperimentGrid;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if lwfs_bench::transport_arg() == lwfs_core::TransportKind::Tcp {
        println!("(--transport tcp: functional probes run over the socket fabric)\n");
    }
    let grid = if smoke { ExperimentGrid::smoke() } else { ExperimentGrid::paper() };
    let machine = Machine::dev_cluster();
    let calib = Calibration::default();
    let bytes_per_client = 512 * 1_000_000u64;

    println!(
        "Figure 9: checkpoint dump throughput, 512 MB per process, {} trials/point\n",
        grid.trials
    );

    let mut csv = CsvOut::new(
        "figure9",
        &["impl", "servers", "clients", "throughput_mbps_mean", "throughput_mbps_sd"],
    );
    // measured[impl][servers][clients] -> Summary
    let mut measured: std::collections::HashMap<(CkptImpl, usize, usize), Summary> =
        std::collections::HashMap::new();

    for impl_kind in CkptImpl::all() {
        println!("== {} ==", impl_kind.label());
        let mut header = vec!["clients".to_string()];
        header.extend(grid.server_counts.iter().map(|s| format!("{s} servers (MB/s)")));
        let mut table = Table::from_header(header);

        for &clients in &grid.client_counts {
            let mut cells = vec![clients.to_string()];
            for &servers in &grid.server_counts {
                let mut summary = Summary::new();
                for trial in 0..grid.trials {
                    let sim = DumpSim {
                        machine: machine.clone(),
                        calib: calib.clone(),
                        impl_kind,
                        clients,
                        servers,
                        bytes_per_client,
                    };
                    let r = sim.run(0xF19_0009 ^ trial);
                    summary.add(r.throughput_mbps);
                }
                cells.push(pm(summary.mean(), summary.stddev()));
                csv.row(&[
                    impl_kind.label().to_string(),
                    servers.to_string(),
                    clients.to_string(),
                    format!("{:.1}", summary.mean()),
                    format!("{:.2}", summary.stddev()),
                ]);
                measured.insert((impl_kind, servers, clients), summary);
            }
            table.row(&cells);
        }
        table.print();
        println!();
    }

    // Shape checks against the paper's Figure 9.
    let max_clients = *grid.client_counts.last().unwrap();
    let mut shapes = ShapeCheck::new();
    let get = |k: CkptImpl, s: usize, c: usize| measured[&(k, s, c)].mean();

    if grid.server_counts.contains(&16) {
        // Plateaus at 16 servers ≈ 1.4–1.6 GB/s in the paper's panels for
        // LWFS and file-per-process.
        shapes.check_range(
            "LWFS plateau @16 servers (paper ~1400-1600 MB/s)",
            get(CkptImpl::LwfsObjPerProc, 16, max_clients),
            1200.0,
            1650.0,
        );
        shapes.check_range(
            "file-per-process plateau @16 servers (paper ~1400-1600 MB/s)",
            get(CkptImpl::LustreFilePerProc, 16, max_clients),
            1200.0,
            1650.0,
        );
    }
    for &servers in &grid.server_counts {
        let fpp = get(CkptImpl::LustreFilePerProc, servers, max_clients);
        let shared = get(CkptImpl::LustreShared, servers, max_clients);
        shapes.check_range(
            &format!("shared-file / file-per-process @{servers} servers (paper: ~0.5)"),
            shared / fpp,
            0.35,
            0.65,
        );
        let lwfs = get(CkptImpl::LwfsObjPerProc, servers, max_clients);
        shapes.check_range(
            &format!("LWFS / file-per-process dump parity @{servers} servers (paper: ~1.0)"),
            lwfs / fpp,
            0.9,
            1.15,
        );
    }
    // Throughput grows with server count (the family ordering in every
    // panel).
    for impl_kind in CkptImpl::all() {
        let mut prev = 0.0;
        let mut monotone = true;
        for &servers in &grid.server_counts {
            let v = get(impl_kind, servers, max_clients);
            monotone &= v > prev;
            prev = v;
        }
        shapes.check(format!("{}: curves ordered by server count", impl_kind.label()), monotone);
    }

    let ok = shapes.report();
    match csv.finish() {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    lwfs_bench::maybe_dump_metrics();
    std::process::exit(if ok { 0 } else { 1 });
}
