//! Distributed-trace assembly and export.
//!
//! [`TraceCollector`] harvests span logs, normalizes per-process epochs
//! onto one shared timeline, groups spans by their wire-propagated
//! `trace_id`, and exports either Chrome `trace_event` JSON (loadable in
//! `about:tracing` / Perfetto) or a compact text tree. The
//! [`FlightRecorder`] pins complete traces of outlier operations so they
//! survive the bounded span ring.
//!
//! **Epoch normalization caveat:** every `SpanLog` timestamps spans
//! relative to its own creation instant. In this workspace all nodes of
//! one simulated cluster share a single fabric-wide registry (one log,
//! one epoch), so offsets are zero. A genuinely multi-process deployment
//! must measure each process's epoch skew out of band and pass it to
//! [`TraceCollector::add_node`]; the collector only shifts timestamps,
//! it cannot discover skew itself.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;

use crate::registry::json_str;
use crate::span::{SpanLog, SpanRecord, TOTAL_STAGE};

/// One assembled distributed trace: every retained span, on every node,
/// that carried this `trace_id`.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub trace_id: u64,
    /// Spans sorted by `(start_ns, dur_ns desc)` so parents precede the
    /// stages they contain.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Distinct node ids that contributed spans.
    pub fn nodes(&self) -> Vec<u32> {
        let mut nids: Vec<u32> = self.spans.iter().map(|s| s.nid).collect();
        nids.sort_unstable();
        nids.dedup();
        nids
    }

    /// The longest [`TOTAL_STAGE`] span — the end-to-end latency as seen
    /// by the outermost participant (normally the client). An orphan
    /// trace (no `total` arrived — a v3 peer, or a partially scraped
    /// node) falls back to its span extent so it still sorts and renders
    /// meaningfully instead of reporting zero.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == TOTAL_STAGE)
            .map(|s| s.dur_ns)
            .max()
            .unwrap_or_else(|| self.extent_ns())
    }

    /// Wall span covered by all spans: max end minus min start.
    pub fn extent_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.start_ns.saturating_add(s.dur_ns)).max().unwrap_or(0);
        end.saturating_sub(start)
    }
}

/// Assembles spans from one or more nodes into per-`trace_id` traces.
#[derive(Debug, Default)]
pub struct TraceCollector {
    spans: Vec<SpanRecord>,
}

impl TraceCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest spans already on the shared timeline (the single-registry
    /// case: one fabric-wide `SpanLog`, offsets are zero by construction).
    pub fn add_spans(&mut self, spans: impl IntoIterator<Item = SpanRecord>) {
        self.spans.extend(spans);
    }

    /// Ingest one process's span log, stamping `nid` over any zero node
    /// ids and shifting its private epoch onto the collector's shared
    /// timeline by `epoch_offset_ns` (that process's epoch instant minus
    /// the reference epoch, in nanoseconds; negative when the process
    /// started before the reference). Skew must be measured out of band —
    /// see the module docs.
    pub fn add_node(&mut self, nid: u32, epoch_offset_ns: i64, log: &SpanLog) {
        self.add_node_spans(nid, epoch_offset_ns, log.recent(usize::MAX));
    }

    /// [`Self::add_node`] for spans already extracted from a node —
    /// e.g. scraped off the wire via `GetFlightTraces` — applying the
    /// same nid stamping and epoch-offset skew correction.
    pub fn add_node_spans(
        &mut self,
        nid: u32,
        epoch_offset_ns: i64,
        spans: impl IntoIterator<Item = SpanRecord>,
    ) {
        for mut s in spans {
            if s.nid == 0 {
                s.nid = nid;
            }
            s.start_ns = s.start_ns.saturating_add_signed(epoch_offset_ns);
            self.spans.push(s);
        }
    }

    /// All assembled traces, largest end-to-end latency first.
    pub fn traces(&self) -> Vec<Trace> {
        let mut by_id: BTreeMap<u64, Trace> = BTreeMap::new();
        for s in &self.spans {
            let t = by_id
                .entry(s.trace_id)
                .or_insert_with(|| Trace { trace_id: s.trace_id, spans: Vec::new() });
            t.spans.push(s.clone());
        }
        let mut out: Vec<Trace> = by_id.into_values().collect();
        for t in &mut out {
            t.spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.dur_ns.cmp(&a.dur_ns)));
        }
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns()));
        out
    }

    /// The assembled trace for one id, if any span carried it.
    pub fn trace(&self, trace_id: u64) -> Option<Trace> {
        self.traces().into_iter().find(|t| t.trace_id == trace_id)
    }

    /// Export every assembled trace as Chrome `trace_event` JSON.
    ///
    /// Complete events (`ph: "X"`), microsecond timestamps; `pid` is the
    /// recording node, `tid` a per-request lane within it, so Perfetto
    /// renders one process track per node with the request's stages
    /// nested under its `total` span. Full-width ids travel as hex
    /// strings in `args` (JSON numbers lose u64 precision).
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut lanes: HashMap<(u32, u64), u64> = HashMap::new();
        let mut out = String::from("{\"traceEvents\": [");
        let mut first = true;
        let mut emit = |out: &mut String,
                        tid: u64,
                        name: &str,
                        nid: u32,
                        trace_id: u64,
                        req_id: u64,
                        start_ns: u64,
                        dur_ns: u64| {
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(
                out,
                "{sep}\n  {{\"name\": {}, \"cat\": \"lwfs\", \"ph\": \"X\", \
                 \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"trace_id\": \"{:#x}\", \"req_id\": \"{:#x}\"}}}}",
                json_str(name),
                start_ns / 1000,
                start_ns % 1000,
                dur_ns / 1000,
                dur_ns % 1000,
                nid,
                tid,
                trace_id,
                req_id,
            );
        };
        for t in self.traces() {
            // Orphan participants (no `total` arrived) get a synthetic
            // root covering their span extent, so viewers still nest
            // their stages under a parent bar instead of dropping them
            // onto a bare lane. `lwfs-inspect` skips the `orphan` stage
            // when re-ingesting.
            let mut rooted: HashSet<(u32, u64)> = HashSet::new();
            for s in t.spans.iter().filter(|s| s.stage == TOTAL_STAGE) {
                rooted.insert((s.nid, s.req_id));
            }
            for s in &t.spans {
                let next = lanes.len() as u64 + 1;
                let tid = *lanes.entry((s.nid, s.req_id)).or_insert(next);
                if rooted.insert((s.nid, s.req_id)) {
                    let mine = t.spans.iter().filter(|o| o.nid == s.nid && o.req_id == s.req_id);
                    let start = mine.clone().map(|o| o.start_ns).min().unwrap_or(0);
                    let end =
                        mine.map(|o| o.start_ns.saturating_add(o.dur_ns)).max().unwrap_or(start);
                    let name = format!("{}.orphan", s.op);
                    emit(&mut out, tid, &name, s.nid, s.trace_id, s.req_id, start, end - start);
                }
                let name = format!("{}.{}", s.op, s.stage);
                emit(&mut out, tid, &name, s.nid, s.trace_id, s.req_id, s.start_ns, s.dur_ns);
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
        out
    }

    /// Compact text rendering of one trace: one block per `(nid, req_id)`
    /// participant, its `total` first, stages indented underneath.
    pub fn text_tree(&self, trace_id: u64) -> String {
        use std::fmt::Write as _;
        let Some(t) = self.trace(trace_id) else {
            return format!("trace {trace_id:#x}: no spans\n");
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {:#x}: {} spans on {} node(s), {:.3} ms end to end",
            t.trace_id,
            t.spans.len(),
            t.nodes().len(),
            t.total_ns() as f64 / 1e6
        );
        // Participants in order of first activity.
        let mut participants: Vec<(u32, u64)> = Vec::new();
        for s in &t.spans {
            if !participants.contains(&(s.nid, s.req_id)) {
                participants.push((s.nid, s.req_id));
            }
        }
        for (nid, req_id) in participants {
            let mine: Vec<&SpanRecord> =
                t.spans.iter().filter(|s| s.nid == nid && s.req_id == req_id).collect();
            let op = mine.first().map(|s| s.op).unwrap_or("?");
            let total = mine.iter().find(|s| s.stage == TOTAL_STAGE);
            match total {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "  [nid {nid}] {op} req {req_id:#x}  total {:.3} ms",
                        s.dur_ns as f64 / 1e6
                    );
                }
                None => {
                    // Orphan participant: its `total` never arrived, so
                    // report the extent its stages cover and say so.
                    let start = mine.iter().map(|s| s.start_ns).min().unwrap_or(0);
                    let end = mine
                        .iter()
                        .map(|s| s.start_ns.saturating_add(s.dur_ns))
                        .max()
                        .unwrap_or(start);
                    let _ = writeln!(
                        out,
                        "  [nid {nid}] {op} req {req_id:#x}  orphan (no total span; \
                         stages cover {:.3} ms)",
                        (end - start) as f64 / 1e6
                    );
                }
            }
            for s in mine.iter().filter(|s| s.stage != TOTAL_STAGE) {
                let _ = writeln!(
                    out,
                    "    {:<28} {:>12.3} us  @ {:.3} us",
                    format!("{}.{}", s.op, s.stage),
                    s.dur_ns as f64 / 1e3,
                    s.start_ns as f64 / 1e3
                );
            }
        }
        out
    }
}

/// One trace pinned by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct PinnedTrace {
    pub trace_id: u64,
    /// Largest end-to-end duration observed for the trace so far.
    pub total_ns: u64,
    pub spans: Vec<SpanRecord>,
    /// Dedup keys of spans already merged (late observes re-offer spans
    /// the pin-time ring scan already captured).
    seen: HashSet<(u64, &'static str, &'static str, u64)>,
}

impl PinnedTrace {
    fn merge(&mut self, spans: Vec<SpanRecord>) {
        for s in spans {
            if self.seen.insert((s.req_id, s.op, s.stage, s.start_ns)) {
                self.spans.push(s);
            }
        }
    }
}

/// Slow-op flight recorder: pins complete traces of outlier operations
/// (by latency threshold or top-K competition) so they survive the span
/// ring's eviction. Observed on every finished op; pinning itself is
/// rare by construction.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Ops faster than this never pin (`0` = no floor, pure top-K).
    threshold_ns: u64,
    /// Maximum pinned traces; the slowest K are kept.
    top_k: usize,
    pinned: Mutex<Vec<PinnedTrace>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(0, 8)
    }
}

impl FlightRecorder {
    pub fn new(threshold_ns: u64, top_k: usize) -> Self {
        Self { threshold_ns, top_k: top_k.max(1), pinned: Mutex::new(Vec::new()) }
    }

    /// Offer a finished operation (its `total` just closed). If the trace
    /// is already pinned, its spans merge in (indexed `for_req` lookup).
    /// Otherwise it pins when it clears the threshold and either fits or
    /// beats the current slowest pinned trace — the pin does one ring
    /// scan to capture spans other participants already recorded.
    pub fn observe(&self, log: &SpanLog, req_id: u64, trace_id: u64, total_ns: u64) {
        let mut pinned = self.pinned.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(t) = pinned.iter_mut().find(|t| t.trace_id == trace_id) {
            t.total_ns = t.total_ns.max(total_ns);
            t.merge(log.for_req(req_id));
            return;
        }
        if total_ns < self.threshold_ns {
            return;
        }
        if pinned.len() >= self.top_k {
            let (idx, min) = pinned
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.total_ns)
                .map(|(i, t)| (i, t.total_ns))
                .expect("top_k >= 1");
            if total_ns <= min {
                return;
            }
            pinned.swap_remove(idx);
        }
        let mut t = PinnedTrace { trace_id, total_ns, spans: Vec::new(), seen: HashSet::new() };
        t.merge(log.for_trace(trace_id));
        pinned.push(t);
    }

    /// Pinned traces, slowest first.
    pub fn pinned(&self) -> Vec<PinnedTrace> {
        let mut out = self.pinned.lock().unwrap_or_else(|p| p.into_inner()).clone();
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out
    }

    pub fn clear(&self) {
        self.pinned.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        req_id: u64,
        trace_id: u64,
        nid: u32,
        op: &'static str,
        stage: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord { req_id, trace_id, nid, op, stage, start_ns, dur_ns }
    }

    fn replicated_write() -> Vec<SpanRecord> {
        vec![
            span(1, 1, 0, "client.mutate", "send", 0, 900),
            span(1, 1, 0, "client.mutate", TOTAL_STAGE, 0, 1000),
            span(2, 1, 1100, "storage.write", "pull", 100, 200),
            span(2, 1, 1100, "storage.write", TOTAL_STAGE, 100, 700),
            span(3, 1, 1101, "storage.repl_ship", "apply", 500, 100),
            span(3, 1, 1101, "storage.repl_ship", TOTAL_STAGE, 450, 200),
            span(9, 2, 1100, "storage.read", TOTAL_STAGE, 2000, 10),
        ]
    }

    #[test]
    fn collector_groups_by_trace_and_orders_by_latency() {
        let mut c = TraceCollector::new();
        c.add_spans(replicated_write());
        let traces = c.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 1, "slowest trace first");
        assert_eq!(traces[0].total_ns(), 1000);
        assert_eq!(traces[0].nodes(), vec![0, 1100, 1101]);
        assert_eq!(traces[1].trace_id, 2);
        assert!(c.trace(3).is_none());
    }

    #[test]
    fn add_node_stamps_nid_and_shifts_epoch() {
        let log = SpanLog::default();
        log.record(span(1, 1, 0, "client.mutate", TOTAL_STAGE, 1000, 10));
        let mut c = TraceCollector::new();
        c.add_node(7, -500, &log);
        let t = c.trace(1).unwrap();
        assert_eq!(t.spans[0].nid, 7);
        assert_eq!(t.spans[0].start_ns, 500);
        // Positive shift and an already-stamped nid.
        let log2 = SpanLog::default();
        log2.record(span(2, 1, 42, "storage.write", TOTAL_STAGE, 0, 5));
        c.add_node(9, 100, &log2);
        let t = c.trace(1).unwrap();
        let shifted = t.spans.iter().find(|s| s.req_id == 2).unwrap();
        assert_eq!(shifted.nid, 42, "explicit nid wins over add_node's");
        assert_eq!(shifted.start_ns, 100);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let mut c = TraceCollector::new();
        c.add_spans(replicated_write());
        let json = c.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"pid\": 1101"));
        assert!(json.contains("\"name\": \"storage.repl_ship.apply\""));
        assert!(json.contains("\"trace_id\": \"0x1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Microsecond scale: 450ns -> 0.450us.
        assert!(json.contains("\"ts\": 0.450"));
    }

    #[test]
    fn text_tree_lists_participants_with_stages() {
        let mut c = TraceCollector::new();
        c.add_spans(replicated_write());
        let tree = c.text_tree(1);
        assert!(tree.contains("3 node(s)"));
        assert!(tree.contains("[nid 0] client.mutate"));
        assert!(tree.contains("[nid 1100] storage.write"));
        assert!(tree.contains("storage.repl_ship.apply"));
        assert!(c.text_tree(77).contains("no spans"));
    }

    #[test]
    fn orphan_spans_render_under_synthetic_root() {
        // Trace 5's parent never arrived (v3 peer / partial scrape):
        // only two stage spans on one node, no TOTAL anywhere.
        let mut c = TraceCollector::new();
        c.add_spans(vec![
            span(4, 5, 1100, "storage.write", "pull", 1_000_000, 400_000),
            span(4, 5, 1100, "storage.write", "store_write", 1_400_000, 200_000),
            span(9, 2, 1100, "storage.read", TOTAL_STAGE, 2_000_000, 10),
        ]);
        // The orphan trace sorts by its span extent, not zero.
        let t = c.trace(5).unwrap();
        assert_eq!(t.total_ns(), 600_000);
        assert_eq!(c.traces()[0].trace_id, 5, "extent-ranked above the 10ns read");
        // Text tree names the orphan instead of claiming a 0ms total.
        let tree = c.text_tree(5);
        assert!(tree.contains("orphan"), "{tree}");
        assert!(tree.contains("0.600 ms"), "{tree}");
        assert!(tree.contains("storage.write.pull"), "{tree}");
        // Chrome export nests the stages under a synthetic root span.
        let json = c.to_chrome_json();
        assert!(json.contains("\"name\": \"storage.write.orphan\""), "{json}");
        assert!(json.contains("\"dur\": 600.000"), "{json}");
        // Rooted participants get no synthetic span.
        assert_eq!(json.matches(".orphan").count(), 1, "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn flight_recorder_pins_outliers_and_merges_late_spans() {
        let log = SpanLog::default();
        let fr = FlightRecorder::new(0, 2);
        // Three traces; capacity two — the fastest is evicted.
        for (trace, total) in [(1u64, 100u64), (2, 500), (3, 300)] {
            log.record(span(trace * 10, trace, 1100, "storage.write", TOTAL_STAGE, 0, total));
            fr.observe(&log, trace * 10, trace, total);
        }
        let pinned = fr.pinned();
        assert_eq!(pinned.len(), 2);
        assert_eq!(pinned[0].trace_id, 2);
        assert_eq!(pinned[1].trace_id, 3);
        // A slower op of an already-pinned trace merges and raises total.
        log.record(span(21, 2, 0, "client.mutate", TOTAL_STAGE, 0, 900));
        fr.observe(&log, 21, 2, 900);
        let pinned = fr.pinned();
        assert_eq!(pinned[0].total_ns, 900);
        assert_eq!(pinned[0].spans.len(), 2, "client span merged into the pin");
        // Merging is idempotent.
        fr.observe(&log, 21, 2, 900);
        assert_eq!(fr.pinned()[0].spans.len(), 2);
        fr.clear();
        assert!(fr.pinned().is_empty());
    }

    #[test]
    fn flight_recorder_threshold_gates_pinning() {
        let log = SpanLog::default();
        let fr = FlightRecorder::new(200, 4);
        log.record(span(1, 1, 0, "storage.write", TOTAL_STAGE, 0, 150));
        fr.observe(&log, 1, 1, 150);
        assert!(fr.pinned().is_empty(), "below threshold never pins");
        log.record(span(2, 2, 0, "storage.write", TOTAL_STAGE, 0, 250));
        fr.observe(&log, 2, 2, 250);
        assert_eq!(fr.pinned().len(), 1);
        // Pin-time ring scan captures spans other reqs already recorded.
        log.record(span(30, 3, 1100, "storage.write", "pull", 0, 40));
        log.record(span(31, 3, 1101, "storage.repl_ship", TOTAL_STAGE, 10, 60));
        log.record(span(30, 3, 1100, "storage.write", TOTAL_STAGE, 0, 400));
        fr.observe(&log, 30, 3, 400);
        let t = fr.pinned().into_iter().find(|t| t.trace_id == 3).unwrap();
        assert_eq!(t.spans.len(), 3, "backup span captured by the pin scan");
    }
}
