//! Critical-path attribution: blame every nanosecond of a slow trace.
//!
//! Given an assembled cross-node [`Trace`], [`attribute`] finds its root
//! span (the longest [`TOTAL_STAGE`] span — the end-to-end latency as
//! seen by the outermost participant) and partitions the root interval
//! among the spans that cover it. Each elementary sub-interval is
//! claimed by the *innermost* covering span (latest start, then shortest
//! duration), so nested stages beat their parents and the blame lands on
//! the most specific cause that was live at that instant. Claimed time
//! is then classified into a small, fixed [`BlameStage`] taxonomy
//! (dispatch queue, conflict defer, cap verify, WAL append/fsync, ship
//! RTT, backup apply, ...).
//!
//! **Invariant:** the per-stage blames of an [`Attribution`] sum to
//! exactly the root span's `total_ns` — every nanosecond is accounted
//! for, with [`BlameStage::Unattributed`] absorbing intervals no
//! sub-span covers (time the root spent that no instrumented stage
//! explains). The sweep partitions the root interval exactly, so the
//! invariant holds by construction; the proptests below pin it against
//! arbitrary span soups, arrival reordering, and uniform node-skew
//! shifts.
//!
//! [`TailReport`] aggregates many attributions into a fleet-wide p99
//! decomposition: the slowest 1% of traces, their summed blame per
//! stage, and the dominant stage — the one-line answer to "where does
//! our tail latency go?".

use std::collections::BTreeMap;

use crate::span::TOTAL_STAGE;
use crate::trace::Trace;

/// The blame taxonomy: where time on the critical path is spent.
///
/// Variants are ordered roughly along the request path; the discriminant
/// order only matters as a deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlameStage {
    /// Client-side retry/refresh wait (map refresh after a miss).
    ClientRetry,
    /// Client-side send/RPC time not explained by server stages.
    ClientRtt,
    /// Time parked in the dispatcher queue before a worker picked it up.
    DispatchQueue,
    /// Conflict-serialization defer behind an in-flight mutation.
    ConflictDefer,
    /// Capability verification (authz round-trip or local crypto).
    CapVerify,
    /// Server-directed data pull from the client.
    DataPull,
    /// The object store write/read itself.
    StoreWrite,
    /// WAL record append (buffer + encode).
    WalAppend,
    /// WAL fsync stall.
    WalFsync,
    /// Replica ship round-trip (includes retry windows against a
    /// partitioned or slow backup — the classic tail amplifier).
    ShipRtt,
    /// Backup-side apply (log + store write on the replica).
    BackupApply,
    /// Two-phase-commit coordination (prepare/commit phases).
    TxnPhase,
    /// Instrumented stage outside the taxonomy.
    Other,
    /// Root time no sub-span covers.
    Unattributed,
}

impl BlameStage {
    /// Stable snake_case name, used in alert details and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            BlameStage::ClientRetry => "client_retry",
            BlameStage::ClientRtt => "client_rtt",
            BlameStage::DispatchQueue => "dispatch_queue",
            BlameStage::ConflictDefer => "conflict_defer",
            BlameStage::CapVerify => "cap_verify",
            BlameStage::DataPull => "data_pull",
            BlameStage::StoreWrite => "store_write",
            BlameStage::WalAppend => "wal_append",
            BlameStage::WalFsync => "wal_fsync",
            BlameStage::ShipRtt => "ship_rtt",
            BlameStage::BackupApply => "backup_apply",
            BlameStage::TxnPhase => "txn_phase",
            BlameStage::Other => "other",
            BlameStage::Unattributed => "unattributed",
        }
    }
}

impl std::fmt::Display for BlameStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Map an instrumented `(op, stage)` pair onto the blame taxonomy.
///
/// Exact stage names win over op-family fallbacks, so a future
/// `txn.prepare` span with a `queue_wait` stage still blames the queue.
pub fn classify(op: &str, stage: &str) -> BlameStage {
    match (op, stage) {
        ("wal", "append") => return BlameStage::WalAppend,
        ("wal", "fsync") => return BlameStage::WalFsync,
        ("repl", "ship") | ("repl", "ship_retry") => return BlameStage::ShipRtt,
        _ => {}
    }
    match stage {
        "queue_wait" => return BlameStage::DispatchQueue,
        "conflict_defer" | "defer" => return BlameStage::ConflictDefer,
        "authorize" | "verify" => return BlameStage::CapVerify,
        "pull" => return BlameStage::DataPull,
        "store_write" | "store_read" => return BlameStage::StoreWrite,
        "map_refresh" | "retry_wait" => return BlameStage::ClientRetry,
        "prepare" | "commit" | "vote" => return BlameStage::TxnPhase,
        _ => {}
    }
    if op == "storage.repl_ship" {
        return BlameStage::BackupApply;
    }
    if op.contains("txn") {
        return BlameStage::TxnPhase;
    }
    if op.starts_with("authz") || op.starts_with("cap") {
        return BlameStage::CapVerify;
    }
    if op.starts_with("client.") {
        return BlameStage::ClientRtt;
    }
    BlameStage::Other
}

/// One trace's critical-path attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    pub trace_id: u64,
    /// Op of the root span the blame decomposes.
    pub root_op: String,
    /// Root span duration; the blames below sum to exactly this.
    pub total_ns: u64,
    /// Blamed nanoseconds per stage, largest first; only nonzero
    /// entries appear.
    pub blames: Vec<(BlameStage, u64)>,
}

impl Attribution {
    /// Nanoseconds blamed on `stage` (0 when absent).
    pub fn blamed(&self, stage: BlameStage) -> u64 {
        self.blames.iter().find(|(s, _)| *s == stage).map(|(_, ns)| *ns).unwrap_or(0)
    }

    /// Fraction of the root total blamed on `stage`.
    pub fn share(&self, stage: BlameStage) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.blamed(stage) as f64 / self.total_ns as f64
    }

    /// The stage carrying the most blame, with its share of the total.
    pub fn dominant(&self) -> Option<(BlameStage, f64)> {
        let (s, ns) = *self.blames.first()?;
        if self.total_ns == 0 {
            return None;
        }
        Some((s, ns as f64 / self.total_ns as f64))
    }
}

/// Attribute a trace's root span. Returns `None` for an empty trace.
pub fn attribute(trace: &Trace) -> Option<Attribution> {
    attribute_with_claims(trace).map(|(a, _)| a)
}

/// Like [`attribute`], additionally returning the nanoseconds each input
/// span claimed on the critical path (parallel to `trace.spans`; the
/// root span's entry holds the unattributed remainder). This feeds the
/// per-span blame annotations in `lwfs-inspect`'s text trees.
pub fn attribute_with_claims(trace: &Trace) -> Option<(Attribution, Vec<u64>)> {
    let spans = &trace.spans;
    if spans.is_empty() {
        return None;
    }
    // Root: the longest TOTAL span; ties break on span content (never
    // on position), so the choice is stable under arrival reordering. A
    // trace with no TOTAL at all (partially scraped, or a v3 peer) gets
    // a synthetic root covering the span extent.
    let root_idx = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.stage == TOTAL_STAGE)
        .max_by(|(_, a), (_, b)| {
            a.dur_ns
                .cmp(&b.dur_ns)
                .then(b.start_ns.cmp(&a.start_ns))
                .then(b.req_id.cmp(&a.req_id))
                .then(b.op.cmp(a.op))
                .then(b.nid.cmp(&a.nid))
        })
        .map(|(i, _)| i);
    let (root_start, root_end, root_op) = match root_idx {
        Some(i) => {
            let s = &spans[i];
            (s.start_ns, s.start_ns.saturating_add(s.dur_ns), s.op.to_string())
        }
        None => {
            let start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
            let end =
                spans.iter().map(|s| s.start_ns.saturating_add(s.dur_ns)).max().unwrap_or(start);
            // Name the synthetic root after the earliest span (content
            // tie-breaks keep this order-independent too).
            let first = spans
                .iter()
                .min_by(|a, b| {
                    a.start_ns
                        .cmp(&b.start_ns)
                        .then(a.op.cmp(b.op))
                        .then(a.stage.cmp(b.stage))
                        .then(a.req_id.cmp(&b.req_id))
                        .then(a.nid.cmp(&b.nid))
                })
                .expect("non-empty");
            (start, end, first.op.to_string())
        }
    };
    let total_ns = root_end - root_start;
    let mut claims = vec![0u64; spans.len()];
    if total_ns == 0 {
        let attr =
            Attribution { trace_id: trace.trace_id, root_op, total_ns: 0, blames: Vec::new() };
        return Some((attr, claims));
    }

    // Candidate spans clipped to the root interval. The sweep visits the
    // elementary intervals between all clip boundaries; within each, the
    // innermost covering candidate claims the time.
    struct Cand {
        idx: usize,
        start: u64,
        end: u64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if Some(i) == root_idx {
            continue;
        }
        let start = s.start_ns.max(root_start);
        let end = s.start_ns.saturating_add(s.dur_ns).min(root_end);
        if end > start {
            cands.push(Cand { idx: i, start, end });
        }
    }
    let mut points: Vec<u64> = vec![root_start, root_end];
    for c in &cands {
        points.push(c.start);
        points.push(c.end);
    }
    points.sort_unstable();
    points.dedup();

    let mut totals: BTreeMap<BlameStage, u64> = BTreeMap::new();
    for w in points.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let len = hi - lo;
        let mut best: Option<&Cand> = None;
        for c in cands.iter().filter(|c| c.start <= lo && c.end >= hi) {
            best = Some(match best {
                None => c,
                Some(b) => {
                    // Innermost wins: latest start, then earliest end
                    // (the tightest interval); final tie-break on span
                    // content so the winner is order-independent.
                    let cs = &spans[c.idx];
                    let bs = &spans[b.idx];
                    let ord = c
                        .start
                        .cmp(&b.start)
                        .then(b.end.cmp(&c.end))
                        .then(bs.op.cmp(cs.op))
                        .then(bs.stage.cmp(cs.stage))
                        .then(bs.req_id.cmp(&cs.req_id))
                        .then(bs.nid.cmp(&cs.nid));
                    if ord == std::cmp::Ordering::Greater {
                        c
                    } else {
                        b
                    }
                }
            });
        }
        match best {
            Some(c) => {
                claims[c.idx] += len;
                let s = &spans[c.idx];
                *totals.entry(classify(s.op, s.stage)).or_insert(0) += len;
            }
            None => {
                *totals.entry(BlameStage::Unattributed).or_insert(0) += len;
                if let Some(ri) = root_idx {
                    claims[ri] += len;
                }
            }
        }
    }

    let mut blames: Vec<(BlameStage, u64)> = totals.into_iter().filter(|(_, ns)| *ns > 0).collect();
    blames.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let attr = Attribution { trace_id: trace.trace_id, root_op, total_ns, blames };
    Some((attr, claims))
}

/// Fleet-wide tail decomposition: the slowest 1% of attributed traces
/// (at least one), their blame summed per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailReport {
    /// Attributions aggregated.
    pub traces: usize,
    /// Traces admitted to the tail.
    pub tail: usize,
    /// Tail admission threshold: the p99 end-to-end latency.
    pub threshold_ns: u64,
    /// Summed root time across the tail traces.
    pub total_ns: u64,
    /// Summed blame per stage across the tail, largest first.
    pub blames: Vec<(BlameStage, u64)>,
}

impl TailReport {
    /// Aggregate attributions into a tail decomposition. `None` when
    /// `attrs` is empty. Exactly `ceil(len / 100)` traces are admitted
    /// (ties at the threshold break on trace id), so a fleet of
    /// identical latencies cannot flood the tail.
    pub fn from_attributions(attrs: &[Attribution]) -> Option<TailReport> {
        if attrs.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..attrs.len()).collect();
        order.sort_by(|&a, &b| {
            attrs[b]
                .total_ns
                .cmp(&attrs[a].total_ns)
                .then(attrs[a].trace_id.cmp(&attrs[b].trace_id))
        });
        let tail_n = attrs.len().div_ceil(100).max(1);
        let chosen = &order[..tail_n];
        let threshold_ns = attrs[*chosen.last().expect("tail_n >= 1")].total_ns;
        let mut sums: BTreeMap<BlameStage, u64> = BTreeMap::new();
        let mut total_ns = 0u64;
        for &i in chosen {
            total_ns += attrs[i].total_ns;
            for &(s, ns) in &attrs[i].blames {
                *sums.entry(s).or_insert(0) += ns;
            }
        }
        let mut blames: Vec<(BlameStage, u64)> = sums.into_iter().collect();
        blames.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Some(TailReport { traces: attrs.len(), tail: tail_n, threshold_ns, total_ns, blames })
    }

    /// Nanoseconds blamed on `stage` across the tail.
    pub fn blamed(&self, stage: BlameStage) -> u64 {
        self.blames.iter().find(|(s, _)| *s == stage).map(|(_, ns)| *ns).unwrap_or(0)
    }

    /// Fraction of summed tail time blamed on `stage`.
    pub fn share(&self, stage: BlameStage) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.blamed(stage) as f64 / self.total_ns as f64
    }

    /// The dominant stage across the tail, with its share.
    pub fn dominant(&self) -> Option<(BlameStage, f64)> {
        let (s, ns) = *self.blames.first()?;
        if self.total_ns == 0 {
            return None;
        }
        Some((s, ns as f64 / self.total_ns as f64))
    }

    /// Multi-line text rendering: one `blame <stage> share=<f> ms=<f>`
    /// line per stage (a stable, grep-friendly shape for CI).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tail: {} of {} trace(s) at or above p99 {:.3} ms ({:.3} ms summed)",
            self.tail,
            self.traces,
            self.threshold_ns as f64 / 1e6,
            self.total_ns as f64 / 1e6
        );
        for &(s, ns) in &self.blames {
            let _ = writeln!(
                out,
                "blame {} share={:.3} ms={:.3}",
                s.as_str(),
                self.share(s),
                ns as f64 / 1e6
            );
        }
        if let Some((s, share)) = self.dominant() {
            let _ = writeln!(out, "dominant: {} share={share:.3}", s.as_str());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    fn span(
        req_id: u64,
        nid: u32,
        op: &'static str,
        stage: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord { req_id, trace_id: 1, nid, op, stage, start_ns, dur_ns }
    }

    fn sum_blames(a: &Attribution) -> u64 {
        a.blames.iter().map(|(_, ns)| ns).sum()
    }

    /// A stalled replicated write: 100 total, 5 queue, 10 pull, 70 under
    /// the ship span of which 20 is backup apply, rest unattributed.
    fn stalled_write() -> Trace {
        Trace {
            trace_id: 1,
            spans: vec![
                span(1, 1100, "storage.write", TOTAL_STAGE, 0, 100),
                span(1, 1100, "storage.write", "queue_wait", 0, 5),
                span(1, 1100, "storage.write", "pull", 5, 10),
                span(1, 1100, "repl", "ship", 20, 70),
                span(2, 1101, "storage.repl_ship", "apply", 40, 20),
            ],
        }
    }

    #[test]
    fn blames_partition_the_root_exactly() {
        let (a, claims) = attribute_with_claims(&stalled_write()).unwrap();
        assert_eq!(a.total_ns, 100);
        assert_eq!(sum_blames(&a), 100);
        assert_eq!(a.blamed(BlameStage::DispatchQueue), 5);
        assert_eq!(a.blamed(BlameStage::DataPull), 10);
        assert_eq!(a.blamed(BlameStage::ShipRtt), 50, "ship minus nested apply");
        assert_eq!(a.blamed(BlameStage::BackupApply), 20);
        assert_eq!(a.blamed(BlameStage::Unattributed), 15);
        assert_eq!(a.dominant().unwrap().0, BlameStage::ShipRtt);
        // Claims line up with the span order, root holds the remainder.
        assert_eq!(claims, vec![15, 5, 10, 50, 20]);
    }

    #[test]
    fn nested_stage_beats_parent_and_retry_counts_as_ship() {
        let t = Trace {
            trace_id: 1,
            spans: vec![
                span(1, 1100, "storage.write", TOTAL_STAGE, 0, 100),
                span(1, 1100, "repl", "ship", 0, 100),
                span(1, 1100, "repl", "ship_retry", 10, 90),
                span(1, 1100, "wal", "fsync", 0, 10),
            ],
        };
        let a = attribute(&t).unwrap();
        assert_eq!(sum_blames(&a), 100);
        assert_eq!(a.blamed(BlameStage::WalFsync), 10, "fsync nests inside the ship window");
        assert_eq!(a.blamed(BlameStage::ShipRtt), 90);
    }

    #[test]
    fn trace_without_total_gets_synthetic_root() {
        let t = Trace {
            trace_id: 7,
            spans: vec![
                span(1, 1100, "storage.write", "pull", 100, 50),
                span(1, 1100, "storage.write", "store_write", 150, 30),
            ],
        };
        let a = attribute(&t).unwrap();
        assert_eq!(a.total_ns, 80, "synthetic root covers the span extent");
        assert_eq!(sum_blames(&a), 80);
        assert_eq!(a.blamed(BlameStage::DataPull), 50);
        assert_eq!(a.blamed(BlameStage::StoreWrite), 30);
    }

    #[test]
    fn empty_trace_has_no_attribution() {
        assert!(attribute(&Trace { trace_id: 1, spans: Vec::new() }).is_none());
    }

    #[test]
    fn classification_covers_the_taxonomy() {
        assert_eq!(classify("storage.write", "queue_wait"), BlameStage::DispatchQueue);
        assert_eq!(classify("storage.write", "authorize"), BlameStage::CapVerify);
        assert_eq!(classify("wal", "append"), BlameStage::WalAppend);
        assert_eq!(classify("wal", "fsync"), BlameStage::WalFsync);
        assert_eq!(classify("repl", "ship"), BlameStage::ShipRtt);
        assert_eq!(classify("repl", "ship_retry"), BlameStage::ShipRtt);
        assert_eq!(classify("storage.repl_ship", "apply"), BlameStage::BackupApply);
        assert_eq!(classify("txn.commit", "total"), BlameStage::TxnPhase);
        assert_eq!(classify("client.mutate", "send"), BlameStage::ClientRtt);
        assert_eq!(classify("client.mutate", "map_refresh"), BlameStage::ClientRetry);
        assert_eq!(classify("mystery", "stage"), BlameStage::Other);
    }

    #[test]
    fn tail_report_picks_slowest_percent_and_dominant() {
        // 200 fast traces blamed on the store, one slow one on the ship.
        let mut attrs: Vec<Attribution> = (0..200)
            .map(|i| Attribution {
                trace_id: i,
                root_op: "storage.write".into(),
                total_ns: 1000,
                blames: vec![(BlameStage::StoreWrite, 1000)],
            })
            .collect();
        attrs.push(Attribution {
            trace_id: 999,
            root_op: "storage.write".into(),
            total_ns: 1_000_000,
            blames: vec![(BlameStage::ShipRtt, 900_000), (BlameStage::StoreWrite, 100_000)],
        });
        let tr = TailReport::from_attributions(&attrs).unwrap();
        assert_eq!(tr.traces, 201);
        assert!(tr.tail <= 3, "tail is the slowest ~1%: {}", tr.tail);
        assert_eq!(tr.dominant().unwrap().0, BlameStage::ShipRtt);
        assert!(tr.share(BlameStage::ShipRtt) > 0.5);
        let text = tr.render();
        assert!(text.contains("blame ship_rtt share="), "{text}");
        assert!(text.contains("dominant: ship_rtt"), "{text}");
        assert!(TailReport::from_attributions(&[]).is_none());
    }

    const OPS: [&str; 4] = ["storage.write", "client.mutate", "repl", "wal"];
    const STAGES: [&str; 6] = ["queue_wait", "pull", "ship", "fsync", "send", "apply"];

    /// Raw tuple rows the shim's tuple strategies can generate; mapped
    /// into span records inside each property.
    type RawSpan = (usize, usize, u64, u64, u64, u32);

    fn raw_strategy() -> impl proptest::Strategy<Value = Vec<RawSpan>> {
        proptest::collection::vec(
            (0usize..OPS.len(), 0usize..STAGES.len(), 0u64..8, 0u64..10_000, 0u64..5_000, 0u32..4),
            1..24,
        )
    }

    fn build_spans(raw: &[RawSpan]) -> Vec<SpanRecord> {
        raw.iter()
            .map(|&(op, stage, req, start, dur, nid)| SpanRecord {
                req_id: req,
                trace_id: 1,
                nid: 1100 + nid,
                op: OPS[op],
                stage: if req % 3 == 0 && stage == 0 { TOTAL_STAGE } else { STAGES[stage] },
                start_ns: start,
                dur_ns: dur,
            })
            .collect()
    }

    proptest! {
        /// The attribution invariant: blamed time sums to exactly the
        /// root total, for arbitrary span soups (with or without TOTAL
        /// spans, overlapping, zero-length, out of order).
        #[test]
        fn blames_sum_to_root_total(raw in raw_strategy()) {
            let t = Trace { trace_id: 1, spans: build_spans(&raw) };
            let (a, claims) = attribute_with_claims(&t).unwrap();
            prop_assert_eq!(sum_blames(&a), a.total_ns);
            prop_assert_eq!(claims.len(), t.spans.len());
            // Claims on the critical path cannot exceed the root total.
            prop_assert!(claims.iter().sum::<u64>() <= a.total_ns);
        }

        /// Attribution is stable under span arrival reordering: the
        /// collector may see node logs in any order.
        #[test]
        fn attribution_stable_under_reordering(
            raw in raw_strategy(),
            seed in 0usize..1000,
        ) {
            let spans = build_spans(&raw);
            let a1 = attribute(&Trace { trace_id: 1, spans: spans.clone() }).unwrap();
            let mut shuffled = spans;
            // Deterministic pseudo-shuffle driven by the seed.
            let n = shuffled.len();
            for i in 0..n {
                let j = (seed.wrapping_mul(31).wrapping_add(i * 17)) % n;
                shuffled.swap(i, j);
            }
            let a2 = attribute(&Trace { trace_id: 1, spans: shuffled }).unwrap();
            prop_assert_eq!(a1, a2);
        }

        /// Attribution is invariant under a uniform time shift — the
        /// node-skew epoch offsets `add_node` applies move every span by
        /// the same amount, which must not change any blame.
        #[test]
        fn attribution_invariant_under_uniform_shift(
            raw in raw_strategy(),
            shift in 0u64..1_000_000,
        ) {
            let spans = build_spans(&raw);
            let a1 = attribute(&Trace { trace_id: 1, spans: spans.clone() }).unwrap();
            let shifted: Vec<SpanRecord> = spans
                .into_iter()
                .map(|mut s| { s.start_ns += shift; s })
                .collect();
            let a2 = attribute(&Trace { trace_id: 1, spans: shifted }).unwrap();
            prop_assert_eq!(a1.total_ns, a2.total_ns);
            prop_assert_eq!(a1.blames, a2.blames);
        }
    }
}
