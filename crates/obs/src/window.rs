//! Windowed aggregation: delta snapshots over a live registry (or a
//! scraped node) and rolling windows of them.
//!
//! Every metric in the registry is cumulative-since-boot; a monitor wants
//! *rates* ("writes per second over the last 100 ms") and *interval
//! quantiles* ("p99 write latency this window"), both of which require
//! subtracting two observations. Counters subtract trivially. Histograms
//! subtract only in bucket form — a quantile summary is not invertible —
//! so the window layer works on [`HistogramInterval`]s: the sparse
//! nonzero buckets of the log-linear layout, which subtract (newer scrape
//! minus older scrape → this window's observations) and add (same window
//! across nodes → cluster interval) exactly, losing nothing beyond the
//! layout's own ≤ 12.5% bucket resolution.
//!
//! The pipeline is: [`MetricFrame::capture`] (or a frame built from a
//! scraped wire snapshot) → [`WindowTracker::observe`] → [`WindowDelta`]
//! with per-window counter deltas, rates, gauge levels, and histogram
//! intervals.

use crate::metrics::{bucket_mid, Histogram, HistogramSnapshot, BUCKETS};
use std::collections::VecDeque;

/// A histogram's observations over one interval, in mergeable sparse
/// bucket form. See the module docs for why buckets rather than
/// quantiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramInterval {
    pub count: u64,
    pub sum: u64,
    /// Largest observation. Exact for cumulative captures; for a
    /// [`delta`](HistogramInterval::delta) it is the tightest bound the
    /// bucket layout supports (the top nonzero delta bucket, capped by
    /// the cumulative max).
    pub max: u64,
    /// `(bucket_index, count)` pairs, nonzero only, ascending index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramInterval {
    /// Cumulative capture of a live histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self { count: h.count(), sum: h.sum(), max: h.max_value(), buckets: h.bucket_counts() }
    }

    /// Build from wire parts (a scraped `TelemetrySnapshot` histogram).
    /// Hostile or malformed input is tolerated: buckets are re-sorted,
    /// duplicates folded, and out-of-range indexes dropped.
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: Vec<(u32, u64)>) -> Self {
        let mut clean: Vec<(u32, u64)> =
            buckets.into_iter().filter(|(i, n)| (*i as usize) < BUCKETS && *n > 0).collect();
        clean.sort_by_key(|(i, _)| *i);
        clean.dedup_by(|(bi, bn), (ai, an)| {
            if ai == bi {
                *an = an.saturating_add(*bn);
                true
            } else {
                false
            }
        });
        Self { count, sum, max, buckets: clean }
    }

    /// `newer - older` for two cumulative captures of the *same*
    /// histogram: the observations recorded between them, bucket-exact.
    /// Saturating throughout, so a registry reset between captures yields
    /// an empty interval instead of garbage.
    pub fn delta(newer: &Self, older: &Self) -> Self {
        let mut buckets = Vec::new();
        let mut old = older.buckets.iter().peekable();
        for &(idx, n) in &newer.buckets {
            let mut prev = 0;
            while let Some(&&(oidx, on)) = old.peek() {
                if oidx < idx {
                    old.next();
                } else {
                    if oidx == idx {
                        prev = on;
                    }
                    break;
                }
            }
            let d = n.saturating_sub(prev);
            if d > 0 {
                buckets.push((idx, d));
            }
        }
        // The window's true max is unrecoverable from cumulative maxima
        // (the all-time max may predate the window); bound it by the top
        // bucket that actually gained observations.
        let max =
            buckets.last().map(|&(idx, _)| bucket_mid(idx as usize).min(newer.max)).unwrap_or(0);
        Self {
            count: newer.count.saturating_sub(older.count),
            sum: newer.sum.saturating_sub(older.sum),
            max,
            buckets,
        }
    }

    /// Fold another interval in — the same window on another node, or an
    /// adjacent window on this one. Bucket-exact, like
    /// [`Histogram::merge`].
    pub fn merge(&mut self, other: &Self) {
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, an)), Some(&&(bi, bn))) => {
                    if ai == bi {
                        merged.push((ai, an + bn));
                        a.next();
                        b.next();
                    } else if ai < bi {
                        merged.push((ai, an));
                        a.next();
                    } else {
                        merged.push((bi, bn));
                        b.next();
                    }
                }
                (Some(&&p), None) => {
                    merged.push(p);
                    a.next();
                }
                (None, Some(&&p)) => {
                    merged.push(p);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in [0, 1] — same rank-walk and bucket
    /// representatives as [`Histogram::quantile`], so a cumulative
    /// interval reports exactly what the live histogram would.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Quantile summary in the same shape the live histogram exports.
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A cumulative observation of one node's metrics at one instant — either
/// captured locally from a [`Registry`](crate::Registry) or rebuilt from
/// a scraped wire snapshot. Frames are what [`WindowTracker`] subtracts.
#[derive(Debug, Clone, Default)]
pub struct MetricFrame {
    /// Caller-supplied capture timestamp (monotonic nanoseconds; the
    /// monitor uses its own clock so frames from many nodes share one
    /// timeline).
    pub ts_ns: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramInterval)>,
}

impl MetricFrame {
    /// Capture a registry's cumulative state. See
    /// [`Registry::frame`](crate::Registry::frame) for the usual entry
    /// point.
    pub fn new(
        ts_ns: u64,
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, i64)>,
        histograms: Vec<(String, HistogramInterval)>,
    ) -> Self {
        Self { ts_ns, counters, gauges, histograms }
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramInterval> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// One window: what changed between two consecutive frames.
#[derive(Debug, Clone, Default)]
pub struct WindowDelta {
    /// End-of-window timestamp (the newer frame's `ts_ns`).
    pub ts_ns: u64,
    /// Window length in nanoseconds.
    pub dur_ns: u64,
    /// Per-counter increments over the window.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at window end (gauges are instantaneous; a window
    /// reports the latest level, not a delta).
    pub gauges: Vec<(String, i64)>,
    /// Per-histogram observation intervals for the window.
    pub histograms: Vec<(String, HistogramInterval)>,
}

impl WindowDelta {
    /// The window between two cumulative frames of the same node.
    /// Counters subtract saturating (a registry reset reads as a quiet
    /// window, not an underflow); a counter absent from `older` is
    /// treated as previously zero.
    pub fn between(older: &MetricFrame, newer: &MetricFrame) -> Self {
        let counters = newer
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), v.saturating_sub(older.counter(name).unwrap_or(0))))
            .collect();
        let histograms = newer
            .histograms
            .iter()
            .map(|(name, h)| {
                let interval = match older.histogram(name) {
                    Some(prev) => HistogramInterval::delta(h, prev),
                    None => h.clone(),
                };
                (name.clone(), interval)
            })
            .collect();
        Self {
            ts_ns: newer.ts_ns,
            dur_ns: newer.ts_ns.saturating_sub(older.ts_ns),
            counters,
            gauges: newer.gauges.clone(),
            histograms,
        }
    }

    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Counter increments per second of window time; `0.0` for unknown
    /// counters or zero-length windows.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        match (self.counter_delta(name), self.dur_ns) {
            (Some(d), dur) if dur > 0 => d as f64 * 1e9 / dur as f64,
            _ => 0.0,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramInterval> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Rolling window state for one node: remembers the last frame, turns
/// each new frame into a [`WindowDelta`], and retains the most recent
/// `limit` windows for rules of the form "… for N consecutive windows".
#[derive(Debug, Default)]
pub struct WindowTracker {
    last: Option<MetricFrame>,
    windows: VecDeque<WindowDelta>,
    limit: usize,
}

impl WindowTracker {
    pub fn new(limit: usize) -> Self {
        Self { last: None, windows: VecDeque::new(), limit: limit.max(1) }
    }

    /// Feed the next cumulative frame. Returns the completed window, or
    /// `None` for the very first frame (nothing to subtract yet).
    pub fn observe(&mut self, frame: MetricFrame) -> Option<&WindowDelta> {
        let delta = self.last.as_ref().map(|prev| WindowDelta::between(prev, &frame));
        self.last = Some(frame);
        let delta = delta?;
        if self.windows.len() == self.limit {
            self.windows.pop_front();
        }
        self.windows.push_back(delta);
        self.windows.back()
    }

    /// The most recently completed window.
    pub fn latest(&self) -> Option<&WindowDelta> {
        self.windows.back()
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowDelta> {
        self.windows.iter()
    }

    /// The last `n` windows, newest first — the shape health rules
    /// consume ("lag above threshold in each of the last 2 windows").
    pub fn last_n(&self, n: usize) -> impl Iterator<Item = &WindowDelta> {
        self.windows.iter().rev().take(n)
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The cumulative frame the next window will be measured against.
    pub fn last_frame(&self) -> Option<&MetricFrame> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    #[test]
    fn interval_matches_live_histogram() {
        let h = Histogram::new();
        for v in [1u64, 7, 64, 1000, 1_000_000, 1_000_000] {
            h.record(v);
        }
        let iv = HistogramInterval::from_histogram(&h);
        let live = h.snapshot();
        assert_eq!(iv.summary(), live);
    }

    #[test]
    fn delta_recovers_window_observations() {
        let h = Histogram::new();
        for v in [5u64, 500, 50_000] {
            h.record(v);
        }
        let before = HistogramInterval::from_histogram(&h);
        let window_only = Histogram::new();
        for v in [9u64, 900, 90_000] {
            h.record(v);
            window_only.record(v);
        }
        let after = HistogramInterval::from_histogram(&h);
        let delta = HistogramInterval::delta(&after, &before);
        let expect = HistogramInterval::from_histogram(&window_only);
        assert_eq!(delta.count, expect.count);
        assert_eq!(delta.sum, expect.sum);
        assert_eq!(delta.buckets, expect.buckets);
        // Bucket-resolution bound on the recovered max.
        assert!(delta.max as f64 >= expect.max as f64 * 0.875, "{} vs {}", delta.max, expect.max);
    }

    #[test]
    fn merge_is_union_across_nodes() {
        let (a, b, union) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 40, 7_000] {
            a.record(v);
            union.record(v);
        }
        for v in [40u64, 41, 1 << 30] {
            b.record(v);
            union.record(v);
        }
        let mut ia = HistogramInterval::from_histogram(&a);
        ia.merge(&HistogramInterval::from_histogram(&b));
        assert_eq!(ia, HistogramInterval::from_histogram(&union));
    }

    #[test]
    fn from_parts_sanitizes_hostile_buckets() {
        let iv = HistogramInterval::from_parts(
            5,
            100,
            60,
            vec![(9, 2), (3, 1), (9, 1), (u32::MAX, 7), (4, 0)],
        );
        assert_eq!(iv.buckets, vec![(3, 1), (9, 3)]);
        // Quantile walk must not panic on any index that survived.
        let _ = iv.quantile(0.99);
    }

    #[test]
    fn tracker_windows_and_rates() {
        let reg = Registry::new();
        let mut tracker = WindowTracker::new(4);
        assert!(tracker.observe(reg.frame(0)).is_none(), "first frame opens no window");

        reg.counter("storage.writes").add(10);
        reg.gauge("storage.repl_lag").set(3);
        reg.histogram("storage.write.total_ns").record(1000);
        {
            let w = tracker.observe(reg.frame(1_000_000_000)).expect("second frame closes");
            assert_eq!(w.counter_delta("storage.writes"), Some(10));
            assert_eq!(w.rate_per_sec("storage.writes"), 10.0);
            assert_eq!(w.gauge("storage.repl_lag"), Some(3));
            assert_eq!(w.histogram("storage.write.total_ns").unwrap().count, 1);
        }

        // A quiet window: rates drop to zero, gauge level persists.
        let w = tracker.observe(reg.frame(2_000_000_000)).unwrap();
        assert_eq!(w.counter_delta("storage.writes"), Some(0));
        assert_eq!(w.gauge("storage.repl_lag"), Some(3));
        assert_eq!(tracker.len(), 2);
        assert_eq!(tracker.last_n(1).next().unwrap().ts_ns, 2_000_000_000);
    }

    #[test]
    fn tracker_ring_is_bounded() {
        let reg = Registry::new();
        let mut tracker = WindowTracker::new(2);
        for i in 0..10u64 {
            reg.counter("c").inc();
            tracker.observe(reg.frame(i));
        }
        assert_eq!(tracker.len(), 2);
        assert_eq!(tracker.windows().next().unwrap().ts_ns, 8);
    }

    proptest! {
        /// Any partition of an observation stream into windows has window
        /// deltas that sum back to the cumulative totals — for counters
        /// and, bucket-exactly, for histograms.
        #[test]
        fn windows_sum_to_cumulative(
            values in proptest::collection::vec(0u64..1_000_000, 1..60),
            cuts in proptest::collection::vec(proptest::bool::ANY, 1..60),
        ) {
            let reg = Registry::new();
            let mut tracker = WindowTracker::new(usize::MAX >> 1);
            tracker.observe(reg.frame(0));

            let mut ts = 0u64;
            for (i, v) in values.iter().enumerate() {
                reg.counter("ops").inc();
                reg.histogram("lat_ns").record(*v);
                if *cuts.get(i % cuts.len()).unwrap_or(&true) {
                    ts += 1;
                    tracker.observe(reg.frame(ts));
                }
            }
            ts += 1;
            tracker.observe(reg.frame(ts)); // flush the tail window

            let total_ops: u64 =
                tracker.windows().map(|w| w.counter_delta("ops").unwrap_or(0)).sum();
            prop_assert_eq!(total_ops, values.len() as u64);

            let mut rebuilt = HistogramInterval::default();
            for w in tracker.windows() {
                if let Some(h) = w.histogram("lat_ns") {
                    rebuilt.merge(h);
                }
            }
            let cumulative = HistogramInterval::from_histogram(&reg.histogram("lat_ns"));
            prop_assert_eq!(rebuilt.count, cumulative.count);
            prop_assert_eq!(rebuilt.sum, cumulative.sum);
            prop_assert_eq!(&rebuilt.buckets, &cumulative.buckets);
        }

        /// Merging per-node intervals preserves total count/sum and the
        /// merged quantiles stay within the layout's resolution of the
        /// true union quantiles.
        #[test]
        fn merged_intervals_bound_quantile_drift(
            xs in proptest::collection::vec(1u64..10_000_000, 1..80),
            ys in proptest::collection::vec(1u64..10_000_000, 1..80),
        ) {
            let (a, b, union) = (Histogram::new(), Histogram::new(), Histogram::new());
            for v in &xs { a.record(*v); union.record(*v); }
            for v in &ys { b.record(*v); union.record(*v); }

            let mut merged = HistogramInterval::from_histogram(&a);
            merged.merge(&HistogramInterval::from_histogram(&b));
            prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
            prop_assert_eq!(merged.sum, xs.iter().sum::<u64>() + ys.iter().sum::<u64>());

            // Same buckets as the union histogram ⇒ identical quantiles.
            for q in [0.5, 0.95, 0.99] {
                prop_assert_eq!(merged.quantile(q), union.quantile(q));
            }
            // And those quantiles are within the documented 12.5% of the
            // exact rank statistic.
            let mut sorted: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
            sorted.sort_unstable();
            let exact_p50 = sorted[(sorted.len() - 1) / 2] as f64;
            let got = merged.quantile(0.5) as f64;
            prop_assert!(
                (got - exact_p50).abs() <= exact_p50 * 0.125 + 1.0,
                "p50 {} vs exact {}", got, exact_p50
            );
        }
    }
}
