//! Metric primitives: counters, gauges, and log-linear latency
//! histograms.
//!
//! All three are lock-free and cheap enough to sit on the hot paths of
//! the portals substrate and the storage server's dispatch loop. The
//! histogram is log-linear — 8 linear sub-buckets per power-of-two
//! octave — which bounds the relative quantile error at 1/16 (6.25%)
//! when reporting bucket midpoints, comfortably inside the 12.5%
//! budget the evaluation harness assumes.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Atomic-field compatibility: existing call sites read the portals
    /// `NetStats` fields as `AtomicU64`s; keeping `load`/`fetch_add`/
    /// `store` lets those sites compile unchanged against `Counter`.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.value.load(order)
    }

    #[inline]
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.value.fetch_add(n, order)
    }

    #[inline]
    pub fn store(&self, n: u64, order: Ordering) {
        self.value.store(n, order)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous level (queue depth, buffers in use). Signed so that
/// racing inc/dec pairs can transiently dip below zero without wrapping.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Self { value: AtomicI64::new(0) }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.set(0);
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS; // 8
/// Values below 2^SUB_BITS get one exact bucket each.
const LINEAR_CUTOFF: u64 = 1 << SUB_BITS;
/// Octaves for exponents SUB_BITS..=63, SUBS buckets each, plus the
/// exact low range.
pub(crate) const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS; // 496

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // v in [2^exp, 2^(exp+1))
        let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (exp - SUB_BITS) as usize * SUBS + sub
    }
}

/// Midpoint of the bucket's value range — the reported representative.
/// Shared with the `window` module so interval quantiles report the same
/// representatives as the live histogram.
#[inline]
pub(crate) fn bucket_mid(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let oct = (index - SUBS) / SUBS;
        let sub = ((index - SUBS) % SUBS) as u64;
        let exp = oct as u32 + SUB_BITS;
        let width = 1u64 << (exp - SUB_BITS);
        let lo = (SUBS as u64 + sub) << (exp - SUB_BITS);
        lo + width / 2
    }
}

/// Lock-free log-linear histogram over `u64` observations.
///
/// Observations are dimensionless `u64`s; latency callers record
/// nanoseconds (wall-clock via [`Histogram::record_duration`], simulated
/// time by passing the `SimDuration` nanosecond count directly).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max_value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Value at quantile `q` in [0, 1]: the midpoint of the bucket
    /// holding the rank-`ceil(q*n)` observation, except that the top
    /// quantile reports the exact tracked maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).max(1);
        if rank >= n {
            return self.max_value();
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_mid(i).min(self.max_value());
            }
        }
        self.max_value()
    }

    /// Fold another histogram into this one. Equivalent (bucket-exact)
    /// to having recorded the union of both observation streams.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max_value(), Ordering::Relaxed);
    }

    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Sparse `(bucket_index, count)` pairs of every nonzero bucket,
    /// ascending by index — the *mergeable* form of the histogram. Two
    /// cumulative bucket lists from the same histogram subtract into an
    /// exact interval, and interval lists from different nodes add into
    /// an exact union, neither losing more resolution than the log-linear
    /// layout itself.
    pub fn bucket_counts(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v != 0).then_some((i as u32, v))
            })
            .collect()
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max_value(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max_value())
            .finish_non_exhaustive()
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.load(Ordering::Relaxed), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.inc();
        g.add(9);
        g.dec();
        assert_eq!(g.get(), 9);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_index_is_monotone_and_exact_below_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
        let mut last = 0;
        for shift in 2..60 {
            // Strictly increasing probe values, so indices must be
            // non-decreasing.
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let idx = bucket_index(v);
                assert!(idx >= last, "index not monotone at {v}");
                last = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_value(), 1000);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log-linear: each within 12.5% of the exact rank value.
        assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.125, "p50={p50}");
        assert!((p95 as f64 - 950.0).abs() / 950.0 < 0.125, "p95={p95}");
        assert!((p99 as f64 - 990.0).abs() / 990.0 < 0.125, "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_value());
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in [3u64, 17, 99, 1_000_000] {
            a.record(v);
            union.record(v);
        }
        for v in [8u64, 8, 123_456] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), union.snapshot());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }
}
