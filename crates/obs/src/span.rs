//! Span-style op tracing keyed by request id.
//!
//! Services decompose an operation into named stages (a storage write
//! becomes queue-wait → authorize → pull → store-write → reply) and
//! record one [`SpanRecord`] per stage plus a closing `total` span, all
//! sharing the `req_id` threaded through `lwfs_proto::Request`. Since
//! wire v4 every span also carries the *distributed* `trace_id` and the
//! recording node's `nid`, so one client write correlates across every
//! process it touched. The log is a bounded ring so tracing can stay on
//! permanently.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Stage name used for the end-to-end span of an operation.
pub const TOTAL_STAGE: &str = "total";

/// One traced stage of one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Request id from the proto envelope; groups the stages of one op.
    pub req_id: u64,
    /// Distributed trace id (wire v4): shared by every request in one
    /// causal chain across nodes. Equals `req_id` for trace roots and
    /// for per-hop traces from v3 peers.
    pub trace_id: u64,
    /// Node id of the process that recorded this span.
    pub nid: u32,
    /// Operation name, e.g. `storage.write`.
    pub op: &'static str,
    /// Stage within the operation, e.g. `authorize`; [`TOTAL_STAGE`]
    /// covers the whole op.
    pub stage: &'static str,
    /// Offset of the stage start from the span log's epoch, nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// Ring state guarded by one mutex: the records themselves plus the
/// indexes that keep [`SpanLog::for_req`]/[`SpanLog::completed_reqs`]
/// from scanning the whole ring under the lock.
///
/// Every record gets a monotonically increasing sequence number;
/// `base_seq` is the seq of `q[0]`, so `q[seq - base_seq]` addresses any
/// retained record in O(1). `by_req` maps a request id to its retained
/// seqs (ascending — eviction always removes the globally smallest seq,
/// which is necessarily the front of its request's deque), and
/// `completed` lists the seqs of retained [`TOTAL_STAGE`] records.
#[derive(Default)]
struct Ring {
    q: VecDeque<SpanRecord>,
    base_seq: u64,
    by_req: HashMap<u64, VecDeque<u64>>,
    completed: VecDeque<(u64, u64)>,
}

/// Bounded ring of recent [`SpanRecord`]s with per-request indexing.
pub struct SpanLog {
    epoch: Instant,
    inner: Mutex<Ring>,
    capacity: usize,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl SpanLog {
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Ring {
                q: VecDeque::with_capacity(capacity.min(1024)),
                ..Ring::default()
            }),
            capacity: capacity.max(1),
        }
    }

    /// Nanoseconds since this log was created; span start timestamps use
    /// this scale so they are comparable within one process.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    pub fn record(&self, record: SpanRecord) {
        let mut r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if r.q.len() == self.capacity {
            let evicted = r.q.pop_front().expect("capacity >= 1");
            let evicted_seq = r.base_seq;
            r.base_seq += 1;
            if let Some(seqs) = r.by_req.get_mut(&evicted.req_id) {
                debug_assert_eq!(seqs.front(), Some(&evicted_seq));
                seqs.pop_front();
                if seqs.is_empty() {
                    r.by_req.remove(&evicted.req_id);
                }
            }
            if r.completed.front().is_some_and(|(s, _)| *s == evicted_seq) {
                r.completed.pop_front();
            }
        }
        let seq = r.base_seq + r.q.len() as u64;
        r.by_req.entry(record.req_id).or_default().push_back(seq);
        if record.stage == TOTAL_STAGE {
            r.completed.push_back((seq, record.req_id));
        }
        r.q.push_back(record);
    }

    /// All retained spans for one request, in recording order.
    ///
    /// Indexed: the lock is held for one map lookup plus one clone per
    /// retained span of *this* request (pre-sized), never a scan of the
    /// whole ring — this is the flight-recorder hot path.
    pub fn for_req(&self, req_id: u64) -> Vec<SpanRecord> {
        let r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let Some(seqs) = r.by_req.get(&req_id) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(seqs.len());
        out.extend(seqs.iter().map(|seq| r.q[(seq - r.base_seq) as usize].clone()));
        out
    }

    /// All retained spans carrying `trace_id`, in recording order.
    ///
    /// This *is* an O(retained) scan — it runs once per flight-recorder
    /// pin (rare by construction: only outlier traces pin) and in
    /// offline collection, never per-operation.
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        r.q.iter().filter(|s| s.trace_id == trace_id).cloned().collect()
    }

    /// The most recent `limit` spans, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        let r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let skip = r.q.len().saturating_sub(limit);
        let mut out = Vec::with_capacity(r.q.len() - skip);
        out.extend(r.q.iter().skip(skip).cloned());
        out
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        let mut r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let next = r.base_seq + r.q.len() as u64;
        r.q.clear();
        r.by_req.clear();
        r.completed.clear();
        r.base_seq = next;
    }

    /// Request ids that have a [`TOTAL_STAGE`] span retained, in
    /// recording order. Maintained incrementally — no ring scan.
    pub fn completed_reqs(&self) -> Vec<u64> {
        let r = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = Vec::with_capacity(r.completed.len());
        out.extend(r.completed.iter().map(|(_, req_id)| *req_id));
        out
    }
}

/// Intern a span name scraped off the wire (or parsed from an artifact)
/// as a `&'static str`, so it can live in a [`SpanRecord`].
///
/// In-process span names are compile-time literals; names arriving over
/// `GetFlightTraces` (or read back from Chrome-trace JSON) are owned
/// `String`s that must be leaked to re-enter the record shape. The table
/// is bounded: scraped names are remote-controlled in principle, and an
/// unbounded leak would let a hostile peer grow the process without
/// limit. Past [`INTERN_CAP`] distinct names, everything interns to
/// `"other"` (which the blame taxonomy classifies as
/// [`crate::critpath::BlameStage::Other`]).
pub fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::OnceLock;

    /// Bound on distinct interned names; far above any real deployment's
    /// op/stage vocabulary.
    const INTERN_CAP: usize = 4096;
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut t = table.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&interned) = t.get(s) {
        return interned;
    }
    if t.len() >= INTERN_CAP {
        return "other";
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    t.insert(leaked);
    leaked
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog").field("len", &self.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(req_id: u64, stage: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            req_id,
            trace_id: req_id,
            nid: 0,
            op: "storage.write",
            stage,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn records_group_by_req_id() {
        let log = SpanLog::default();
        log.record(rec(1, "authorize", 0, 10));
        log.record(rec(2, "authorize", 5, 10));
        log.record(rec(1, "pull", 10, 30));
        log.record(rec(1, TOTAL_STAGE, 0, 45));
        let one = log.for_req(1);
        assert_eq!(one.len(), 3);
        assert!(one.iter().all(|s| s.req_id == 1));
        assert_eq!(log.completed_reqs(), vec![1]);
        assert!(log.for_req(99).is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let log = SpanLog::with_capacity(4);
        for i in 0..10 {
            log.record(rec(i, "s", i, 1));
        }
        assert_eq!(log.len(), 4);
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].req_id, 9);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn indexes_survive_eviction_and_clear() {
        let log = SpanLog::with_capacity(4);
        // Interleave two requests so eviction splits both their indexes.
        for i in 0..8u64 {
            let req = i % 2;
            let stage = if i >= 6 { TOTAL_STAGE } else { "s" };
            log.record(rec(req, stage, i, 1));
        }
        // Only the last 4 records survive: reqs 0,1,0(total),1(total).
        assert_eq!(log.for_req(0).len(), 2);
        assert_eq!(log.for_req(1).len(), 2);
        assert_eq!(log.completed_reqs(), vec![0, 1]);
        // Index answers agree with a brute-force scan of `recent`.
        let all = log.recent(usize::MAX);
        for req in [0u64, 1] {
            let scanned: Vec<_> = all.iter().filter(|s| s.req_id == req).cloned().collect();
            assert_eq!(log.for_req(req), scanned);
        }
        // Evicting a request's last span drops its index entry entirely.
        for i in 0..4u64 {
            log.record(rec(7, "s", 100 + i, 1));
        }
        assert!(log.for_req(0).is_empty());
        assert!(log.for_req(1).is_empty());
        assert!(log.completed_reqs().is_empty());
        log.clear();
        assert!(log.for_req(7).is_empty());
        // Recording after clear keeps seq accounting consistent.
        log.record(rec(8, TOTAL_STAGE, 200, 1));
        assert_eq!(log.for_req(8).len(), 1);
        assert_eq!(log.completed_reqs(), vec![8]);
    }

    #[test]
    fn for_trace_crosses_req_ids() {
        let log = SpanLog::default();
        let mut a = rec(1, "s", 0, 1);
        a.trace_id = 42;
        let mut b = rec(2, "apply", 5, 1);
        b.trace_id = 42;
        log.record(a);
        log.record(rec(3, "s", 2, 1));
        log.record(b);
        let t = log.for_trace(42);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].req_id, 1);
        assert_eq!(t[1].req_id, 2);
    }

    #[test]
    fn contention_smoke_writers_vs_indexed_readers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // 4 writers stream spans through a small ring while readers
        // hammer the indexed lookups; the test asserts the indexes stay
        // internally consistent under constant eviction and that nothing
        // deadlocks or panics.
        let log = Arc::new(SpanLog::with_capacity(256));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let req = w * 10_000 + (i % 37);
                        log.record(rec(req, "s", i, 1));
                        if i % 5 == 0 {
                            log.record(rec(req, TOTAL_STAGE, i, 2));
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|rdr| {
                let log = Arc::clone(&log);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut lookups = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for req in (rdr * 10_000)..(rdr * 10_000 + 37) {
                            let spans = log.for_req(req);
                            assert!(spans.iter().all(|s| s.req_id == req));
                            lookups += 1;
                        }
                        let done = log.completed_reqs();
                        assert!(done.len() <= 256);
                    }
                    lookups
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(log.len(), 256);
    }
}
