//! Span-style op tracing keyed by request id.
//!
//! Services decompose an operation into named stages (a storage write
//! becomes queue-wait → authorize → pull → store-write → reply) and
//! record one [`SpanRecord`] per stage plus a closing `total` span, all
//! sharing the `req_id` threaded through `lwfs_proto::Request`. The log
//! is a bounded ring so tracing can stay on permanently.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Stage name used for the end-to-end span of an operation.
pub const TOTAL_STAGE: &str = "total";

/// One traced stage of one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Request id from the proto envelope; groups the stages of one op.
    pub req_id: u64,
    /// Operation name, e.g. `storage.write`.
    pub op: &'static str,
    /// Stage within the operation, e.g. `authorize`; [`TOTAL_STAGE`]
    /// covers the whole op.
    pub stage: &'static str,
    /// Offset of the stage start from the span log's epoch, nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// Bounded ring of recent [`SpanRecord`]s.
pub struct SpanLog {
    epoch: Instant,
    inner: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl SpanLog {
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Nanoseconds since this log was created; span start timestamps use
    /// this scale so they are comparable within one process.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    pub fn record(&self, record: SpanRecord) {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(record);
    }

    /// All retained spans for one request, in recording order.
    pub fn for_req(&self, req_id: u64) -> Vec<SpanRecord> {
        let q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        q.iter().filter(|s| s.req_id == req_id).cloned().collect()
    }

    /// The most recent `limit` spans, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        let q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let skip = q.len().saturating_sub(limit);
        q.iter().skip(skip).cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Request ids that have a [`TOTAL_STAGE`] span retained, in
    /// recording order.
    pub fn completed_reqs(&self) -> Vec<u64> {
        let q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        q.iter().filter(|s| s.stage == TOTAL_STAGE).map(|s| s.req_id).collect()
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog").field("len", &self.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(req_id: u64, stage: &'static str, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord { req_id, op: "storage.write", stage, start_ns, dur_ns }
    }

    #[test]
    fn records_group_by_req_id() {
        let log = SpanLog::default();
        log.record(rec(1, "authorize", 0, 10));
        log.record(rec(2, "authorize", 5, 10));
        log.record(rec(1, "pull", 10, 30));
        log.record(rec(1, TOTAL_STAGE, 0, 45));
        let one = log.for_req(1);
        assert_eq!(one.len(), 3);
        assert!(one.iter().all(|s| s.req_id == 1));
        assert_eq!(log.completed_reqs(), vec![1]);
    }

    #[test]
    fn ring_is_bounded() {
        let log = SpanLog::with_capacity(4);
        for i in 0..10 {
            log.record(rec(i, "s", i, 1));
        }
        assert_eq!(log.len(), 4);
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].req_id, 9);
        log.clear();
        assert!(log.is_empty());
    }
}
