//! Unified observability for the LWFS services.
//!
//! `lwfs-obs` is a dependency-free metrics and tracing layer shared by
//! every service in the workspace:
//!
//! - [`Counter`], [`Gauge`], and log-linear [`Histogram`] (p50/p95/p99/
//!   max with ≤ 12.5% relative bucket error), all lock-free;
//! - a [`Registry`] of named metrics following the `component.op.stat`
//!   convention;
//! - span-style op tracing ([`SpanLog`], [`OpTrace`]) keyed by the
//!   request id threaded through `lwfs_proto::Request`, decomposing an
//!   operation into its stages (queue-wait → authorize → pull →
//!   store-write → reply);
//! - [`Snapshot`] export as a fixed-width text table or JSON, written
//!   next to the bench `results/` output via `--metrics-out`.
//!
//! Histograms observe dimensionless `u64`s, so they work equally over
//! wall-clock nanoseconds (`record_duration`) and simulated-time
//! nanoseconds (`record` with a `SimDuration`'s nanosecond count).

pub mod critpath;
mod event;
pub mod export;
mod metrics;
mod registry;
mod span;
mod trace;
pub mod window;

pub use critpath::{attribute, attribute_with_claims, Attribution, BlameStage, TailReport};
pub use event::{Event, EventLog};
pub use export::{metric_key, prometheus_escape_label, MetricKey};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{ObsConfig, OpTrace, Registry, Snapshot};
pub use span::{intern, SpanLog, SpanRecord, TOTAL_STAGE};
pub use trace::{FlightRecorder, PinnedTrace, Trace, TraceCollector};
pub use window::{HistogramInterval, MetricFrame, WindowDelta, WindowTracker};
