//! The control-plane **event journal**: structured, timestamped records
//! of rare cluster-shaping transitions — failovers, backup drops and
//! ship-deadline evictions, epoch bumps, WAL recovery, membership
//! republishes.
//!
//! Counters answer "how many failovers?"; the journal answers "what
//! happened, in what order, on which node?" — the question every
//! replication-test post-mortem actually asks. Events are deliberately
//! coarse (a handful per fault, never per-operation), so a modest ring
//! retains the full history of any test run.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One control-plane transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global recording order within this journal. Two events from
    /// different threads may share a timestamp; `seq` never ties, so
    /// causal assertions ("eviction before republish") compare it.
    pub seq: u64,
    /// Nanoseconds since the journal was created.
    pub ts_ns: u64,
    /// Node that recorded the event.
    pub nid: u32,
    /// Stable machine-matchable kind, dotted like metric names:
    /// `repl.evict_backup`, `directory.republish`, `failover.promote`,
    /// `failover.drop_backup`, `wal.recovery`, `repl.epoch_bump`.
    pub kind: &'static str,
    /// Human-readable specifics (who, which group, which epoch).
    pub detail: String,
}

/// Bounded ring of [`Event`]s shared by every service on a registry.
pub struct EventLog {
    epoch: Instant,
    inner: Mutex<(u64, VecDeque<Event>)>,
    capacity: usize,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new((0, VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Append an event; returns its journal sequence number.
    pub fn record(&self, nid: u32, kind: &'static str, detail: impl Into<String>) -> u64 {
        let ts_ns = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let (ref mut next_seq, ref mut q) = *inner;
        let seq = *next_seq;
        *next_seq += 1;
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(Event { seq, ts_ns, nid, kind, detail: detail.into() });
        seq
    }

    /// All retained events, oldest first.
    pub fn all(&self) -> Vec<Event> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).1.iter().cloned().collect()
    }

    /// Retained events with `seq >= from`, oldest first — the journal
    /// cursor a polling scraper advances (to last seen seq + 1) so each
    /// scrape ships only the tail it has not yet seen. `from = 0` returns
    /// everything retained.
    pub fn from_seq(&self, from: u64) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .1
            .iter()
            .filter(|e| e.seq >= from)
            .cloned()
            .collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .1
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).1.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).1.clear();
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").field("len", &self.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_global_order_and_kinds() {
        let log = EventLog::default();
        let a = log.record(1100, "repl.evict_backup", "backup 1101 missed ship deadline");
        let b = log.record(1004, "directory.republish", "epoch 1 -> 2");
        assert!(a < b, "seq must order causally chained events");
        let all = log.all();
        assert_eq!(all.len(), 2);
        assert!(all[0].ts_ns <= all[1].ts_ns);
        assert_eq!(log.of_kind("directory.republish").len(), 1);
        assert_eq!(log.of_kind("nope").len(), 0);
        log.clear();
        assert!(log.is_empty());
        // Seq survives clear — later events still order after earlier ones.
        let c = log.record(0, "wal.recovery", "replayed 3 records");
        assert!(c > b);
    }

    #[test]
    fn journal_is_bounded() {
        let log = EventLog::with_capacity(4);
        for i in 0..10u32 {
            log.record(i, "repl.epoch_bump", format!("epoch {i}"));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.all()[0].nid, 6);
    }
}
