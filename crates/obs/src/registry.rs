//! The metric registry: named counters, gauges, and histograms plus the
//! span log, with point-in-time snapshots exportable as a text table or
//! JSON.
//!
//! Names follow the `component.op.stat` convention (`portals.messages`,
//! `storage.write.pull_ns`, `txn.prepare.latency_ns`); snapshots sort
//! lexicographically, so related metrics group together in exports.

use crate::event::{Event, EventLog};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::{SpanLog, SpanRecord, TOTAL_STAGE};
use crate::trace::FlightRecorder;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

type Table<T> = Mutex<BTreeMap<String, Arc<T>>>;

fn get_or_insert<T: Default>(table: &Table<T>, name: &str) -> Arc<T> {
    let mut map = table.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let fresh = Arc::new(T::default());
    map.insert(name.to_string(), Arc::clone(&fresh));
    fresh
}

/// Ring and recorder sizing for a [`Registry`].
///
/// The defaults match the historical hard-coded values; soak runs under a
/// polling monitor raise them (threaded from the cluster config) so hours
/// of spans and events survive without the rings silently wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Span ring length ([`SpanLog::with_capacity`]).
    pub span_capacity: usize,
    /// Event journal length ([`EventLog::with_capacity`]).
    pub event_capacity: usize,
    /// Flight-recorder pin threshold in nanoseconds (`0` = pure top-K).
    pub flight_threshold_ns: u64,
    /// Maximum pinned outlier traces.
    pub flight_top_k: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self { span_capacity: 4096, event_capacity: 1024, flight_threshold_ns: 0, flight_top_k: 8 }
    }
}

/// Process-wide (or per-`Network`) metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Table<Counter>,
    gauges: Table<Gauge>,
    histograms: Table<Histogram>,
    spans: SpanLog,
    events: EventLog,
    flight: FlightRecorder,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with explicitly sized rings and flight recorder.
    pub fn with_config(config: &ObsConfig) -> Self {
        Self {
            counters: Table::default(),
            gauges: Table::default(),
            histograms: Table::default(),
            spans: SpanLog::with_capacity(config.span_capacity),
            events: EventLog::with_capacity(config.event_capacity),
            flight: FlightRecorder::new(config.flight_threshold_ns, config.flight_top_k),
        }
    }

    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get or create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// The span log shared by every service on this registry.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// The control-plane event journal shared by every service on this
    /// registry.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The slow-op flight recorder fed by every finished [`OpTrace`].
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Start tracing one operation; see [`OpTrace`]. The trace starts
    /// self-rooted (`trace_id = req_id`, node 0); servers handling a
    /// propagated context chain [`OpTrace::in_trace`]/[`OpTrace::on_node`]
    /// to attribute the spans.
    pub fn trace(&self, req_id: u64, op: &'static str) -> OpTrace<'_> {
        OpTrace {
            registry: self,
            req_id,
            trace_id: req_id,
            nid: 0,
            op,
            origin: Instant::now(),
            origin_ns: self.spans.now_ns(),
            last_ns: 0,
            finished: false,
        }
    }

    /// Reset every counter, gauge, and histogram and clear the span log.
    /// Registered names survive so exports stay stable across resets.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap_or_else(|p| p.into_inner()).values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap_or_else(|p| p.into_inner()).values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap_or_else(|p| p.into_inner()).values() {
            h.reset();
        }
        self.spans.clear();
        self.events.clear();
        self.flight.clear();
    }

    /// Cumulative bucket-level capture of every metric for windowed
    /// aggregation — the local-node entry point into the `window` module
    /// (scraped remote nodes build the same frame from wire parts).
    /// `ts_ns` comes from the caller so frames of many nodes share one
    /// monitor-side timeline.
    pub fn frame(&self, ts_ns: u64) -> crate::window::MetricFrame {
        use crate::window::HistogramInterval;
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), HistogramInterval::from_histogram(v)))
            .collect();
        crate::window::MetricFrame::new(ts_ns, counters, gauges, histograms)
    }

    /// Point-in-time copy of every registered metric plus retained spans.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: self.spans.recent(usize::MAX),
            events: self.events.all(),
        }
    }
}

/// In-flight trace of one operation.
///
/// Each [`OpTrace::stage`] call closes the stage that just ran: it
/// records a span for the elapsed time since the previous checkpoint
/// and feeds the same duration into the `{op}.{stage}_ns` histogram.
/// Dropping the trace (or calling [`OpTrace::finish`]) records the
/// end-to-end `{op}.total_ns` span covering the whole operation.
pub struct OpTrace<'a> {
    registry: &'a Registry,
    req_id: u64,
    trace_id: u64,
    nid: u32,
    op: &'static str,
    origin: Instant,
    origin_ns: u64,
    last_ns: u64,
    finished: bool,
}

impl OpTrace<'_> {
    /// Attribute this trace's spans to node `nid` (builder style).
    pub fn on_node(mut self, nid: u32) -> Self {
        self.nid = nid;
        self
    }

    /// Join the distributed trace `trace_id` instead of self-rooting.
    /// A zero id (untraced v3 peer) keeps the `req_id` self-root, so the
    /// cluster degrades to per-hop tracing rather than losing spans.
    pub fn in_trace(mut self, trace_id: u64) -> Self {
        if trace_id != 0 {
            self.trace_id = trace_id;
        }
        self
    }

    /// The distributed trace id this op's spans carry.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn elapsed_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Close the stage that ran since the last checkpoint; returns the
    /// stage duration in nanoseconds (so callers can feed aggregate
    /// histograms without re-measuring).
    pub fn stage(&mut self, stage: &'static str) -> u64 {
        let now = self.elapsed_ns();
        let dur = now - self.last_ns;
        self.record(stage, self.last_ns, dur);
        self.last_ns = now;
        dur
    }

    /// Close a stage whose duration was measured externally (e.g. the
    /// queue wait computed from the request's arrival timestamp). Does
    /// not move the running checkpoint.
    pub fn stage_with_duration(&mut self, stage: &'static str, dur_ns: u64) {
        self.record(stage, self.last_ns, dur_ns);
    }

    /// Record a sub-span under a *different* op name (e.g. `wal.append`
    /// inside a `storage.write`) covering the wall interval that ended
    /// just now. Feeds no histogram — subsystems like the WAL already
    /// time themselves; this only adds the span to the causal trace.
    /// Does not move the running checkpoint.
    pub fn span_with_duration(&mut self, op: &'static str, stage: &'static str, dur_ns: u64) {
        let end = self.elapsed_ns();
        self.registry.spans.record(SpanRecord {
            req_id: self.req_id,
            trace_id: self.trace_id,
            nid: self.nid,
            op,
            stage,
            start_ns: self.origin_ns + end.saturating_sub(dur_ns),
            dur_ns,
        });
    }

    fn record(&self, stage: &'static str, start_off_ns: u64, dur_ns: u64) {
        self.registry.spans.record(SpanRecord {
            req_id: self.req_id,
            trace_id: self.trace_id,
            nid: self.nid,
            op: self.op,
            stage,
            start_ns: self.origin_ns + start_off_ns,
            dur_ns,
        });
        self.registry.histogram(&format!("{}.{}_ns", self.op, stage)).record(dur_ns);
    }

    /// Record the end-to-end span. Also invoked on drop.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let total = self.elapsed_ns();
        self.record(TOTAL_STAGE, 0, total);
        self.registry.flight.observe(&self.registry.spans, self.req_id, self.trace_id, total);
    }
}

impl Drop for OpTrace<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Point-in-time export of a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Retained control-plane events, oldest first.
    pub events: Vec<Event>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Retained control-plane events of one kind, oldest first.
    pub fn events_of_kind(&self, kind: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Roll another node's snapshot into this one, producing a cluster
    /// series from per-node series: counters and gauges with the same
    /// name add, histograms combine summary-wise (count/sum/max exact;
    /// quantiles count-weighted, so the merged p99 is an *estimate* —
    /// exact cross-node quantiles go through the bucket-level
    /// [`HistogramInterval`](crate::window::HistogramInterval) merge
    /// instead). Spans and events concatenate; events re-sort by
    /// timestamp since per-node `seq` counters are not comparable.
    pub fn merge(&mut self, other: &Snapshot) {
        fn fold<V: Copy, M: FnMut(&mut V, V)>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
            mut combine: M,
        ) {
            for (name, v) in src {
                match dst.iter_mut().find(|(n, _)| n == name) {
                    Some((_, cur)) => combine(cur, *v),
                    None => dst.push((name.clone(), *v)),
                }
            }
            dst.sort_by(|a, b| a.0.cmp(&b.0));
        }
        fold(&mut self.counters, &other.counters, |a, b| *a += b);
        fold(&mut self.gauges, &other.gauges, |a, b| *a += b);
        fold(&mut self.histograms, &other.histograms, |a, b| {
            let total = a.count + b.count;
            if total > 0 {
                let (wa, wb) = (a.count as f64, b.count as f64);
                let weight =
                    |x: u64, y: u64| ((x as f64 * wa + y as f64 * wb) / (wa + wb)).round() as u64;
                a.p50 = weight(a.p50, b.p50);
                a.p95 = weight(a.p95, b.p95);
                a.p99 = weight(a.p99, b.p99);
            }
            a.count = total;
            a.sum += b.sum;
            a.max = a.max.max(b.max);
            a.mean = if total == 0 { 0.0 } else { a.sum as f64 / total as f64 };
        });
        self.spans.extend(other.spans.iter().cloned());
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| (e.ts_ns, e.seq));
    }

    /// Human-readable fixed-width table.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<44} {:>16}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<44} {v:>16}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<44} {:>16}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {v:>16}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p95", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}",
                    name, h.count, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        let _ = writeln!(out, "spans retained: {}", self.spans.len());
        if !self.events.is_empty() {
            let _ =
                writeln!(out, "{:<6} {:>14} {:>6}  {:<24} detail", "event", "ts_ns", "nid", "kind");
            for e in &self.events {
                let _ = writeln!(
                    out,
                    "{:<6} {:>14} {:>6}  {:<24} {}",
                    e.seq, e.ts_ns, e.nid, e.kind, e.detail
                );
            }
        }
        out
    }

    /// JSON export with a leading `"meta"` object. `meta` must be a
    /// complete JSON value (the bench layer builds it with run timestamp,
    /// protocol version, and node census — things this dependency-free
    /// crate cannot know itself).
    pub fn to_json_with_meta(&self, meta: &str) -> String {
        let body = self.to_json();
        debug_assert!(body.starts_with("{\n"));
        body.replacen("{\n", &format!("{{\n  \"meta\": {meta},\n"), 1)
    }

    /// Like [`Snapshot::write_json`] but stamped with a `meta` object.
    pub fn write_json_with_meta(&self, path: &std::path::Path, meta: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_with_meta(meta))
    }

    /// JSON export (hand-rolled: the workspace has no JSON dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_str(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json_str(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                json_str(name),
                h.count,
                h.sum,
                h.mean,
                h.p50,
                h.p95,
                h.p99,
                h.max
            );
        }
        out.push_str("\n  },\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"req_id\": {}, \"trace_id\": {}, \"nid\": {}, \"op\": {}, \
                 \"stage\": {}, \"start_ns\": {}, \"dur_ns\": {}}}",
                s.req_id,
                s.trace_id,
                s.nid,
                json_str(s.op),
                json_str(s.stage),
                s.start_ns,
                s.dur_ns
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"ts_ns\": {}, \"nid\": {}, \"kind\": {}, \
                 \"detail\": {}}}",
                e.seq,
                e.ts_ns,
                e.nid,
                json_str(e.kind),
                json_str(&e.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the JSON export to `path`, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("portals.messages");
        let b = r.counter("portals.messages");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn trace_records_stages_and_total() {
        let r = Registry::new();
        {
            let mut t = r.trace(7, "storage.write");
            t.stage("authorize");
            t.stage("pull");
            t.finish();
        }
        let spans = r.spans().for_req(7);
        assert_eq!(spans.len(), 3);
        let total = spans.iter().find(|s| s.stage == TOTAL_STAGE).unwrap();
        let stage_sum: u64 =
            spans.iter().filter(|s| s.stage != TOTAL_STAGE).map(|s| s.dur_ns).sum();
        assert!(stage_sum <= total.dur_ns, "{stage_sum} > {}", total.dur_ns);
        assert_eq!(r.histogram("storage.write.total_ns").count(), 1);
        assert_eq!(r.histogram("storage.write.authorize_ns").count(), 1);
    }

    #[test]
    fn drop_finishes_trace_once() {
        let r = Registry::new();
        {
            let mut t = r.trace(9, "txn.commit");
            t.stage("prepare");
        } // drop records total
        assert_eq!(r.spans().completed_reqs(), vec![9]);
        assert_eq!(r.histogram("txn.commit.total_ns").count(), 1);
    }

    #[test]
    fn snapshot_and_exports() {
        let r = Registry::new();
        r.counter("authz.cache.hits").add(5);
        r.gauge("storage.queue.depth").set(3);
        r.histogram("txn.prepare.latency_ns").record(1500);
        let snap = r.snapshot();
        assert_eq!(snap.counter("authz.cache.hits"), Some(5));
        assert_eq!(snap.gauge("storage.queue.depth"), Some(3));
        assert_eq!(snap.histogram("txn.prepare.latency_ns").unwrap().count, 1);

        let text = snap.to_text();
        assert!(text.contains("authz.cache.hits"));
        let json = snap.to_json();
        assert!(json.contains("\"authz.cache.hits\": 5"));
        assert!(json.contains("\"storage.queue.depth\": 3"));
        assert!(json.contains("\"txn.prepare.latency_ns\""));
        // Shape: balanced braces/brackets, key sections present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::new();
        r.counter("portals.puts").add(2);
        r.histogram("naming.lookup.latency_ns").record(10);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("portals.puts"), Some(0));
        assert_eq!(snap.histogram("naming.lookup.latency_ns").unwrap().count, 0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn with_config_sizes_rings() {
        let r = Registry::with_config(&ObsConfig {
            span_capacity: 2,
            event_capacity: 3,
            flight_threshold_ns: 0,
            flight_top_k: 1,
        });
        for i in 0..5u64 {
            let mut t = r.trace(i, "storage.write");
            t.stage("only");
        }
        assert_eq!(r.spans().recent(usize::MAX).len(), 2);
        for i in 0..5u32 {
            r.events().record(i, "repl.epoch_bump", "x");
        }
        assert_eq!(r.events().len(), 3);
        assert!(r.flight().pinned().len() <= 1);
    }

    #[test]
    fn snapshot_merge_rolls_up_nodes() {
        let (a, b) = (Registry::new(), Registry::new());
        a.counter("storage.writes").add(3);
        b.counter("storage.writes").add(4);
        b.counter("naming.ops").add(1);
        a.gauge("storage.repl_lag").set(2);
        b.gauge("storage.repl_lag").set(5);
        a.histogram("storage.write.total_ns").record(100);
        b.histogram("storage.write.total_ns").record(300);
        a.events().record(0, "wal.recovery", "a");
        b.events().record(1, "failover.promote", "b");

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("storage.writes"), Some(7));
        assert_eq!(merged.counter("naming.ops"), Some(1));
        assert_eq!(merged.gauge("storage.repl_lag"), Some(7));
        let h = merged.histogram("storage.write.total_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        assert_eq!(h.max, 300);
        assert_eq!(merged.events.len(), 2);
        // Names stay sorted so exports remain stable.
        let names: Vec<_> = merged.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
