//! Export-side naming and the two telemetry exporters.
//!
//! Registry names are dotted (`component.op.stat`) and sometimes encode a
//! node inline (`storage.srv1100.in_flight`) — neither survives contact
//! with Prometheus, whose metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*` and
//! whose per-node dimension belongs in a *label*. [`metric_key`] is the
//! single shared translation: every exporter (Prometheus text exposition,
//! JSONL time series) goes through it, so the same registry renders to
//! the same keys in every view and a dashboard query written against one
//! export works against the others.

use crate::registry::{json_str, Snapshot};
use crate::window::WindowDelta;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An export-ready metric identity: a sanitized base name plus the
/// labels extracted from the raw registry name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Sanitized to the Prometheus name charset `[a-zA-Z0-9_:]`, never
    /// starting with a digit.
    pub name: String,
    /// `(label, value)` pairs, e.g. `("nid", "1100")` extracted from a
    /// `srv1100` name segment.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Canonical rendering: `name` or `name{k="v",...}` — identical in
    /// the Prometheus exposition and as a JSONL object key.
    pub fn render(&self) -> String {
        self.render_with(&[])
    }

    /// Rendering with extra labels appended (the summary exporter adds
    /// `quantile="..."` this way).
    pub fn render_with(&self, extra: &[(&str, &str)]) -> String {
        if self.labels.is_empty() && extra.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        let mut first = true;
        for (k, v) in
            self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", prometheus_escape_label(v));
            first = false;
        }
        out.push('}');
        out
    }
}

/// Translate a raw dotted registry name into its export identity.
///
/// - dots become underscores: `wal.append_ns` → `wal_append_ns`;
/// - a `srv<digits>` segment becomes a `nid` label:
///   `storage.srv1100.in_flight` → `storage_in_flight{nid="1100"}`;
/// - a `worker<digits>` segment becomes a `worker` label:
///   `storage.worker3.dispatch_ns` → `storage_dispatch_ns{worker="3"}`;
/// - any character outside `[a-zA-Z0-9_:]` is replaced by `_`, and a
///   leading digit gets a `_` prefix, so the result is always a valid
///   Prometheus metric name.
pub fn metric_key(raw: &str) -> MetricKey {
    let mut parts = Vec::new();
    let mut labels = Vec::new();
    for segment in raw.split('.') {
        if let Some(id) = strip_numeric_suffix(segment, "srv") {
            labels.push(("nid".to_string(), id.to_string()));
        } else if let Some(id) = strip_numeric_suffix(segment, "worker") {
            labels.push(("worker".to_string(), id.to_string()));
        } else if !segment.is_empty() {
            parts.push(sanitize_segment(segment));
        }
    }
    let mut name = parts.join("_");
    if name.is_empty() {
        name.push('_');
    }
    if name.as_bytes()[0].is_ascii_digit() {
        name.insert(0, '_');
    }
    MetricKey { name, labels }
}

fn strip_numeric_suffix<'a>(segment: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = segment.strip_prefix(prefix)?;
    (!rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())).then_some(rest)
}

fn sanitize_segment(segment: &str) -> String {
    segment
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Render `s` as a JSON string literal (quoted and escaped) — exporters
/// that splice extra fields into a JSONL line use the same escaping as
/// the line itself.
pub fn json_string(s: &str) -> String {
    json_str(s)
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline.
pub fn prometheus_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` line per metric family, counters and gauges as
/// single samples, histograms as summaries (`{quantile="…"}` series plus
/// `_sum` and `_count`).
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();

    // Group per family: label-bearing series (storage.srv1100.* and
    // storage.srv1101.*) share one name and must share one TYPE line.
    let mut counters: BTreeMap<String, Vec<(MetricKey, u64)>> = BTreeMap::new();
    for (raw, v) in &snap.counters {
        let key = metric_key(raw);
        counters.entry(key.name.clone()).or_default().push((key, *v));
    }
    for (family, series) in &counters {
        let _ = writeln!(out, "# TYPE {family} counter");
        for (key, v) in series {
            let _ = writeln!(out, "{} {v}", key.render());
        }
    }

    let mut gauges: BTreeMap<String, Vec<(MetricKey, i64)>> = BTreeMap::new();
    for (raw, v) in &snap.gauges {
        let key = metric_key(raw);
        gauges.entry(key.name.clone()).or_default().push((key, *v));
    }
    for (family, series) in &gauges {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (key, v) in series {
            let _ = writeln!(out, "{} {v}", key.render());
        }
    }

    let mut summaries: BTreeMap<String, Vec<(MetricKey, &crate::HistogramSnapshot)>> =
        BTreeMap::new();
    for (raw, h) in &snap.histograms {
        let key = metric_key(raw);
        summaries.entry(key.name.clone()).or_default().push((key, h));
    }
    for (family, series) in &summaries {
        let _ = writeln!(out, "# TYPE {family} summary");
        for (key, h) in series {
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                let _ = writeln!(out, "{} {v}", key.render_with(&[("quantile", q)]));
            }
            let _ = writeln!(out, "{}_sum{} {}", key.name, suffix_labels(key), h.sum);
            let _ = writeln!(out, "{}_count{} {}", key.name, suffix_labels(key), h.count);
        }
    }
    out
}

fn suffix_labels(key: &MetricKey) -> String {
    if key.labels.is_empty() {
        String::new()
    } else {
        let rendered = key.render();
        rendered[key.name.len()..].to_string()
    }
}

/// Render one completed window as a single JSONL line: end timestamp,
/// window length, counter deltas and per-second rates, gauge levels, and
/// histogram interval summaries — all keyed by the same [`metric_key`]
/// rendering the Prometheus exposition uses.
pub fn window_to_jsonl(w: &WindowDelta) -> String {
    let mut out = format!("{{\"ts_ns\": {}, \"dur_ns\": {}", w.ts_ns, w.dur_ns);
    out.push_str(", \"counters\": {");
    for (i, (raw, delta)) in w.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let rate = w.rate_per_sec(raw);
        let _ = write!(
            out,
            "{sep}{}: {{\"delta\": {delta}, \"rate\": {rate:.3}}}",
            json_str(&metric_key(raw).render())
        );
    }
    out.push_str("}, \"gauges\": {");
    for (i, (raw, v)) in w.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{}: {v}", json_str(&metric_key(raw).render()));
    }
    out.push_str("}, \"histograms\": {");
    let mut first = true;
    for (raw, iv) in &w.histograms {
        if iv.is_empty() {
            continue; // quiet histograms would dominate every line
        }
        let s = iv.summary();
        let sep = if first { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}{}: {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            json_str(&metric_key(raw).render()),
            s.count,
            s.sum,
            s.mean,
            s.p50,
            s.p95,
            s.p99,
            s.max
        );
        first = false;
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{MetricFrame, WindowTracker};
    use crate::Registry;

    #[test]
    fn metric_key_sanitizes_and_extracts_labels() {
        let plain = metric_key("wal.append_ns");
        assert_eq!(plain.name, "wal_append_ns");
        assert!(plain.labels.is_empty());
        assert_eq!(plain.render(), "wal_append_ns");

        let srv = metric_key("storage.srv1100.in_flight");
        assert_eq!(srv.name, "storage_in_flight");
        assert_eq!(srv.labels, vec![("nid".to_string(), "1100".to_string())]);
        assert_eq!(srv.render(), "storage_in_flight{nid=\"1100\"}");

        let worker = metric_key("storage.worker3.dispatch_ns");
        assert_eq!(worker.render(), "storage_dispatch_ns{worker=\"3\"}");

        // `srvX` with a non-numeric tail is a name, not a label.
        assert_eq!(metric_key("storage.srvfoo.x").name, "storage_srvfoo_x");
        // Hostile characters collapse to underscores; leading digits are
        // prefixed so the name stays charset-valid.
        assert_eq!(metric_key("9lives.a-b c").name, "_9lives_a_b_c");
    }

    #[test]
    fn keys_are_valid_prometheus_names() {
        for raw in ["storage.write.total_ns", "storage.srv1100.in_flight", "x.y-z", "1.2.3", "..."]
        {
            let key = metric_key(raw);
            let mut chars = key.name.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':', "{key:?}");
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'), "{key:?}");
        }
    }

    #[test]
    fn label_escaping() {
        assert_eq!(prometheus_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("storage.writes").add(42);
        reg.gauge("storage.srv1100.in_flight").set(3);
        reg.gauge("storage.srv1101.in_flight").set(5);
        reg.histogram("storage.write.total_ns").record(1000);
        let text = to_prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE storage_writes counter\nstorage_writes 42\n"));
        // One TYPE line for the whole labeled family, then both series.
        assert_eq!(text.matches("# TYPE storage_in_flight gauge").count(), 1);
        assert!(text.contains("storage_in_flight{nid=\"1100\"} 3"));
        assert!(text.contains("storage_in_flight{nid=\"1101\"} 5"));
        assert!(text.contains("# TYPE storage_write_total_ns summary"));
        assert!(text.contains("storage_write_total_ns{quantile=\"0.5\"}"));
        assert!(text.contains("storage_write_total_ns_sum 1000"));
        assert!(text.contains("storage_write_total_ns_count 1"));
    }

    #[test]
    fn jsonl_and_prometheus_agree_on_keys() {
        let reg = Registry::new();
        reg.counter("storage.srv1100.writes").add(7);
        reg.gauge("storage.repl_lag").set(2);
        reg.histogram("wal.append_ns").record(500);

        let mut tracker = WindowTracker::new(4);
        tracker.observe(MetricFrame::default());
        let w = tracker.observe(reg.frame(1_000_000)).unwrap();
        let line = window_to_jsonl(w);
        let prom = to_prometheus(&reg.snapshot());

        // The same sanitized rendering appears in both exports.
        for key in ["storage_writes{nid=\"1100\"}", "storage_repl_lag"] {
            assert!(line.contains(&format!("\"{}\"", key.replace('"', "\\\""))), "{line}");
            assert!(prom.contains(key), "{prom}");
        }
        assert!(line.contains("\"wal_append_ns\""));
        assert!(prom.contains("# TYPE wal_append_ns summary"));
        // One line, valid JSON shape.
        assert!(!line.contains('\n'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
}
