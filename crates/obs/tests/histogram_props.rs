//! Property tests for the log-linear [`Histogram`]: quantile ordering,
//! bounded bucket error, and stream-union merge semantics.

use lwfs_obs::Histogram;
use proptest::{prop_assert, prop_assert_eq, proptest};

/// 8 sub-buckets per octave bound the bucket *width* to 1/8 of the value,
/// so the reported midpoint is within 1/16 — we assert the looser 12.5%.
const MAX_RELATIVE_ERROR: f64 = 0.125;

fn record_all(h: &Histogram, values: &[u64]) {
    for &v in values {
        h.record(v);
    }
}

proptest! {
    /// Quantiles never invert: p50 <= p95 <= p99 <= max, and all reported
    /// values stay within the observed range's bucket of the maximum.
    #[test]
    fn quantiles_are_ordered(values in proptest::collection::vec(0u64..1 << 48, 1..200)) {
        let h = Histogram::new();
        record_all(&h, &values);
        let s = h.snapshot();
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {} > p99 {}", s.p95, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
    }

    /// A bucket's reported midpoint is within 12.5% of any value that
    /// landed in it: record one value many times, read it back as p50.
    #[test]
    fn bucket_error_is_bounded(v in 0u64..1 << 48, copies in 2usize..10) {
        let h = Histogram::new();
        for _ in 0..copies {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let err = (p50 as f64 - v as f64).abs();
        prop_assert!(
            err <= v as f64 * MAX_RELATIVE_ERROR,
            "p50 {} vs recorded {} (err {:.2}%)",
            p50,
            v,
            100.0 * err / v.max(1) as f64
        );
    }

    /// Merging two histograms is bucket-exact: identical to recording the
    /// union of both observation streams into one histogram.
    #[test]
    fn merge_equals_union(
        a in proptest::collection::vec(0u64..1 << 48, 0..100),
        b in proptest::collection::vec(0u64..1 << 48, 0..100),
    ) {
        let ha = Histogram::new();
        record_all(&ha, &a);
        let hb = Histogram::new();
        record_all(&hb, &b);
        ha.merge(&hb);

        let hu = Histogram::new();
        record_all(&hu, &a);
        record_all(&hu, &b);

        prop_assert_eq!(ha.snapshot(), hu.snapshot());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q), "quantile {} diverged", q);
        }
    }
}
