//! The two traditional-PFS checkpoint implementations of §4.
//!
//! * **File-per-process**: every rank creates its own file. "The bandwidth
//!   scales well, but the limiting factor is the time to create the
//!   checkpoint files. Since every file-create request goes through the
//!   centralized metadata server, the performance is always limited to the
//!   throughput in operations/second of the metadata server."
//! * **Shared file**: one file, rank-sized non-overlapping regions. "Even
//!   though the processors write their process state to non-overlapping
//!   regions, the file system's consistency and synchronization semantics
//!   get in the way, severely limiting the throughput."

use std::time::Instant;

use lwfs_core::LwfsClient;
use lwfs_pfs::{OpenMode, PfsClient};
use lwfs_portals::Group;
use lwfs_proto::{Error, Result};

use crate::CkptReport;

/// Which traditional implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfsStyle {
    FilePerProcess,
    SharedFile,
}

impl PfsStyle {
    pub fn label(self) -> &'static str {
        match self {
            PfsStyle::FilePerProcess => "lustre-file-per-process",
            PfsStyle::SharedFile => "lustre-shared-file",
        }
    }
}

/// Per-rank PFS checkpoint driver.
pub struct PfsCheckpointer<'a> {
    pfs: &'a PfsClient,
    group: Group,
    rank: usize,
    style: PfsStyle,
    path_prefix: String,
    /// Stripe configuration decided by the application (the MDS would
    /// apply defaults otherwise).
    stripe_count: u32,
    stripe_size: u64,
    tag_base: u64,
}

impl<'a> PfsCheckpointer<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pfs: &'a PfsClient,
        group: Group,
        rank: usize,
        style: PfsStyle,
        path_prefix: impl Into<String>,
        stripe_count: u32,
        stripe_size: u64,
    ) -> Self {
        Self {
            pfs,
            group,
            rank,
            style,
            path_prefix: path_prefix.into(),
            stripe_count,
            stripe_size,
            tag_base: 0x0F11,
        }
    }

    fn lwfs(&self) -> &LwfsClient {
        self.pfs.lwfs()
    }

    fn shared_path(&self, epoch: u64) -> String {
        format!("{}/{epoch:06}", self.path_prefix)
    }

    fn fpp_path(&self, epoch: u64, rank: usize) -> String {
        format!("{}/{epoch:06}.rank{rank:05}", self.path_prefix)
    }

    /// One checkpoint epoch. `state` is this rank's process state.
    pub fn checkpoint(&self, epoch: u64, state: &[u8]) -> Result<CkptReport> {
        match self.style {
            PfsStyle::FilePerProcess => self.checkpoint_fpp(epoch, state),
            PfsStyle::SharedFile => self.checkpoint_shared(epoch, state),
        }
    }

    fn checkpoint_fpp(&self, epoch: u64, state: &[u8]) -> Result<CkptReport> {
        // Every rank's create funnels through the MDS — the serialized
        // phase Figure 10 measures.
        let t0 = Instant::now();
        let mut file = self.pfs.create(
            &self.fpp_path(epoch, self.rank),
            self.stripe_count,
            self.stripe_size,
            OpenMode::Private,
        )?;
        let create_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        self.pfs.write(&mut file, 0, state)?;
        self.pfs.sync(&file)?;
        self.pfs.close(file)?;
        let dump_secs = t1.elapsed().as_secs_f64();
        Ok(CkptReport { create_secs, dump_secs, bytes: state.len() as u64 })
    }

    fn checkpoint_shared(&self, epoch: u64, state: &[u8]) -> Result<CkptReport> {
        let tag = self.tag_base + epoch * 4;
        let path = self.shared_path(epoch);

        // Rank 0 creates the single shared file; everyone else waits at the
        // barrier, then opens.
        let t0 = Instant::now();
        if self.rank == 0 {
            self.pfs.create(&path, self.stripe_count, self.stripe_size, OpenMode::Shared)?;
        }
        self.lwfs().barrier(&self.group, self.rank, tag)?;
        let mut file = self.pfs.open(&path, OpenMode::Shared)?;
        let create_secs = t0.elapsed().as_secs_f64();

        // Non-overlapping region per rank — and the lock manager still
        // serializes writes that land on the same stripe objects.
        let offset = self.rank as u64 * state.len() as u64;
        let t1 = Instant::now();
        self.pfs.write(&mut file, offset, state)?;
        self.pfs.sync(&file)?;
        self.pfs.close(file)?;
        let dump_secs = t1.elapsed().as_secs_f64();
        Ok(CkptReport { create_secs, dump_secs, bytes: state.len() as u64 })
    }

    /// Restore this rank's state from checkpoint `epoch`.
    ///
    /// Region sizes must match what was written (`len` per rank), as is
    /// standard for defensive checkpoint formats with fixed-size state.
    pub fn restore(&self, epoch: u64, len: usize) -> Result<Vec<u8>> {
        match self.style {
            PfsStyle::FilePerProcess => {
                let file = self.pfs.open(&self.fpp_path(epoch, self.rank), OpenMode::Private)?;
                self.pfs.read(&file, 0, len)
            }
            PfsStyle::SharedFile => {
                let file = self.pfs.open(&self.shared_path(epoch), OpenMode::Private)?;
                let data = self.pfs.read(&file, self.rank as u64 * len as u64, len)?;
                if data.len() != len {
                    return Err(Error::Internal(format!(
                        "short restore: wanted {len}, got {}",
                        data.len()
                    )));
                }
                Ok(data)
            }
        }
    }
}
