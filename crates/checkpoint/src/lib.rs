//! The paper's case study (§4): checkpointing application state.
//!
//! "Checkpointing is an example of a logically simple operation that is
//! made unnecessarily complex by the functionality imposed by traditional
//! file systems. Checkpointing requires no synchronization because all
//! writes are non-overlapping … and it requires the use of a naming
//! service to reference the checkpoint data when the application needs to
//! reconstruct the process on a restart."
//!
//! Three implementations, exactly the systems compared in Figures 9–10:
//!
//! * [`LwfsCheckpointer`] — the lightweight checkpoint of Figure 8:
//!   object-per-process over the LWFS-core, with metadata gather,
//!   naming-service registration, and a distributed transaction.
//! * [`PfsCheckpointer`] with [`PfsStyle::FilePerProcess`] — one PFS file
//!   per rank; bandwidth scales, creates serialize through the MDS.
//! * [`PfsCheckpointer`] with [`PfsStyle::SharedFile`] — one shared PFS
//!   file; the imposed consistency machinery (expanded extent locks)
//!   serializes non-overlapping writes.
//!
//! Every implementation reports per-phase timings (`create` vs `dump`)
//! because the paper's two figures split exactly there.

pub mod lwfs;
pub mod metadata;
pub mod pfs;

pub use lwfs::LwfsCheckpointer;
pub use metadata::{CkptEntry, CkptMetadata};
pub use pfs::{PfsCheckpointer, PfsStyle};

/// Per-phase wall-clock timings of one checkpoint epoch on one rank.
///
/// The paper measures "the time to open, write, sync, and close the file
/// (or object)" and reports the maximum over all participating processes;
/// `create` covers open/create, `dump` covers write+sync+close(+metadata).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CkptReport {
    pub create_secs: f64,
    pub dump_secs: f64,
    pub bytes: u64,
}

impl CkptReport {
    pub fn total_secs(&self) -> f64 {
        self.create_secs + self.dump_secs
    }

    /// Dump-phase throughput in MB/s (decimal, as the paper plots).
    pub fn dump_mb_per_sec(&self) -> f64 {
        if self.dump_secs == 0.0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / self.dump_secs
    }

    /// Element-wise maximum — the paper's max-over-ranks reduction.
    pub fn max(self, other: CkptReport) -> CkptReport {
        CkptReport {
            create_secs: self.create_secs.max(other.create_secs),
            dump_secs: self.dump_secs.max(other.dump_secs),
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = CkptReport { create_secs: 0.5, dump_secs: 2.0, bytes: 512_000_000 };
        assert!((r.dump_mb_per_sec() - 256.0).abs() < 1e-9);
        assert!((r.total_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_reduction_takes_worst_phase_and_sums_bytes() {
        let a = CkptReport { create_secs: 1.0, dump_secs: 5.0, bytes: 100 };
        let b = CkptReport { create_secs: 2.0, dump_secs: 3.0, bytes: 200 };
        let m = a.max(b);
        assert_eq!(m.create_secs, 2.0);
        assert_eq!(m.dump_secs, 5.0);
        assert_eq!(m.bytes, 300);
    }

    #[test]
    fn zero_dump_time_is_safe() {
        let r = CkptReport::default();
        assert_eq!(r.dump_mb_per_sec(), 0.0);
    }
}
