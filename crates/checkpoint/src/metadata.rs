//! Checkpoint metadata: the single object rank 0 writes after the gather
//! (Figure 8, GATHERMETADATA + CREATENAME).
//!
//! The metadata describes "the checkpoint objects as a coherent dataset":
//! which object on which storage server holds which rank's state. On
//! restart the metadata object is looked up by name and each rank reads
//! its entry.

use bytes::{Buf, BytesMut};
use lwfs_proto::codec::{Decode, Encode};
use lwfs_proto::{impl_codec_struct, ObjId, Result};

/// One rank's contribution to a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptEntry {
    pub rank: u32,
    /// Index of the storage server holding the object.
    pub server: u32,
    pub obj: ObjId,
    pub len: u64,
}

impl_codec_struct!(CkptEntry { rank, server, obj, len });

/// The metadata object contents for one checkpoint epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMetadata {
    pub epoch: u64,
    pub entries: Vec<CkptEntry>,
}

impl CkptMetadata {
    /// The entry for `rank`, if present.
    pub fn entry(&self, rank: u32) -> Option<&CkptEntry> {
        self.entries.iter().find(|e| e.rank == rank)
    }

    /// Total checkpoint size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Validate completeness: exactly one entry for every rank `0..n`.
    pub fn is_complete(&self, n: u32) -> bool {
        if self.entries.len() != n as usize {
            return false;
        }
        let mut seen = vec![false; n as usize];
        for e in &self.entries {
            match seen.get_mut(e.rank as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => return false,
            }
        }
        true
    }
}

impl Encode for CkptMetadata {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.entries.encode(buf);
    }
}

impl Decode for CkptMetadata {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(CkptMetadata { epoch: Decode::decode(buf)?, entries: Decode::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CkptMetadata {
        CkptMetadata {
            epoch: 3,
            entries: vec![
                CkptEntry { rank: 0, server: 0, obj: ObjId(10), len: 100 },
                CkptEntry { rank: 1, server: 1, obj: ObjId(11), len: 200 },
                CkptEntry { rank: 2, server: 0, obj: ObjId(12), len: 300 },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = meta();
        let wire = m.to_bytes();
        let back = CkptMetadata::from_bytes(wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn lookup_and_totals() {
        let m = meta();
        assert_eq!(m.entry(1).unwrap().obj, ObjId(11));
        assert!(m.entry(9).is_none());
        assert_eq!(m.total_bytes(), 600);
    }

    #[test]
    fn completeness() {
        let m = meta();
        assert!(m.is_complete(3));
        assert!(!m.is_complete(2));
        assert!(!m.is_complete(4));
        let mut dup = meta();
        dup.entries[2].rank = 0;
        assert!(!dup.is_complete(3));
    }

    #[test]
    fn decode_junk_never_panics() {
        let _ = CkptMetadata::from_bytes(bytes::Bytes::from_static(&[1, 2, 3]));
    }
}
