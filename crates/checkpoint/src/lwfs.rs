//! The lightweight checkpoint of Figure 8, line for line.
//!
//! ```text
//! MAIN()                          CHECKPOINT(state, path, caps)
//! 1: cred ← GETCREDS()            1: txnid ← BEGINTXN()
//! 2: cid  ← CREATECONTAINER(cred) 2: obj ← CREATEOBJ(txnid, caps)
//! 3: caps ← GETCAPS(cid)          3: DUMPSTATE(txnid, state, obj, caps)
//! 4: while not done:              4: if rank = 0: mdobj ← CREATEOBJ(...)
//! 5:   state ← COMPUTE()          7: GATHERMETADATA(mdobj, 0)
//! 6:   CHECKPOINT(state, …)       9: if rank = 0: CREATENAME(txnid, path, mdobj)
//!                                 11: ENDTXN(txnid)
//! ```
//!
//! Each rank creates and dumps to its own object, *in parallel, with no
//! locks and no central metadata service on the data path* — that absence
//! is the entire performance argument of the paper.

use std::time::Instant;

use bytes::Bytes;
use lwfs_core::{CapSet, LwfsClient};
use lwfs_portals::Group;
use lwfs_proto::{Decode as _, Encode as _, Error, ObjId, ProcessId, Result};

use crate::metadata::{CkptEntry, CkptMetadata};
use crate::CkptReport;

/// Per-rank state for lightweight checkpointing.
pub struct LwfsCheckpointer<'a> {
    client: &'a LwfsClient,
    group: Group,
    rank: usize,
    caps: CapSet,
    /// Name-space prefix for checkpoint datasets (e.g. `/ckpt/jobname`).
    path_prefix: String,
    /// Distinct collective tags per epoch derive from this base.
    tag_base: u64,
}

impl<'a> LwfsCheckpointer<'a> {
    pub fn new(
        client: &'a LwfsClient,
        group: Group,
        rank: usize,
        caps: CapSet,
        path_prefix: impl Into<String>,
    ) -> Self {
        Self { client, group, rank, caps, path_prefix: path_prefix.into(), tag_base: 0x0C11 }
    }

    fn server_for_rank(&self, rank: usize) -> usize {
        rank % self.client.storage_count()
    }

    fn path(&self, epoch: u64) -> String {
        format!("{}/{epoch:06}", self.path_prefix)
    }

    /// One checkpoint epoch (the `CHECKPOINT` procedure of Figure 8).
    ///
    /// Returns per-phase timings measured on this rank; the caller reduces
    /// max-over-ranks as the paper does.
    pub fn checkpoint(&self, epoch: u64, state: &[u8]) -> Result<CkptReport> {
        let server = self.server_for_rank(self.rank);
        let tag = self.tag_base + epoch * 4;

        // 1: BEGINTXN — each rank's transaction covers its own tasks.
        let txn = self.client.txn_begin()?;
        let mut participants: Vec<ProcessId> = vec![self.client.addrs().storage[server]];

        // 2: CREATEOBJ — independently, in parallel, at the rank's own
        // storage server. No central metadata service involved.
        let t0 = Instant::now();
        let obj = self.client.create_obj(server, &self.caps, Some(txn), None)?;
        let create_secs = t0.elapsed().as_secs_f64();

        // 3: DUMPSTATE — server-directed write + sync.
        let t1 = Instant::now();
        self.client.write(server, &self.caps, Some(txn), obj, 0, state)?;
        self.client.sync(server, &self.caps, Some(obj))?;

        // 7: GATHERMETADATA — log-tree gather of (rank, server, obj, len)
        // to rank 0.
        let entry = CkptEntry {
            rank: self.rank as u32,
            server: server as u32,
            obj,
            len: state.len() as u64,
        };
        let gathered = self.client.gather(&self.group, self.rank, 0, tag, entry.to_bytes())?;

        // 4–6, 8–10 (rank 0 only): metadata object + CREATENAME.
        if let Some(blobs) = gathered {
            let mut entries = Vec::with_capacity(blobs.len());
            for blob in blobs {
                entries.push(CkptEntry::from_bytes(blob)?);
            }
            let metadata = CkptMetadata { epoch, entries };
            if !metadata.is_complete(self.group.size() as u32) {
                return Err(Error::Internal("incomplete metadata gather".into()));
            }
            let md_server = self.server_for_rank(0);
            let mdobj = self.client.create_obj(md_server, &self.caps, Some(txn), None)?;
            self.client.write(md_server, &self.caps, Some(txn), mdobj, 0, &metadata.to_bytes())?;
            self.client.sync(md_server, &self.caps, Some(mdobj))?;
            // 9: CREATENAME — bind the dataset name to the metadata object.
            self.client.name_create(Some(txn), &self.path(epoch), self.caps.container()?, mdobj)?;
            if md_server != server {
                participants.push(self.client.addrs().storage[md_server]);
            }
            participants.push(self.client.addrs().naming);
        }

        // 11: ENDTXN — two-phase commit across this rank's participants.
        let outcome = self.client.txn_commit(txn, participants)?;
        if !outcome.is_committed() {
            return Err(Error::TxnAborted(txn));
        }
        let dump_secs = t1.elapsed().as_secs_f64();

        Ok(CkptReport { create_secs, dump_secs, bytes: state.len() as u64 })
    }

    /// Restore this rank's state from the checkpoint named `epoch`.
    ///
    /// Rank 0 resolves the name and reads the metadata object, then
    /// broadcasts the metadata; every rank reads its own object.
    pub fn restore(&self, epoch: u64) -> Result<Vec<u8>> {
        let tag = self.tag_base + epoch * 4 + 2;
        let metadata = if self.rank == 0 {
            let (_cid, mdobj) = self.client.name_lookup(&self.path(epoch))?;
            let md_server = self.server_for_rank(0);
            let attr = self.client.getattr(md_server, &self.caps, mdobj)?;
            let raw = self.client.read(md_server, &self.caps, mdobj, 0, attr.size as usize)?;
            let md = CkptMetadata::from_bytes(Bytes::from(raw))?;
            let wire = md.to_bytes();
            self.client.broadcast(&self.group, self.rank, 0, tag, Some(wire))?;
            md
        } else {
            let wire = self.client.broadcast(&self.group, self.rank, 0, tag, None)?;
            CkptMetadata::from_bytes(wire)?
        };
        if metadata.epoch != epoch {
            return Err(Error::Internal(format!(
                "restored metadata is for epoch {}, wanted {epoch}",
                metadata.epoch
            )));
        }
        let entry = metadata
            .entry(self.rank as u32)
            .ok_or_else(|| Error::Internal(format!("no entry for rank {}", self.rank)))?;
        self.client.read(entry.server as usize, &self.caps, entry.obj, 0, entry.len as usize)
    }

    /// List available checkpoints under the prefix.
    pub fn list(&self) -> Result<Vec<String>> {
        self.client.name_list(&self.path_prefix)
    }

    /// The metadata object id for an epoch (diagnostics).
    pub fn metadata_object(&self, epoch: u64) -> Result<ObjId> {
        let (_, obj) = self.client.name_lookup(&self.path(epoch))?;
        Ok(obj)
    }

    /// The newest committed checkpoint epoch, if any — what a restarting
    /// application restores from. Epoch numbers are zero-padded in the
    /// namespace, so lexicographic order is numeric order.
    pub fn latest_epoch(&self) -> Result<Option<u64>> {
        let names = self.list()?;
        Ok(names.iter().filter_map(|n| n.rsplit('/').next()?.parse::<u64>().ok()).max())
    }

    /// Delete every checkpoint except the newest `keep` — the retention
    /// sweep a long-running job performs so checkpoints do not accumulate.
    /// Returns the epochs removed.
    ///
    /// Each removal is transactional: the name, the metadata object, and
    /// every rank's data object disappear together, so a crash mid-sweep
    /// never leaves a named-but-gutted checkpoint. Call from one rank only
    /// (rank 0, conventionally).
    pub fn retain_latest(&self, keep: usize) -> Result<Vec<u64>> {
        let mut epochs: Vec<u64> =
            self.list()?.iter().filter_map(|n| n.rsplit('/').next()?.parse::<u64>().ok()).collect();
        epochs.sort_unstable();
        let doomed: Vec<u64> =
            epochs.iter().copied().take(epochs.len().saturating_sub(keep)).collect();
        for &epoch in &doomed {
            let path = self.path(epoch);
            let (_cid, mdobj) = self.client.name_lookup(&path)?;
            let md_server = self.server_for_rank(0);
            let attr = self.client.getattr(md_server, &self.caps, mdobj)?;
            let raw = self.client.read(md_server, &self.caps, mdobj, 0, attr.size as usize)?;
            let metadata = CkptMetadata::from_bytes(Bytes::from(raw))?;

            let txn = self.client.txn_begin()?;
            let mut participants: Vec<ProcessId> = vec![self.client.addrs().naming];
            self.client.name_remove(Some(txn), &path)?;
            for entry in &metadata.entries {
                let server = entry.server as usize;
                self.client.remove_obj(server, &self.caps, Some(txn), entry.obj)?;
                let addr = self.client.addrs().storage[server];
                if !participants.contains(&addr) {
                    participants.push(addr);
                }
            }
            self.client.remove_obj(md_server, &self.caps, Some(txn), mdobj)?;
            let md_addr = self.client.addrs().storage[md_server];
            if !participants.contains(&md_addr) {
                participants.push(md_addr);
            }
            let outcome = self.client.txn_commit(txn, participants)?;
            if !outcome.is_committed() {
                return Err(Error::TxnAborted(txn));
            }
        }
        Ok(doomed)
    }
}
